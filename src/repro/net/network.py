"""The simulated network: nodes, links, partitions.

A :class:`Network` connects named :class:`~repro.sim.process.SimProcess`
nodes.  Datagrams are unicast; multicast to a set of destinations is
modelled as independent unicasts (Spread itself uses unicast on the WAN
and the paper's testbed is a small switched LAN, so this is faithful for
the quantities measured).

Partitions are expressed as a set of disjoint components over node names;
a datagram whose source and destination are in different components is
silently dropped, which is exactly how an asynchronous network failure
presents to the endpoints.  Healing the partition restores full
connectivity and lets daemon membership merge the components.

One-way (asymmetric) partitions are expressed separately as *severed*
directed pairs (:meth:`Network.sever`): datagrams from a severed source
to a severed destination are dropped while the reverse direction keeps
flowing — the half-open link failure mode that stresses failure
detectors hardest.  :meth:`Network.restore` (or a full :meth:`heal`)
repairs them.

Adversarial link behaviour (duplication, corruption, bounded
reordering, delay spikes) is configured per link on
:class:`~repro.net.link.LinkModel`; the network applies it per datagram
from its deterministic RNG stream and traces every injected fault.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import PartitionError, UnknownAddressError
from repro.net.corrupt import corrupt_payload
from repro.net.link import LinkModel
from repro.sim.kernel import Kernel
from repro.sim.process import SimProcess
from repro.types import PRIORITY_NETWORK

DEFAULT_DATAGRAM_SIZE = 256


class Network:
    """A latency/loss/partition-modelled datagram network."""

    def __init__(
        self,
        kernel: Kernel,
        default_link: Optional[LinkModel] = None,
    ) -> None:
        self.kernel = kernel
        self.default_link = default_link or LinkModel()
        self._nodes: Dict[str, SimProcess] = {}
        self._links: Dict[Tuple[str, str], LinkModel] = {}
        # None means fully connected; otherwise node -> component index.
        self._component_of: Optional[Dict[str, int]] = None
        # Directed (source, destination) pairs currently cut one-way.
        self._severed: Set[Tuple[str, str]] = set()
        self._rng = kernel.rng.child("network")
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.datagrams_duplicated = 0
        self.datagrams_corrupted = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0

    # -- topology -------------------------------------------------------------

    def add_node(self, node: SimProcess) -> None:
        """Register a node; its process name is its address."""
        self._nodes[node.name] = node

    def remove_node(self, name: str) -> None:
        """Unregister a node (messages to it are then address errors)."""
        self._nodes.pop(name, None)

    def node(self, name: str) -> SimProcess:
        """Look up a node by address."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownAddressError(name) from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def node_names(self) -> List[str]:
        return sorted(self._nodes)

    def set_link(self, a: str, b: str, model: LinkModel) -> None:
        """Override the link model between two nodes (symmetric)."""
        self._links[(a, b)] = model
        self._links[(b, a)] = model

    def set_default_link(self, model: LinkModel) -> None:
        """Swap the default link model for every non-overridden pair —
        how a fault schedule opens and closes an adversarial chaos
        window at run time."""
        self.default_link = model
        self.kernel.tracer.record(
            "net.link_change",
            adversarial=model.adversarial,
            loss_rate=model.loss_rate,
            corrupt_rate=model.corrupt_rate,
            duplicate_rate=model.duplicate_rate,
            reorder_rate=model.reorder_rate,
            spike_rate=model.spike_rate,
        )

    def link_between(self, a: str, b: str) -> LinkModel:
        """The link model in effect between two nodes."""
        return self._links.get((a, b), self.default_link)

    # -- partitions -------------------------------------------------------------

    def partition(self, components: Sequence[Iterable[str]]) -> None:
        """Split the network into disjoint components.

        Nodes not named in any component keep full connectivity with every
        component they were implicitly grouped with -- to avoid surprises
        we instead place all unnamed nodes into their own extra component
        together, which matches the common "cut these machines off" use.
        """
        component_of: Dict[str, int] = {}
        for index, group in enumerate(components):
            for name in group:
                if name in component_of:
                    raise PartitionError(f"node {name!r} in two components")
                component_of[name] = index
        rest = [name for name in self._nodes if name not in component_of]
        rest_index = len(components)
        for name in rest:
            component_of[name] = rest_index
        self._component_of = component_of
        self.kernel.tracer.record(
            "net.partition",
            components=[sorted(g) for g in components] + [sorted(rest)],
        )

    def heal(self) -> None:
        """Restore full connectivity (components and one-way severs)."""
        self._component_of = None
        self._severed.clear()
        self.kernel.tracer.record("net.heal")

    def sever(
        self, sources: Iterable[str], destinations: Iterable[str]
    ) -> None:
        """Cut the network one way: datagrams from any of ``sources`` to
        any of ``destinations`` are dropped; the reverse direction (and
        everything else) keeps flowing.  An asymmetric partition — the
        half-open failure mode where one side still hears the other."""
        sources = list(sources)
        destinations = list(destinations)
        if not sources or not destinations:
            raise PartitionError("sever needs non-empty sources and destinations")
        for source in sources:
            for destination in destinations:
                if source == destination:
                    raise PartitionError(
                        f"cannot sever node {source!r} from itself"
                    )
                self._severed.add((source, destination))
        self.kernel.tracer.record(
            "net.sever",
            sources=sorted(set(sources)),
            destinations=sorted(set(destinations)),
        )

    def restore(self) -> None:
        """Repair all one-way severs (components stay as they are)."""
        self._severed.clear()
        self.kernel.tracer.record("net.restore")

    def reachable(self, a: str, b: str) -> bool:
        """True when a datagram from ``a`` can currently reach ``b``.

        Directional: one-way severs block ``a -> b`` without blocking
        ``b -> a``.
        """
        if a == b:
            return True
        if (a, b) in self._severed:
            return False
        if self._component_of is None:
            return True
        return self._component_of.get(a, -1) == self._component_of.get(b, -2)

    @property
    def partitioned(self) -> bool:
        return self._component_of is not None or bool(self._severed)

    def component_members(self, name: str) -> Set[str]:
        """Names of all nodes currently reachable from ``name``."""
        return {other for other in self._nodes if self.reachable(name, other)}

    # -- datagram service ---------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> None:
        """Queue one datagram for delivery (or loss) after the link delay."""
        if destination not in self._nodes:
            raise UnknownAddressError(destination)
        sender = self._nodes.get(source)
        if sender is not None and sender.stalled:
            # A stalled (live-but-silent) process transmits nothing; the
            # send replays when it resumes, as if the kernel had held
            # the process off-CPU mid-syscall.
            sender.defer_while_stalled(
                lambda: self.send(source, destination, payload, size)
            )
            return
        self.datagrams_sent += 1
        wire_size = size if size is not None else _size_of(payload)
        self.bytes_sent += wire_size
        tracer = self.kernel.tracer
        if (source, destination) in self._severed:
            self.datagrams_dropped += 1
            if tracer.enabled:
                tracer.record(
                    "net.drop_sever", source=source, destination=destination
                )
            return
        if not self.reachable(source, destination):
            self.datagrams_dropped += 1
            if tracer.enabled:
                tracer.record(
                    "net.drop_partition", source=source, destination=destination
                )
            return
        link = self.link_between(source, destination)
        if link.is_lost(self._rng):
            self.datagrams_dropped += 1
            if tracer.enabled:
                tracer.record(
                    "net.drop_loss", source=source, destination=destination
                )
            return
        if link.is_corrupted(self._rng):
            self.datagrams_corrupted += 1
            payload = corrupt_payload(payload, self._rng)
            if tracer.enabled:
                tracer.record(
                    "net.corrupt",
                    source=source,
                    destination=destination,
                    payload_kind=type(payload).__name__,
                )
        delay = link.delay_for(wire_size, self._rng) + link.extra_delay(self._rng)
        self.kernel.call_later(
            delay,
            lambda: self._deliver(source, destination, payload, wire_size),
            priority=PRIORITY_NETWORK,
            label=f"net:{source}->{destination}",
        )
        if link.is_duplicated(self._rng):
            # The duplicate rides an independent (often longer) delay,
            # so it can arrive out of order relative to later sends.
            self.datagrams_duplicated += 1
            dup_delay = link.delay_for(wire_size, self._rng) + link.extra_delay(
                self._rng
            )
            if link.reorder_window > 0:
                dup_delay += self._rng.uniform(0.0, link.reorder_window)
            if tracer.enabled:
                tracer.record(
                    "net.duplicate", source=source, destination=destination
                )
            self.kernel.call_later(
                dup_delay,
                lambda: self._deliver(source, destination, payload, wire_size),
                priority=PRIORITY_NETWORK,
                label=f"net:{source}->{destination}:dup",
            )

    def multicast(
        self,
        source: str,
        destinations: Iterable[str],
        payload: Any,
        size: Optional[int] = None,
    ) -> None:
        """Send the same payload to several destinations (skipping source)."""
        for destination in destinations:
            if destination != source:
                self.send(source, destination, payload, size)

    def _deliver(
        self, source: str, destination: str, payload: Any, wire_size: int = 0
    ) -> None:
        node = self._nodes.get(destination)
        if node is None:
            self.datagrams_dropped += 1
            return
        # A partition that formed while the datagram was in flight cuts it
        # off too; this models the switch going dark, and keeps partition
        # semantics clean (no stragglers from the other side).
        if not self.reachable(source, destination):
            self.datagrams_dropped += 1
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.record(
                    "net.drop_partition_inflight",
                    source=source,
                    destination=destination,
                )
            return
        self.datagrams_delivered += 1
        self.bytes_delivered += wire_size
        node.deliver(source, payload)


def _size_of(payload: Any) -> int:
    """Best-effort wire size estimate for a payload object."""
    size = getattr(payload, "wire_size", None)
    if callable(size):
        return int(size())
    if isinstance(size, int):
        return size
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode())
    return DEFAULT_DATAGRAM_SIZE
