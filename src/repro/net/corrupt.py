"""Wire-level payload corruption for the adversarial link model.

A corrupted datagram is a real datagram whose bits were damaged in
flight.  Two defensive layers exist above the wire:

* **Byte payloads** (sealed application data, fragments): a single bit
  is flipped in one of the payload's byte fields.  The damaged copy
  still parses structurally, so it travels all the way to the HMAC
  verification in :mod:`repro.secure.dataprotect` — which must reject
  it.  This is the paper's transmission-error threat to group keying
  made concrete (cf. Vijayakumar et al. on error detection in
  distributed group key agreement).
* **Structured control messages** (hellos, membership, tokens) carry no
  byte field to flip; real transports discard such frames at the
  link/UDP checksum.  We model that as a :class:`CorruptedDatagram`
  wrapper, which the receiving daemon drops with a trace event — the
  sender's retransmission machinery then repairs the gap.

Corruption never mutates the sender's object: retransmission buffers
hold the original, so a NACK repairs the corrupted copy with clean bits,
exactly as a real network behaves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.sim.rng import DeterministicRng

#: How deep the search for a byte field descends (DataMessage ->
#: envelope -> sealed message is depth 3; anything deeper is not wire
#: payload structure in this codebase).
_MAX_DEPTH = 4


@dataclass(frozen=True)
class CorruptedDatagram:
    """A datagram whose damage is caught below the application.

    Models a frame that fails the transport checksum: receivers must
    drop it without interpreting the (unrecoverable) original payload.
    ``original_kind`` names the damaged message type for tracing only.
    """

    original_kind: str

    def wire_size(self) -> int:
        return 64


def _byte_paths(obj: Any, depth: int = 0) -> List[Tuple[Any, ...]]:
    """All paths (field-name sequences) from ``obj`` to a bytes leaf."""
    if depth >= _MAX_DEPTH:
        return []
    paths: List[Tuple[Any, ...]] = []
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if isinstance(value, (bytes, bytearray, memoryview)) and len(value) > 0:
                paths.append((field.name,))
            else:
                for sub in _byte_paths(value, depth + 1):
                    paths.append((field.name,) + sub)
    return paths


def _flip_bit(data: bytes, rng: DeterministicRng) -> bytes:
    position = rng.randint(0, len(data) - 1)
    bit = 1 << rng.randint(0, 7)
    return data[:position] + bytes([data[position] ^ bit]) + data[position + 1 :]


def _rebuild(obj: Any, path: Tuple[Any, ...], rng: DeterministicRng) -> Any:
    """Copy ``obj`` with the byte leaf at ``path`` bit-flipped."""
    name = path[0]
    value = getattr(obj, name)
    if len(path) == 1:
        new_value: Any = _flip_bit(bytes(value), rng)
    else:
        new_value = _rebuild(value, path[1:], rng)
    return dataclasses.replace(obj, **{name: new_value})


def corrupt_payload(payload: Any, rng: DeterministicRng) -> Any:
    """Return a corrupted copy of ``payload`` (the original is untouched).

    Byte-carrying payloads get one flipped bit in a deterministically
    chosen byte field; payloads without byte fields are replaced by a
    :class:`CorruptedDatagram` (checksum-failed frame).
    """
    if isinstance(payload, (bytes, bytearray)) and len(payload) > 0:
        return _flip_bit(bytes(payload), rng)
    paths = _byte_paths(payload)
    if paths:
        return _rebuild(payload, rng.choice(paths), rng)
    return CorruptedDatagram(original_kind=type(payload).__name__)
