"""Link delay/loss models.

A :class:`LinkModel` computes, per datagram, whether the datagram is lost
and how long it takes to arrive.  Presets model the paper's testbeds
(switched Ethernet LANs) and a lossy WAN for robustness experiments.

The latency model is ``base + size/bandwidth + jitter`` where jitter is a
uniform draw, which is enough to exercise reordering without modelling
queues explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import LinkError
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class LinkModel:
    """Per-link delivery characteristics.

    Parameters
    ----------
    base_latency:
        Fixed one-way propagation + protocol-stack delay in seconds.
    bandwidth:
        Bytes per second; serialization delay is ``size / bandwidth``.
        ``None`` means infinite bandwidth (no serialization delay).
    jitter:
        Max uniform extra delay in seconds (draws in ``[0, jitter]``).
    loss_rate:
        Probability in ``[0, 1]`` that a datagram is silently dropped.
    duplicate_rate:
        Probability that a delivered datagram arrives a second time
        (the duplicate takes an independent, possibly longer, delay).
    corrupt_rate:
        Probability that a datagram's payload is corrupted in flight
        (a bit flip on the wire; the HMAC / checksum layer must catch it).
    reorder_rate:
        Probability that a datagram is adversarially delayed by up to
        ``reorder_window`` extra seconds, making it land behind later
        sends (bounded adversarial reordering).
    reorder_window:
        Maximum extra delay (seconds) a reordered datagram suffers.
    spike_rate:
        Probability of a delay spike of ``spike_delay`` extra seconds —
        a stalled queue or routing transient, far above the jitter band.
    spike_delay:
        The size of one delay spike in seconds.
    """

    base_latency: float = 0.0001
    bandwidth: Optional[float] = None
    jitter: float = 0.0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_window: float = 0.0
    spike_rate: float = 0.0
    spike_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise LinkError(f"negative base latency: {self.base_latency}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise LinkError(f"non-positive bandwidth: {self.bandwidth}")
        if self.jitter < 0:
            raise LinkError(f"negative jitter: {self.jitter}")
        for rate_attr in (
            "loss_rate",
            "duplicate_rate",
            "corrupt_rate",
            "reorder_rate",
            "spike_rate",
        ):
            rate = getattr(self, rate_attr)
            if not 0.0 <= rate <= 1.0:
                raise LinkError(f"{rate_attr} outside [0,1]: {rate}")
        if self.reorder_window < 0:
            raise LinkError(f"negative reorder window: {self.reorder_window}")
        if self.spike_delay < 0:
            raise LinkError(f"negative spike delay: {self.spike_delay}")
        if self.reorder_rate > 0 and self.reorder_window == 0:
            raise LinkError("reorder_rate needs a positive reorder_window")
        if self.spike_rate > 0 and self.spike_delay == 0:
            raise LinkError("spike_rate needs a positive spike_delay")

    @property
    def adversarial(self) -> bool:
        """True when any adversarial behaviour is configured."""
        return (
            self.duplicate_rate > 0
            or self.corrupt_rate > 0
            or self.reorder_rate > 0
            or self.spike_rate > 0
        )

    def is_lost(self, rng: DeterministicRng) -> bool:
        """Decide whether one datagram is dropped."""
        return self.loss_rate > 0 and rng.random() < self.loss_rate

    def is_duplicated(self, rng: DeterministicRng) -> bool:
        """Decide whether one datagram arrives twice."""
        return self.duplicate_rate > 0 and rng.random() < self.duplicate_rate

    def is_corrupted(self, rng: DeterministicRng) -> bool:
        """Decide whether one datagram is corrupted in flight."""
        return self.corrupt_rate > 0 and rng.random() < self.corrupt_rate

    def extra_delay(self, rng: DeterministicRng) -> float:
        """Adversarial extra delay: reordering draw plus delay spikes."""
        extra = 0.0
        if self.reorder_rate > 0 and rng.random() < self.reorder_rate:
            extra += rng.uniform(0.0, self.reorder_window)
        if self.spike_rate > 0 and rng.random() < self.spike_rate:
            extra += self.spike_delay
        return extra

    def delay_for(self, size_bytes: int, rng: DeterministicRng) -> float:
        """One-way delay for a datagram of the given size."""
        delay = self.base_latency
        if self.bandwidth is not None:
            delay += size_bytes / self.bandwidth
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        return delay

    # -- presets -------------------------------------------------------------

    @classmethod
    def ethernet_10base_t(cls) -> "LinkModel":
        """10BaseT LAN, as connected the paper's SUN Ultra-2 machines."""
        return cls(base_latency=0.0005, bandwidth=10e6 / 8, jitter=0.0001)

    @classmethod
    def ethernet_100base_t(cls) -> "LinkModel":
        """100BaseT LAN, as connected the paper's Pentium II machines."""
        return cls(base_latency=0.0002, bandwidth=100e6 / 8, jitter=0.00005)

    @classmethod
    def local_ipc(cls) -> "LinkModel":
        """Same-machine daemon<->client IPC (loopback / unix socket)."""
        return cls(base_latency=0.00005, bandwidth=None, jitter=0.00001)

    @classmethod
    def wan(cls, loss_rate: float = 0.01) -> "LinkModel":
        """A lossy wide-area link for robustness experiments."""
        return cls(
            base_latency=0.040,
            bandwidth=1.5e6 / 8,
            jitter=0.010,
            loss_rate=loss_rate,
        )

    @classmethod
    def chaotic(
        cls,
        loss_rate: float = 0.01,
        duplicate_rate: float = 0.02,
        corrupt_rate: float = 0.02,
        reorder_rate: float = 0.05,
        spike_rate: float = 0.01,
    ) -> "LinkModel":
        """A LAN under an active message-level adversary: duplication,
        corruption, bounded reordering and delay spikes on top of loss.
        The crucible's default chaos-window link."""
        return cls(
            base_latency=0.0002,
            bandwidth=100e6 / 8,
            jitter=0.00005,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            corrupt_rate=corrupt_rate,
            reorder_rate=reorder_rate,
            reorder_window=0.030,
            spike_rate=spike_rate,
            spike_delay=0.080,
        )
