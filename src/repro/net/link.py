"""Link delay/loss models.

A :class:`LinkModel` computes, per datagram, whether the datagram is lost
and how long it takes to arrive.  Presets model the paper's testbeds
(switched Ethernet LANs) and a lossy WAN for robustness experiments.

The latency model is ``base + size/bandwidth + jitter`` where jitter is a
uniform draw, which is enough to exercise reordering without modelling
queues explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import LinkError
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class LinkModel:
    """Per-link delivery characteristics.

    Parameters
    ----------
    base_latency:
        Fixed one-way propagation + protocol-stack delay in seconds.
    bandwidth:
        Bytes per second; serialization delay is ``size / bandwidth``.
        ``None`` means infinite bandwidth (no serialization delay).
    jitter:
        Max uniform extra delay in seconds (draws in ``[0, jitter]``).
    loss_rate:
        Probability in ``[0, 1]`` that a datagram is silently dropped.
    """

    base_latency: float = 0.0001
    bandwidth: Optional[float] = None
    jitter: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise LinkError(f"negative base latency: {self.base_latency}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise LinkError(f"non-positive bandwidth: {self.bandwidth}")
        if self.jitter < 0:
            raise LinkError(f"negative jitter: {self.jitter}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise LinkError(f"loss rate outside [0,1]: {self.loss_rate}")

    def is_lost(self, rng: DeterministicRng) -> bool:
        """Decide whether one datagram is dropped."""
        return self.loss_rate > 0 and rng.random() < self.loss_rate

    def delay_for(self, size_bytes: int, rng: DeterministicRng) -> float:
        """One-way delay for a datagram of the given size."""
        delay = self.base_latency
        if self.bandwidth is not None:
            delay += size_bytes / self.bandwidth
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        return delay

    # -- presets -------------------------------------------------------------

    @classmethod
    def ethernet_10base_t(cls) -> "LinkModel":
        """10BaseT LAN, as connected the paper's SUN Ultra-2 machines."""
        return cls(base_latency=0.0005, bandwidth=10e6 / 8, jitter=0.0001)

    @classmethod
    def ethernet_100base_t(cls) -> "LinkModel":
        """100BaseT LAN, as connected the paper's Pentium II machines."""
        return cls(base_latency=0.0002, bandwidth=100e6 / 8, jitter=0.00005)

    @classmethod
    def local_ipc(cls) -> "LinkModel":
        """Same-machine daemon<->client IPC (loopback / unix socket)."""
        return cls(base_latency=0.00005, bandwidth=None, jitter=0.00001)

    @classmethod
    def wan(cls, loss_rate: float = 0.01) -> "LinkModel":
        """A lossy wide-area link for robustness experiments."""
        return cls(
            base_latency=0.040,
            bandwidth=1.5e6 / 8,
            jitter=0.010,
            loss_rate=loss_rate,
        )
