"""Frame authentication and restricted unpickling for the TCP backend.

Closes the transport's trust hole: wire frames used to be pickled
payloads protected only by a CRC, so anyone who could reach a daemon's
peer or client port could forge membership traffic — or worse, execute
arbitrary code through ``pickle.loads``.  This module supplies the two
halves of the fix:

* :class:`FrameAuth` — HMAC-SHA256 tags over ``header || body`` under a
  pre-shared deployment key loaded from a key file.  Verification is
  constant-time.  Every process in a deployment shares one key
  (``--keyfile`` / the ``REPRO_TRANSPORT_KEYFILE`` environment
  variable); a frame whose tag does not verify is rejected before its
  body is ever unpickled.

* :func:`restricted_loads` — a :class:`pickle.Unpickler` whose
  ``find_class`` only resolves classes defined in the registered
  wire-kind modules (:data:`WIRE_SAFE_MODULES`).  Even an
  *authenticated* body never reaches bare ``pickle.loads``: a key leak
  no longer implies code execution (defense in depth).

The pre-shared key authenticates *transport peers*, not group members:
it proves a frame was produced by a process holding the deployment key.
Group-level guarantees (confidentiality, membership authentication,
key freshness) remain the secure-session layer's job — see
``docs/TRANSPORT.md`` for the full threat model.

Key files hold the key as one hex line (whitespace ignored) so they can
be generated, inspected, and copied with ordinary tools::

    python -m repro.transport.auth generate deploy.key
    python -m repro.transport.auth fingerprint deploy.key
"""

from __future__ import annotations

import argparse
import importlib
import io
import os
import pickle
import secrets
import sys
from pathlib import Path
from typing import Any, FrozenSet, Optional, Set, Tuple, Union

from repro.crypto.hmac_mac import (
    SHA256_DIGEST_SIZE,
    HmacSha256Key,
    hmac_sha256_digest,
)
from repro.errors import FrameAuthError, RestrictedUnpickleError

#: Environment knob: deployment-wide default key file.  When set, every
#: transport, host, and client constructed without an explicit ``auth``
#: argument enables frame authentication under this key.
KEYFILE_ENV = "REPRO_TRANSPORT_KEYFILE"

#: Size of the per-frame HMAC-SHA256 tag on the wire.
TAG_SIZE = SHA256_DIGEST_SIZE

#: Refuse keys shorter than this many bytes (after hex decoding).
MIN_KEY_BYTES = 16

#: Bytes of fresh entropy in a generated key file.
GENERATED_KEY_BYTES = 32


class _AuthDisabled:
    """Sentinel: explicitly disable frame auth, overriding the env key."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AUTH_DISABLED"


#: Pass as ``auth=`` to force authentication *off* even when
#: ``REPRO_TRANSPORT_KEYFILE`` is set (used by auth-overhead benches).
AUTH_DISABLED = _AuthDisabled()

#: What callers may pass wherever an ``auth`` argument is accepted.
AuthSpec = Union[None, "_AuthDisabled", "FrameAuth", str, Path]


class FrameAuth:
    """A prepared deployment key for HMAC-SHA256 frame tags.

    Hashes the padded key's inner/outer blocks once (midstate caching,
    mirroring :class:`repro.crypto.hmac_mac.HmacKey`) so each frame pays
    only for its own bytes.
    """

    __slots__ = ("_key", "key_id")

    def __init__(self, key: bytes) -> None:
        if len(key) < MIN_KEY_BYTES:
            raise FrameAuthError(
                f"deployment key too short: {len(key)} bytes "
                f"(minimum {MIN_KEY_BYTES})"
            )
        self._key = HmacSha256Key(key)
        # Short public identifier for logs/errors; reveals nothing about
        # the key bytes beyond a one-way fingerprint prefix.
        self.key_id = hmac_sha256_digest(b"repro-keyid", key)[:4].hex()

    @classmethod
    def from_keyfile(cls, path: Union[str, Path]) -> "FrameAuth":
        """Load a deployment key from a hex-encoded key file."""
        return cls(load_keyfile(path))

    def tag(self, header: bytes, body: bytes) -> bytes:
        """The HMAC-SHA256 tag authenticating ``header || body``."""
        return self._key.digest(header + body)

    def verify(self, header: bytes, body: bytes, tag: bytes) -> bool:
        """Constant-time verification of a frame tag."""
        return self._key.verify(header + body, tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrameAuth(key_id={self.key_id})"


def load_keyfile(path: Union[str, Path]) -> bytes:
    """Read and decode a hex key file, validating its length."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise FrameAuthError(f"cannot read key file {path}: {exc}") from exc
    compact = "".join(text.split())
    try:
        key = bytes.fromhex(compact)
    except ValueError:
        raise FrameAuthError(f"key file {path} is not hex-encoded")
    if len(key) < MIN_KEY_BYTES:
        raise FrameAuthError(
            f"key file {path} holds only {len(key)} key bytes "
            f"(minimum {MIN_KEY_BYTES})"
        )
    return key


def generate_keyfile(path: Union[str, Path], force: bool = False) -> bytes:
    """Write a fresh random deployment key to ``path`` (mode 0600).

    Refuses to overwrite an existing file unless ``force`` — silently
    rotating a live deployment's key would cut off every running
    daemon.
    """
    key = secrets.token_bytes(GENERATED_KEY_BYTES)
    target = Path(path)
    if target.exists() and not force:
        raise FrameAuthError(
            f"key file {target} already exists (pass force to overwrite)"
        )
    target.write_text(key.hex() + "\n")
    try:
        target.chmod(0o600)
    except OSError:  # pragma: no cover - exotic filesystems
        pass
    return key


def resolve_auth(auth: AuthSpec = None) -> Optional[FrameAuth]:
    """Resolve an ``auth`` argument to a :class:`FrameAuth` or ``None``.

    * ``None`` — deployment default: load ``REPRO_TRANSPORT_KEYFILE``
      if set, otherwise run unauthenticated.
    * :data:`AUTH_DISABLED` — force auth off, ignoring the environment.
    * :class:`FrameAuth` — used as-is.
    * ``str`` / ``Path`` — treated as a key file path.

    Called once at transport/host/client construction so the hot path
    never consults the environment per frame.
    """
    if auth is None:
        path = os.environ.get(KEYFILE_ENV, "").strip()
        return FrameAuth.from_keyfile(path) if path else None
    if auth is AUTH_DISABLED:
        return None
    if isinstance(auth, FrameAuth):
        return auth
    return FrameAuth.from_keyfile(auth)


# ---------------------------------------------------------------------------
# Restricted unpickling
# ---------------------------------------------------------------------------

#: Modules whose classes a wire frame body may reference.  Everything a
#: registered wire kind transitively pickles lives here: Spread
#: envelopes and their nested events, client IPC verbs, secure-layer
#: sealed/control payloads, and key-agreement tokens.
WIRE_SAFE_MODULES: Tuple[str, ...] = (
    "repro.types",
    "repro.spread.messages",
    "repro.spread.events",
    "repro.spread.flush",
    "repro.spread.fragments",
    "repro.spread.ring",
    "repro.transport.protocol",
    "repro.secure.events",
    "repro.secure.cascade",
    "repro.secure.dataprotect",
    "repro.secure.member_auth",
    "repro.secure.nonmember",
    "repro.secure.daemon_model",
    "repro.cliques.tokens",
    "repro.ckd.protocol",
    "repro.tgdh.tokens",
)

#: Builtin constructors old pickle protocols may reference for container
#: types that newer protocols encode as opcodes.
_SAFE_BUILTINS: FrozenSet[str] = frozenset(
    {"set", "frozenset", "bytearray", "complex"}
)

_EXTRA_MODULES: Set[str] = set()


def register_wire_module(module: str) -> None:
    """Allow classes from ``module`` in wire frame bodies.

    Extension seam for embedders that register custom payload types;
    tests use it to ship fixture classes across the loopback transport.
    """
    _EXTRA_MODULES.add(module)


def _module_allowed(module: str) -> bool:
    return module in WIRE_SAFE_MODULES or module in _EXTRA_MODULES


class _RestrictedUnpickler(pickle.Unpickler):
    """``find_class`` limited to classes in the wire-safe modules."""

    def find_class(self, module: str, name: str) -> Any:
        if not _module_allowed(module):
            if module == "builtins" and name in _SAFE_BUILTINS:
                import builtins

                return getattr(builtins, name)
            raise RestrictedUnpickleError(
                f"frame body references {module}.{name}, outside the "
                f"wire-kind allowlist"
            )
        if "." in name:
            # Dotted lookups could traverse attributes of an allowed
            # class; no registered wire kind is a nested class.
            raise RestrictedUnpickleError(
                f"frame body references nested attribute {module}.{name}"
            )
        obj = getattr(importlib.import_module(module), name, None)
        if not isinstance(obj, type):
            raise RestrictedUnpickleError(
                f"frame body references non-class {module}.{name}"
            )
        return obj


def restricted_loads(data: bytes) -> Any:
    """Unpickle a wire frame body, resolving only allowlisted classes.

    The single choke point through which every byte received off a
    socket is deserialized.  Raises
    :class:`~repro.errors.RestrictedUnpickleError` when the body
    references anything outside :data:`WIRE_SAFE_MODULES` (plus the
    handful of safe builtin container constructors).
    """
    return _RestrictedUnpickler(io.BytesIO(data)).load()


# ---------------------------------------------------------------------------
# CLI: key file management
# ---------------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.auth",
        description="Manage pre-shared deployment key files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a fresh random key file")
    gen.add_argument("path", help="key file to create")
    gen.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing key file",
    )

    fpr = sub.add_parser(
        "fingerprint", help="print the key id of an existing key file"
    )
    fpr.add_argument("path", help="key file to inspect")

    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            generate_keyfile(args.path, force=args.force)
            print(f"wrote {GENERATED_KEY_BYTES * 8}-bit key to {args.path}")
            return 0
        auth = FrameAuth.from_keyfile(args.path)
        print(auth.key_id)
        return 0
    except FrameAuthError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
