"""The daemon host: real Spread daemons on a real-time event loop.

A :class:`DaemonHost` runs one or more unmodified
:class:`~repro.spread.daemon.SpreadDaemon` instances inside one asyncio
loop: each daemon gets a :class:`~repro.transport.tcp.TcpTransport`
(peer listener + per-peer outbound channels) and a *client listener*
where :class:`~repro.transport.client.TcpSpreadClient` connections
land.  Timers the daemons arm through the kernel seam are served by a
shared :class:`~repro.transport.rtclock.RealtimeClock`, i.e. bridged to
``loop.call_at`` — hello intervals, failure detection and membership
timeouts run on wall-clock seconds with their sim semantics intact.

An accepted client connection becomes a :class:`_ClientChannel`, which
plays the *client* role of the daemon's IPC surface: the daemon calls
``deliver_event`` / ``daemon_down`` on it exactly as it would on a sim
:class:`~repro.spread.client.SpreadClient`, and the channel turns each
into a framed ``ClientDeliver`` / ``ClientBye``.  A socket that drops
without a ``ClientDisconnect`` is reported as ``client_gone`` — the
same "broken IPC channel" a crashed client produces in the sim.

The CLI lives in :mod:`repro.transport.daemon`
(``python -m repro.transport.daemon``).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FrameError, SpreadError
from repro.spread.config import SpreadConfig
from repro.spread.daemon import SpreadDaemon
from repro.transport.auth import AUTH_DISABLED, AuthSpec, resolve_auth
from repro.transport.protocol import (
    ClientBye,
    ClientConnect,
    ClientDeliver,
    ClientDisconnect,
    ClientJoin,
    ClientLeave,
    ClientMulticast,
    ClientRefused,
    ClientWelcome,
)
from repro.transport.rtclock import RealtimeClock
from repro.transport.tcp import (
    READ_CHUNK,
    TcpTransport,
    TransportMap,
    drain_tasks,
)
from repro.transport.wire import FrameDecoder, encode_frame, max_frame_limit

#: Per-client outbound high-water mark, bytes.  A client socket whose
#: OS write buffer stays above this for longer than the transport's
#: send deadline is *stalled* — half-open or unreading — and gets
#: kicked so the daemon's event stream never backs up behind it.
CLIENT_WRITE_HIGH_WATER = 4 * 1024 * 1024


class _ClientChannel:
    """Server side of one client connection (the daemon's 'client')."""

    def __init__(
        self,
        host: "DaemonHost",
        daemon: SpreadDaemon,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.host = host
        self.daemon = daemon
        self._reader = reader
        self._writer = writer
        self._auth = host.auth
        transport = host.transports.get(daemon.name)
        self._counters = transport.counters if transport is not None else None
        self._private_name: Optional[str] = None
        self._closed = False
        self._disconnected = False
        self._stall_since: Optional[float] = None

    # -- the surface the daemon expects of a client ------------------------

    def deliver_event(self, event: Any) -> None:
        if self._closed:
            return
        try:
            self._writer.write(
                encode_frame(
                    ClientDeliver(event), self.host.max_frame, self._auth
                )
            )
        except Exception:
            self._drop()
            return
        self._check_backpressure()

    def _check_backpressure(self) -> None:
        """Deliveries are fire-and-forget (the daemon cannot await a
        slow client), so backpressure is detected after the fact: a
        write buffer continuously above the high-water mark past the
        send deadline means a stalled-but-open socket, and the client
        is kicked exactly like a crashed one."""
        try:
            buffered = self._writer.transport.get_write_buffer_size()
        except Exception:
            return
        clock = self.host.clock
        if buffered <= CLIENT_WRITE_HIGH_WATER:
            self._stall_since = None
            return
        if self._stall_since is None:
            self._stall_since = clock.now
            return
        stalled_for = clock.now - self._stall_since
        transport = self.host.transports.get(self.daemon.name)
        deadline = (
            transport.send_deadline if transport is not None else 5.0
        )
        if stalled_for <= deadline:
            return
        if transport is not None:
            transport.counters["client_stall_kicks"] += 1
        tracer = clock.tracer
        if tracer.enabled:
            tracer.record(
                "transport.client_stall_kick",
                daemon=self.daemon.name,
                client=self._private_name,
                buffered=buffered,
                stalled_for=stalled_for,
            )
        # Abort → run() ends → client_gone: same path as a crash.
        self.kick()

    def daemon_down(self) -> None:
        if self._closed:
            return
        try:
            self._writer.write(
                encode_frame(
                    ClientBye("daemon_down"), self.host.max_frame, self._auth
                )
            )
        except Exception:
            pass
        self._drop()

    # -- connection driving ------------------------------------------------

    async def run(self) -> None:
        decoder = FrameDecoder(
            self.host.max_frame, auth=self._auth, counters=self._counters
        )
        try:
            while True:
                data = await self._reader.read(READ_CHUNK)
                if not data:
                    break
                for op in decoder.feed(data):
                    if not self._handle(op):
                        return
        except (FrameError, ConnectionError, OSError):
            pass
        finally:
            self._drop()
            # An unannounced loss is a client crash: broken IPC channel.
            if (
                self._private_name is not None
                and not self._disconnected
                and self.daemon.alive
            ):
                self.daemon.client_gone(self._private_name)

    def _handle(self, op: Any) -> bool:
        """Apply one client verb; False ends the connection."""
        daemon = self.daemon
        if isinstance(op, ClientConnect):
            try:
                pid = daemon.client_connect(self, op.private_name)
            except SpreadError as exc:
                self._write(ClientRefused(str(exc)))
                return False
            self._private_name = op.private_name
            tracer = self.host.clock.tracer
            if tracer.enabled:
                tracer.record(
                    "transport.client_connect",
                    daemon=daemon.name,
                    client=op.private_name,
                )
            self._write(
                ClientWelcome(
                    pid=pid,
                    max_message_size=daemon.config.max_message_size,
                    daemons=daemon.config.daemons,
                )
            )
            return True
        if self._private_name is None:
            self._write(ClientRefused("first frame must be ClientConnect"))
            return False
        if isinstance(op, ClientMulticast):
            daemon.client_multicast(
                op.pid, op.service, op.group, op.payload, op.origin_seq
            )
        elif isinstance(op, ClientJoin):
            daemon.client_join(op.pid, op.group)
        elif isinstance(op, ClientLeave):
            daemon.client_leave(op.pid, op.group)
        elif isinstance(op, ClientDisconnect):
            self._disconnected = True
            if daemon.alive:
                daemon.client_gone(op.private_name)
            return False
        return True

    def _write(self, op: Any) -> None:
        try:
            self._writer.write(
                encode_frame(op, self.host.max_frame, self._auth)
            )
        except Exception:
            self._drop()

    def _drop(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
        except Exception:
            pass

    def kick(self) -> None:
        """Force-close the socket without telling the daemon first (the
        reconnect tests' guillotine: to the client this is a dead
        daemon, to the daemon a broken IPC channel)."""
        try:
            self._writer.transport.abort()
        except Exception:
            self._drop()


class DaemonHost:
    """One or more real daemons on one asyncio loop."""

    def __init__(
        self,
        config: SpreadConfig,
        hosted: Tuple[str, ...],
        addresses: Optional[TransportMap] = None,
        bind: str = "127.0.0.1",
        tracer=None,
        seed: int = 0,
        max_frame: Optional[int] = None,
        auth: AuthSpec = None,
    ) -> None:
        self.config = config
        self.hosted = tuple(hosted)
        self.addresses = addresses if addresses is not None else TransportMap()
        self.bind = bind
        self.tracer = tracer
        self.seed = seed
        self.max_frame = max_frame if max_frame is not None else max_frame_limit()
        self.auth = resolve_auth(auth)
        self.clock: Optional[RealtimeClock] = None
        self.daemons: Dict[str, SpreadDaemon] = {}
        self.transports: Dict[str, TcpTransport] = {}
        self._client_servers: List[asyncio.base_events.Server] = []
        self._channels: Dict[str, List[_ClientChannel]] = {}
        self._accept_tasks: set = set()

    async def start(self) -> None:
        """Bind every listener, then start the hosted daemons."""
        loop = asyncio.get_running_loop()
        self.clock = RealtimeClock(loop, tracer=self.tracer, seed=self.seed)
        for name in self.hosted:
            # Already-resolved auth is handed down as-is; AUTH_DISABLED
            # (not None) when off, so the transport does not re-consult
            # the environment and override an explicit opt-out.
            transport = TcpTransport(
                name,
                self.clock,
                self.addresses,
                max_frame=self.max_frame,
                auth=self.auth if self.auth is not None else AUTH_DISABLED,
            )
            peer_addr = self.addresses.peer(name)
            await transport.serve(self.bind, peer_addr[1] if peer_addr else 0)
            self.transports[name] = transport
            daemon = SpreadDaemon(self.clock, name, transport, self.config)
            self.daemons[name] = daemon
            self._channels[name] = []

            async def accept(reader, writer, daemon=daemon, name=name):
                channel = _ClientChannel(self, daemon, reader, writer)
                self._channels[name].append(channel)
                task = asyncio.current_task()
                self._accept_tasks.add(task)
                try:
                    await channel.run()
                finally:
                    self._accept_tasks.discard(task)
                    self._channels[name].remove(channel)

            client_addr = self.addresses.client(name)
            server = await asyncio.start_server(
                accept, self.bind, client_addr[1] if client_addr else 0
            )
            bound = server.sockets[0].getsockname()[:2]
            self.addresses.set_client(name, bound[0], bound[1])
            self._client_servers.append(server)
        # Listeners are all bound before any daemon speaks, so the first
        # hello a daemon broadcasts can already be delivered.
        for name in self.hosted:
            self.daemons[name].start()

    async def stop(self) -> None:
        """Close client connections, listeners and peer channels.
        Bounded: remote ends that never detach must not hang us."""
        for channels in self._channels.values():
            for channel in list(channels):
                channel._drop()
        for server in self._client_servers:
            server.close()
            try:
                await asyncio.wait_for(server.wait_closed(), 2.0)
            except asyncio.TimeoutError:
                pass
        self._client_servers.clear()
        await drain_tasks(self._accept_tasks, set())
        for transport in self.transports.values():
            await transport.close()
        for daemon in self.daemons.values():
            if daemon.alive:
                daemon.crash()

    # -- test/bench helpers ------------------------------------------------

    def kick_clients(self, daemon_name: str) -> int:
        """Abort every client socket of one daemon (reconnect drills).
        Returns the number of connections cut."""
        channels = list(self._channels.get(daemon_name, ()))
        for channel in channels:
            channel.kick()
        return len(channels)

    async def settle(self, timeout: float = 30.0) -> None:
        """Wait until every hosted daemon agrees on one installed view
        containing all configured daemons this host knows about."""
        from repro.spread.membership import STATE_OP

        def converged() -> bool:
            alive = [d for d in self.daemons.values() if d.alive]
            if not alive:
                return False
            views = {d.view for d in alive}
            if len(views) != 1:
                return False
            members = set(alive[0].view_members)
            return all(
                d.engine.state == STATE_OP for d in alive
            ) and members >= set(self.hosted)

        await wait_for_condition(converged, timeout)


async def wait_for_condition(
    predicate, timeout: float, interval: float = 0.005
) -> None:
    """Poll ``predicate`` until true (asyncio's run_until equivalent)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise TimeoutError(f"condition not met within {timeout}s")
        await asyncio.sleep(interval)
