"""``python -m repro.transport.daemon`` — run real Spread daemons.

Hosts one or more daemons of a deployment on this machine's asyncio
loop, listening on real TCP sockets.  Every machine in the deployment
runs the same command with the same ``--peer`` list and its own
``--host`` selection; a single machine can host the whole deployment
for loopback experiments (the default when ``--host`` is omitted).

Examples::

    # All three daemons on localhost, fixed ports:
    python -m repro.transport.daemon \\
        --peer d0=127.0.0.1:4803:4813 \\
        --peer d1=127.0.0.1:4804:4814 \\
        --peer d2=127.0.0.1:4805:4815

    # Only d1, in a three-daemon deployment spread over machines:
    python -m repro.transport.daemon --host d1 \\
        --peer d0=10.0.0.10:4803:4813 \\
        --peer d1=10.0.0.11:4803:4813 \\
        --peer d2=10.0.0.12:4803:4813

Each ``--peer`` is ``name=host:peer_port:client_port``: the peer port
carries daemon-to-daemon frames, the client port accepts
:class:`~repro.transport.client.TcpSpreadClient` connections.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.errors import TransportError
from repro.spread.config import SpreadConfig
from repro.transport.host import DaemonHost
from repro.transport.tcp import TransportMap


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.daemon",
        description="Host Spread daemons on real TCP sockets.",
    )
    parser.add_argument(
        "--peer",
        action="append",
        required=True,
        metavar="NAME=HOST:PEER_PORT:CLIENT_PORT",
        help="one entry per daemon in the deployment (repeatable)",
    )
    parser.add_argument(
        "--host",
        action="append",
        default=None,
        metavar="NAME",
        help="daemon(s) to host here (default: every --peer entry)",
    )
    parser.add_argument(
        "--bind", default="0.0.0.0", help="local bind address"
    )
    parser.add_argument(
        "--hello-interval", type=float, default=0.25,
        help="daemon heartbeat period, wall-clock seconds",
    )
    parser.add_argument(
        "--fail-timeout", type=float, default=1.5,
        help="silence before a peer daemon is suspected, seconds",
    )
    parser.add_argument(
        "--packing", action="store_true",
        help="enable sender-side message coalescing",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="rng seed for the clock"
    )
    parser.add_argument(
        "--keyfile", default=None, metavar="PATH",
        help="pre-shared deployment key file enabling frame "
        "authentication (default: $REPRO_TRANSPORT_KEYFILE if set)",
    )
    return parser


def parse_addresses(parser: argparse.ArgumentParser, args) -> TransportMap:
    """Validate ``--peer``/``--host`` into a :class:`TransportMap`,
    turning malformed specs (missing ``=``, bad ports, duplicate names)
    into argparse usage errors instead of tracebacks."""
    try:
        addresses = TransportMap.parse(args.peer)
    except TransportError as exc:
        parser.error(str(exc))
    known = {spec.split("=", 1)[0].strip() for spec in args.peer}
    for name in args.host or ():
        if name not in known:
            parser.error(f"--host {name!r} has no matching --peer entry")
    return addresses


def make_config(args) -> SpreadConfig:
    names = tuple(spec.split("=", 1)[0] for spec in args.peer)
    return SpreadConfig(
        daemons=names,
        hello_interval=args.hello_interval,
        fail_timeout=args.fail_timeout,
        gather_timeout=args.fail_timeout * 2,
        sync_timeout=args.fail_timeout * 4,
        packing=args.packing,
    )


async def run(args, addresses: TransportMap) -> None:
    config = make_config(args)
    hosted = tuple(args.host) if args.host else config.daemons
    host = DaemonHost(
        config,
        hosted,
        addresses,
        bind=args.bind,
        seed=args.seed,
        auth=args.keyfile,
    )
    await host.start()
    names = ", ".join(hosted)
    print(f"hosting {names} (bind {args.bind}); ctrl-c to stop", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        await stop.wait()
    finally:
        await host.stop()


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    addresses = parse_addresses(parser, args)
    try:
        asyncio.run(run(args, addresses))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
