"""``repro.transport.netem`` — WAN-shaped fault injection for real sockets.

The chaos crucible proves the protocol stack under the *simulated*
adversary (:mod:`repro.net`); this module is the same idea one layer
down, against the asyncio TCP backend: an in-process TCP proxy that
sits on each peer or client link and shapes the byte stream the way a
hostile wide-area network would.  Because it speaks plain TCP it also
runs standalone (``python -m repro.transport.netem``) between real
hosts — the multi-machine follow-on the ROADMAP names.

Per link and per direction (``fwd`` = toward the target, ``back`` =
toward the dialer), a mutable :class:`LinkShape` provides:

* **latency + jitter** — one-way added delay; jitter never reorders
  (delivery times are monotone per direction, like a real queue);
* **rate** — a bandwidth cap in bytes/second (serialization delay
  against a rolling link-busy cursor, i.e. a token-less token bucket);
* **loss** — per-chunk probability of a *retransmission penalty*: TCP
  hides real packet loss from the application as added latency, so loss
  here is modelled honestly as an RTO-shaped delay spike, not a hole in
  the stream (a hole in a TCP stream is corruption, which is separate);
* **corrupt / truncate** — byte flips and mid-frame truncation aimed at
  :class:`~repro.transport.wire.FrameDecoder`; both are
  connection-fatal by design (CRC / desync), so they exercise the
  decode-reject + reconnect path;
* **stall** — hold bytes without closing the socket (the half-open
  manufacturing knob: the connection looks alive, nothing moves);
* **blackhole** — silently discard bytes while both sockets stay open
  (a true partition: no RST, no FIN, only silence).

One-shot **reset** actions abort every live connection of a link.

Everything randomized draws from :class:`~repro.sim.rng
.DeterministicRng` children keyed by ``(seed, link, direction)``, and
fault *schedules* (:class:`NetemSchedule`, mirroring
:class:`~repro.net.fault.FaultSchedule`) are derived entirely from a
seed, so a failing schedule replays action-for-action.  Chunk
boundaries are an OS artifact, so byte-level determinism is only
promised for the unshapen case: a link with default shapes and no
schedule is **pass-through byte-identical** and injects zero faults
(pinned by ``tests/transport/test_netem.py``).

Observability: per-link counters (``bytes_fwd/back``, ``conns``,
``faults`` by kind) sampled by
:func:`repro.obs.metrics.collect_netem`; every applied action and
connection event is traced under the ``netem.*`` namespace.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FaultError, TransportError
from repro.sim.rng import DeterministicRng

#: Proxy read quantum.  Smaller than the transport's READ_CHUNK so rate
#: caps and per-chunk fault draws get a reasonable granularity.
PROXY_CHUNK = 16384

DIRECTIONS = ("fwd", "back")

#: Shape fields a schedule's ``shape`` action may set.
SHAPE_FIELDS = (
    "latency",
    "jitter",
    "rate",
    "loss",
    "loss_penalty",
    "corrupt",
    "truncate",
)

#: All-links wildcard in schedules and the CLI.
ALL_LINKS = "*"

#: Shape fields that are probabilities (must land in [0, 1]).
_PROBABILITY_FIELDS = ("loss", "corrupt", "truncate")


def check_shape_fields(fields: Dict[str, Any]) -> None:
    """Reject unknown or out-of-range shape fields (FaultError) — the
    validate-before-arm contract: a typo'd or impossible schedule must
    die loudly before any socket is perturbed."""
    unknown = sorted(set(fields) - set(SHAPE_FIELDS))
    if unknown:
        raise FaultError(
            f"unknown shape field(s) {unknown}; valid: {list(SHAPE_FIELDS)}"
        )
    for name, value in fields.items():
        if value is None:
            if name == "rate":
                continue  # None = uncapped
            raise FaultError(f"shape field {name} may not be None")
        if value < 0:
            raise FaultError(f"shape field {name} is negative: {value}")
        if name in _PROBABILITY_FIELDS and value > 1.0:
            raise FaultError(
                f"shape field {name} is a probability, got {value}"
            )


@dataclass
class LinkShape:
    """Mutable shaping state for one direction of one link.

    All probabilities are per forwarded chunk (``PROXY_CHUNK`` quantum);
    latency/jitter/penalties are seconds; ``rate`` is bytes/second
    (``None`` = uncapped).  ``stalled`` holds bytes (delivered on
    resume); ``blackholed`` discards them silently.
    """

    latency: float = 0.0
    jitter: float = 0.0
    rate: Optional[float] = None
    loss: float = 0.0
    loss_penalty: float = 0.25
    corrupt: float = 0.0
    truncate: float = 0.0
    stalled: bool = False
    blackholed: bool = False

    def is_passthrough(self) -> bool:
        """True when this shape cannot perturb the stream at all."""
        return (
            self.latency == 0.0
            and self.jitter == 0.0
            and self.rate is None
            and self.loss == 0.0
            and self.corrupt == 0.0
            and self.truncate == 0.0
            and not self.stalled
            and not self.blackholed
        )


class _Pipe:
    """One direction of one proxied connection."""

    def __init__(
        self,
        link: "NetemLink",
        direction: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        rng: DeterministicRng,
    ) -> None:
        self.link = link
        self.direction = direction
        self.reader = reader
        self.writer = writer
        self.rng = rng
        #: Monotone delivery cursor: jitter may never reorder bytes.
        self._deliver_at = 0.0
        #: Rolling link-busy cursor for the rate cap.
        self._busy_until = 0.0

    async def run(self) -> None:
        link = self.link
        loop = link._loop
        counters = link.counters
        byte_key = f"bytes_{self.direction}"
        try:
            while True:
                data = await self.reader.read(PROXY_CHUNK)
                if not data:
                    return
                shape = link.shape[self.direction]
                if shape.is_passthrough():
                    # The acceptance path: unshapen bytes move verbatim
                    # with no draws, no sleeps, no copies.
                    counters[byte_key] += len(data)
                    self.writer.write(data)
                    await self.writer.drain()
                    continue
                data = self._mangle(bytes(data), shape)
                while link.shape[self.direction].stalled:
                    # Half-open manufacturing: hold bytes, keep sockets.
                    await link._stall_changed.wait()
                if link.shape[self.direction].blackholed:
                    counters["blackholed_bytes"] += len(data)
                    continue
                delay = self._delay_for(len(data), shape, loop.time())
                if delay > 0:
                    await asyncio.sleep(delay)
                if data:
                    counters[byte_key] += len(data)
                    self.writer.write(data)
                    await self.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    def _mangle(self, data: bytes, shape: LinkShape) -> bytes:
        counters = self.link.counters
        if shape.truncate and self.rng.random() < shape.truncate:
            keep = self.rng.randint(0, max(0, len(data) - 1))
            data = data[:keep]
            counters["faults_truncate"] += 1
            self.link._trace("netem.truncate", kept=keep)
        if data and shape.corrupt and self.rng.random() < shape.corrupt:
            index = self.rng.randint(0, len(data) - 1)
            flip = 1 + self.rng.randint(0, 254)
            mutated = bytearray(data)
            mutated[index] ^= flip
            data = bytes(mutated)
            counters["faults_corrupt"] += 1
            self.link._trace("netem.corrupt", offset=index)
        return data

    def _delay_for(self, size: int, shape: LinkShape, now: float) -> float:
        delay = shape.latency
        if shape.jitter:
            delay += self.rng.uniform(0.0, shape.jitter)
        if shape.loss and self.rng.random() < shape.loss:
            # TCP turns packet loss into retransmission latency; model
            # it as an RTO-shaped spike on this chunk.
            delay += shape.loss_penalty
            self.link.counters["faults_loss"] += 1
        start = now
        if shape.rate:
            start = max(now, self._busy_until)
            self._busy_until = start + size / shape.rate
        deliver_at = max(start + delay, self._deliver_at)
        self._deliver_at = deliver_at
        return max(0.0, deliver_at - now)


class NetemLink:
    """One shaped TCP proxy: a local listener forwarding to a target.

    ``target`` is ``(host, port)`` or a zero-argument callable returning
    it — resolved per connection, so a link can be created before the
    real endpoint has bound its ephemeral port.
    """

    def __init__(
        self,
        name: str,
        target: Union[Tuple[str, int], Callable[[], Tuple[str, int]]],
        rng: Optional[DeterministicRng] = None,
        tracer=None,
    ) -> None:
        self.name = name
        self.target = target
        self.rng = rng if rng is not None else DeterministicRng(0, label=name)
        self.tracer = tracer
        self.shape: Dict[str, LinkShape] = {
            "fwd": LinkShape(),
            "back": LinkShape(),
        }
        self.counters: Dict[str, int] = {
            "conns": 0,
            "conns_active": 0,
            "conn_resets": 0,
            "bytes_fwd": 0,
            "bytes_back": 0,
            "blackholed_bytes": 0,
            "faults_loss": 0,
            "faults_corrupt": 0,
            "faults_truncate": 0,
            "connect_failures": 0,
        }
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_seq = 0
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._stall_changed: Optional[asyncio.Event] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the listener; returns (and remembers) the bound address."""
        self._loop = asyncio.get_running_loop()
        self._stall_changed = asyncio.Event()
        self._server = await asyncio.start_server(self._accept, host, port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    def _resolve_target(self) -> Tuple[str, int]:
        target = self.target() if callable(self.target) else self.target
        if target is None:
            raise TransportError(f"netem link {self.name}: no target address")
        return target

    def _trace(self, kind: str, **fields: Any) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(kind, link=self.name, **fields)

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_seq += 1
        conn_id = self._conn_seq
        try:
            await self._proxy_one(conn_id, reader, writer)
        except asyncio.CancelledError:
            # close() cancels handler tasks; finishing cleanly keeps
            # asyncio.streams' connection_made callback from logging the
            # CancelledError as an "Exception in callback" at teardown.
            pass
        finally:
            self._conn_tasks.discard(task)

    async def _proxy_one(
        self,
        conn_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self._resolve_target()
            )
        except (OSError, TransportError):
            self.counters["connect_failures"] += 1
            writer.close()
            return
        self.counters["conns"] += 1
        self.counters["conns_active"] += 1
        self._trace("netem.accept", conn=conn_id)
        self._conn_writers.add(writer)
        self._conn_writers.add(upstream_writer)
        fwd = _Pipe(
            self, "fwd", reader, upstream_writer,
            self.rng.child(f"conn{conn_id}/fwd"),
        )
        back = _Pipe(
            self, "back", upstream_reader, writer,
            self.rng.child(f"conn{conn_id}/back"),
        )
        pumps = [
            asyncio.ensure_future(fwd.run()),
            asyncio.ensure_future(back.run()),
        ]
        try:
            # Either side ending (EOF, reset, abort) tears down both:
            # the proxy forwards connection lifecycle, not only bytes.
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
            self.counters["conns_active"] -= 1
            self._conn_writers.discard(writer)
            self._conn_writers.discard(upstream_writer)
            for side in (writer, upstream_writer):
                try:
                    side.close()
                except Exception:
                    pass
            self._trace("netem.conn_closed", conn=conn_id)

    # -- fault application -------------------------------------------------

    def apply_shape(self, direction: str, **fields: Any) -> None:
        """Merge shaping fields into one or both directions."""
        check_shape_fields(fields)
        for side in self._sides(direction):
            self.shape[side] = replace(self.shape[side], **fields)
        self._trace("netem.shape", direction=direction, **fields)

    def clear(self, direction: str = "both") -> None:
        """Reset shaping to clean pass-through (stalls/blackholes too)."""
        for side in self._sides(direction):
            self.shape[side] = LinkShape()
        self._wake_stalled()
        self._trace("netem.clear", direction=direction)

    def stall(self, direction: str = "both") -> None:
        for side in self._sides(direction):
            self.shape[side].stalled = True
        self._trace("netem.stall", direction=direction)

    def resume(self, direction: str = "both") -> None:
        for side in self._sides(direction):
            self.shape[side].stalled = False
        self._wake_stalled()
        self._trace("netem.resume", direction=direction)

    def blackhole(self, direction: str = "both") -> None:
        for side in self._sides(direction):
            self.shape[side].blackholed = True
        self._trace("netem.blackhole", direction=direction)

    def heal(self, direction: str = "both") -> None:
        for side in self._sides(direction):
            self.shape[side].blackholed = False
        self._trace("netem.heal", direction=direction)

    def reset_connections(self) -> int:
        """Abort every live proxied connection (both sockets, RST-style).
        Returns the number of sockets aborted."""
        writers = list(self._conn_writers)
        for writer in writers:
            try:
                writer.transport.abort()
            except Exception:
                pass
        if writers:
            self.counters["conn_resets"] += 1
        self._trace("netem.reset", sockets=len(writers))
        return len(writers)

    def _sides(self, direction: str) -> Tuple[str, ...]:
        if direction == "both":
            return DIRECTIONS
        if direction not in DIRECTIONS:
            raise FaultError(
                f"unknown direction {direction!r}; want fwd/back/both"
            )
        return (direction,)

    def _wake_stalled(self) -> None:
        if self._stall_changed is not None:
            self._stall_changed.set()
            self._stall_changed.clear()
            # Re-arm: pipes loop on the live shape, the event is only a
            # wake-up; a Event-per-transition keeps them from spinning.
            self._stall_changed = asyncio.Event()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), 2.0)
            except asyncio.TimeoutError:
                pass
            self._server = None
        self.reset_connections()
        pending = {task for task in self._conn_tasks if not task.done()}
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._conn_tasks.clear()


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetemAction:
    """One scripted netem fault: what, which links, which direction, when."""

    at: float
    kind: str  # shape | clear | stall | resume | blackhole | heal | reset
    links: Tuple[str, ...] = (ALL_LINKS,)
    direction: str = "both"
    fields: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> str:
        where = ",".join(self.links)
        extras = ""
        if self.fields:
            extras = " " + " ".join(f"{k}={v}" for k, v in self.fields)
        side = "" if self.direction == "both" else f" [{self.direction}]"
        return f"t={self.at}: {self.kind} {where}{side}{extras}"


#: Action kinds a netem schedule may contain.
NETEM_KINDS = frozenset(
    {"shape", "clear", "stall", "resume", "blackhole", "heal", "reset"}
)


@dataclass
class NetemSchedule:
    """An ordered collection of netem actions (the wire-level sibling of
    :class:`~repro.net.fault.FaultSchedule`)."""

    actions: List[NetemAction] = field(default_factory=list)

    def _add(
        self,
        at: float,
        kind: str,
        links: Sequence[str],
        direction: str = "both",
        **fields: Any,
    ) -> "NetemSchedule":
        self.actions.append(
            NetemAction(
                at=at,
                kind=kind,
                links=tuple(links) if links else (ALL_LINKS,),
                direction=direction,
                fields=tuple(sorted(fields.items())),
            )
        )
        return self

    def shape(
        self, at: float, links: Sequence[str] = (ALL_LINKS,),
        direction: str = "both", **fields: Any,
    ) -> "NetemSchedule":
        """Merge shaping fields (latency/jitter/rate/loss/corrupt/...)."""
        return self._add(at, "shape", links, direction, **fields)

    def clear(
        self, at: float, links: Sequence[str] = (ALL_LINKS,)
    ) -> "NetemSchedule":
        return self._add(at, "clear", links)

    def stall(
        self, at: float, links: Sequence[str] = (ALL_LINKS,),
        direction: str = "both",
    ) -> "NetemSchedule":
        return self._add(at, "stall", links, direction)

    def resume(
        self, at: float, links: Sequence[str] = (ALL_LINKS,),
        direction: str = "both",
    ) -> "NetemSchedule":
        return self._add(at, "resume", links, direction)

    def blackhole(
        self, at: float, links: Sequence[str] = (ALL_LINKS,),
        direction: str = "both",
    ) -> "NetemSchedule":
        return self._add(at, "blackhole", links, direction)

    def heal(
        self, at: float, links: Sequence[str] = (ALL_LINKS,),
        direction: str = "both",
    ) -> "NetemSchedule":
        return self._add(at, "heal", links, direction)

    def reset(
        self, at: float, links: Sequence[str] = (ALL_LINKS,)
    ) -> "NetemSchedule":
        return self._add(at, "reset", links)

    def describe(self) -> List[str]:
        return [
            action.describe()
            for action in sorted(self.actions, key=lambda a: (a.at, a.kind))
        ]


class NetemWorld:
    """A named collection of :class:`NetemLink`\\ s plus schedule arming.

    The world owns the links of one deployment (every peer-pair and
    client link of a transport-crucible run), validates schedules
    before arming anything (:class:`~repro.errors.FaultError` — same
    contract as :class:`~repro.net.fault.FaultInjector`), and applies
    timed actions on a clock.
    """

    def __init__(self, seed: int = 0, tracer=None) -> None:
        self.seed = seed
        self.tracer = tracer
        self.rng = DeterministicRng(seed, label="netem")
        self.links: Dict[str, NetemLink] = {}
        self.fired: List[NetemAction] = []

    async def open_link(
        self,
        name: str,
        target: Union[Tuple[str, int], Callable[[], Tuple[str, int]]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> Tuple[str, int]:
        """Create, start and register one link; returns its address."""
        if name in self.links:
            raise FaultError(f"netem link {name!r} already exists")
        link = NetemLink(
            name, target, rng=self.rng.child(f"link/{name}"),
            tracer=self.tracer,
        )
        address = await link.start(host, port)
        self.links[name] = link
        return address

    def _select(self, names: Sequence[str]) -> List[NetemLink]:
        if ALL_LINKS in names:
            return list(self.links.values())
        return [self.links[name] for name in names]

    def validate(self, schedule: NetemSchedule) -> None:
        for action in schedule.actions:
            if action.kind not in NETEM_KINDS:
                raise FaultError(
                    f"unknown netem action kind {action.kind!r};"
                    f" valid kinds: {sorted(NETEM_KINDS)}"
                )
            if action.direction not in DIRECTIONS + ("both",):
                raise FaultError(
                    f"unknown direction {action.direction!r} in {action}"
                )
            unknown_links = [
                name for name in action.links
                if name != ALL_LINKS and name not in self.links
            ]
            if unknown_links:
                raise FaultError(
                    f"netem action targets unknown link(s) {unknown_links};"
                    f" known: {sorted(self.links)}"
                )
            if action.kind == "shape":
                check_shape_fields(dict(action.fields))

    def arm(self, schedule: NetemSchedule, clock) -> None:
        """Validate, then schedule every action via ``clock.call_at``
        (a :class:`~repro.transport.rtclock.RealtimeClock`: past
        deadlines fire ASAP, so relative schedules arm cleanly)."""
        self.validate(schedule)
        for action in schedule.actions:
            clock.call_at(
                action.at, self._runner(action), label=f"netem:{action.kind}"
            )

    def apply(self, action: NetemAction) -> None:
        """Apply one action immediately (the arm path calls this)."""
        self.fired.append(action)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.record(
                "netem.fire",
                fault=action.kind,
                at=action.at,
                links=list(action.links),
                direction=action.direction,
            )
        for link in self._select(action.links):
            if action.kind == "shape":
                link.apply_shape(action.direction, **dict(action.fields))
            elif action.kind == "clear":
                link.clear()
            elif action.kind == "stall":
                link.stall(action.direction)
            elif action.kind == "resume":
                link.resume(action.direction)
            elif action.kind == "blackhole":
                link.blackhole(action.direction)
            elif action.kind == "heal":
                link.heal(action.direction)
            elif action.kind == "reset":
                link.reset_connections()

    def _runner(self, action: NetemAction) -> Callable[[], None]:
        def run() -> None:
            self.apply(action)

        return run

    def counters_total(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for link in self.links.values():
            for key, value in link.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def faults_injected(self) -> int:
        """Total message-level faults all links injected (the empty-
        schedule acceptance check asserts this stays zero)."""
        totals = self.counters_total()
        return (
            totals.get("faults_loss", 0)
            + totals.get("faults_corrupt", 0)
            + totals.get("faults_truncate", 0)
            + totals.get("conn_resets", 0)
            + totals.get("blackholed_bytes", 0)
        )

    async def close(self) -> None:
        for link in self.links.values():
            await link.close()
        self.links.clear()


# ---------------------------------------------------------------------------
# standalone CLI
# ---------------------------------------------------------------------------


def _parse_hostport(text: str) -> Tuple[str, int]:
    host, __, port = text.rpartition(":")
    if not host:
        raise argparse.ArgumentTypeError(
            f"want HOST:PORT, got {text!r}"
        )
    return host, int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.netem",
        description="WAN-shaped TCP proxy: forward LISTEN -> TARGET with"
        " deterministic latency/jitter/rate/loss/corruption shaping."
        " Runs standalone between real hosts or in-process in tests.",
    )
    parser.add_argument(
        "--listen", type=_parse_hostport, required=True,
        metavar="HOST:PORT", help="local listener (port 0 = ephemeral)",
    )
    parser.add_argument(
        "--target", type=_parse_hostport, required=True,
        metavar="HOST:PORT", help="where shaped traffic is forwarded",
    )
    parser.add_argument("--latency", type=float, default=0.0,
                        help="one-way added delay, seconds")
    parser.add_argument("--jitter", type=float, default=0.0,
                        help="uniform extra delay bound, seconds")
    parser.add_argument("--rate", type=float, default=None,
                        help="bandwidth cap, bytes/second")
    parser.add_argument("--loss", type=float, default=0.0,
                        help="per-chunk retransmit-penalty probability")
    parser.add_argument("--corrupt", type=float, default=0.0,
                        help="per-chunk byte-flip probability")
    parser.add_argument("--truncate", type=float, default=0.0,
                        help="per-chunk truncation probability")
    parser.add_argument("--back-latency", type=float, default=None,
                        help="asymmetric return-path delay (default: --latency)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic rng seed for every draw")
    parser.add_argument("--name", default="netem",
                        help="link name in traces and counter dumps")
    return parser


async def _run_cli(args) -> None:
    link = NetemLink(
        args.name, tuple(args.target),
        rng=DeterministicRng(args.seed, label=args.name),
    )
    host, port = args.listen
    bound = await link.start(host, port)
    fwd = dict(
        latency=args.latency, jitter=args.jitter, rate=args.rate,
        loss=args.loss, corrupt=args.corrupt, truncate=args.truncate,
    )
    back = dict(fwd)
    if args.back_latency is not None:
        back["latency"] = args.back_latency
    link.apply_shape("fwd", **fwd)
    link.apply_shape("back", **back)
    print(
        f"netem {args.name}: {bound[0]}:{bound[1]} ->"
        f" {args.target[0]}:{args.target[1]}"
        f" latency={args.latency}s jitter={args.jitter}s"
        f" loss={args.loss} corrupt={args.corrupt} seed={args.seed}",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        await stop.wait()
    finally:
        await link.close()
        print(f"netem {args.name} counters: {link.counters}", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_run_cli(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
