"""``python -m repro.transport.launch`` — run a deployment from a file.

Spawns one ``python -m repro.transport.daemon`` process per *machine*
group of a :mod:`repro.transport.deploy` config, waits until every
hosted daemon's listeners accept connections, and tears the processes
down cleanly (SIGTERM, bounded wait, SIGKILL stragglers) on exit or
ctrl-c.  With ``--machine`` only that machine's share is launched — the
command each box of a real multi-host deployment runs against the same
copied config file.

:class:`LaunchedDeployment` is the library face of the same lifecycle;
the multihost bench and the CI smoke job drive it directly::

    deployment = load_deployment("deploy.toml")
    with LaunchedDeployment(deployment) as launched:
        launched.wait_ready()
        ...  # connect TcpSpreadClients against deployment addresses
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import DeployError
from repro.transport.auth import KEYFILE_ENV
from repro.transport.deploy import Deployment, load_deployment

#: How long ``stop`` lets SIGTERM work before SIGKILL.
STOP_GRACE = 5.0


def _src_root() -> str:
    """The directory holding the ``repro`` package, for child
    ``PYTHONPATH`` — children must import the same code we run."""
    import repro

    return str(Path(repro.__file__).parents[1])


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = _src_root()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    # The deployment file is the single source of truth for frame auth:
    # a config without a keyfile must launch daemons *without* auth even
    # if the launching shell exports one.
    env.pop(KEYFILE_ENV, None)
    return env


class LaunchedDeployment:
    """The daemon processes of one deployment, as a context manager."""

    def __init__(
        self,
        deployment: Deployment,
        machines: Optional[Sequence[str]] = None,
        python: str = sys.executable,
        log_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.deployment = deployment
        all_machines = deployment.machines()
        if machines is None:
            self.machines = list(all_machines)
        else:
            for machine in machines:
                if machine not in all_machines:
                    raise DeployError(
                        f"unknown machine {machine!r} "
                        f"(config has: {', '.join(all_machines)})"
                    )
            self.machines = list(machines)
        self.python = python
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.processes: Dict[str, subprocess.Popen] = {}
        self._logs: List = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn one daemon process per machine group."""
        if self.processes:
            raise DeployError("deployment already started")
        env = _child_env()
        for machine in self.machines:
            argv = [self.python, "-m", "repro.transport.daemon"]
            argv += self.deployment.daemon_argv(machine)
            if self.log_dir is not None:
                self.log_dir.mkdir(parents=True, exist_ok=True)
                log = open(self.log_dir / f"{machine}.log", "wb")
                self._logs.append(log)
                stdout = stderr = log
            else:
                stdout = stderr = subprocess.DEVNULL
            self.processes[machine] = subprocess.Popen(
                argv, env=env, stdout=stdout, stderr=stderr
            )

    def hosted_daemons(self) -> List[str]:
        """Names of the daemons the launched machines host."""
        groups = self.deployment.machines()
        return [name for machine in self.machines for name in groups[machine]]

    def poll(self) -> Dict[str, Optional[int]]:
        """Machine → exit code (None while running)."""
        return {
            machine: process.poll()
            for machine, process in self.processes.items()
        }

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every hosted daemon's peer and client listeners
        accept TCP connections, or raise :class:`DeployError`.

        A child that exits during the wait fails fast — a typo'd config
        must not burn the whole timeout."""
        deadline = time.monotonic() + timeout
        targets = []
        for name in self.hosted_daemons():
            spec = self.deployment.spec(name)
            targets.append((name, "peer", spec.peer_address))
            targets.append((name, "client", spec.client_address))
        remaining = list(targets)
        while remaining:
            for machine, code in self.poll().items():
                if code is not None:
                    raise DeployError(
                        f"daemon process for machine {machine!r} exited "
                        f"with code {code} before becoming ready"
                    )
            still = []
            for target in remaining:
                __, __, address = target
                try:
                    with socket.create_connection(address, timeout=0.5):
                        pass
                except OSError:
                    still.append(target)
            remaining = still
            if not remaining:
                return
            if time.monotonic() > deadline:
                missing = ", ".join(
                    f"{name}/{role}@{addr[0]}:{addr[1]}"
                    for name, role, addr in remaining
                )
                raise DeployError(
                    f"deployment not ready within {timeout}s "
                    f"(waiting on {missing})"
                )
            time.sleep(0.05)

    def stop(self, grace: float = STOP_GRACE) -> Dict[str, Optional[int]]:
        """Terminate every child: SIGTERM, bounded wait, then SIGKILL."""
        for process in self.processes.values():
            if process.poll() is None:
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - already reaped
                    pass
        deadline = time.monotonic() + grace
        for process in self.processes.values():
            left = max(0.0, deadline - time.monotonic())
            try:
                process.wait(left)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        codes = self.poll()
        for log in self._logs:
            try:
                log.close()
            except OSError:  # pragma: no cover
                pass
        self._logs.clear()
        return codes

    def __enter__(self) -> "LaunchedDeployment":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport.launch",
        description="Launch the daemon processes of a deployment file.",
    )
    parser.add_argument("config", help="deployment file (TOML or JSON)")
    parser.add_argument(
        "--machine",
        action="append",
        default=None,
        metavar="NAME",
        help="launch only this machine's daemons (repeatable; "
        "default: every machine in the config)",
    )
    parser.add_argument(
        "--ready-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for every listener to come up",
    )
    parser.add_argument(
        "--log-dir",
        default=None,
        metavar="DIR",
        help="write per-machine daemon logs here (default: discard)",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        deployment = load_deployment(args.config)
        launched = LaunchedDeployment(
            deployment, machines=args.machine, log_dir=args.log_dir
        )
    except DeployError as exc:
        parser.error(str(exc))
    stop_requested = {"flag": False}

    def request_stop(signum, frame):  # pragma: no cover - signal path
        stop_requested["flag"] = True

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, request_stop)
    try:
        launched.start()
        try:
            launched.wait_ready(args.ready_timeout)
        except DeployError as exc:
            print(f"error: {exc}", file=sys.stderr)
            launched.stop()
            return 1
        hosted = ", ".join(launched.hosted_daemons())
        auth = "on" if deployment.keyfile else "off"
        print(
            f"deployment ready: {hosted} "
            f"({len(launched.processes)} process(es), frame auth {auth}); "
            "ctrl-c to stop",
            flush=True,
        )
        while not stop_requested["flag"]:
            time.sleep(0.2)
            for machine, code in launched.poll().items():
                if code is not None:
                    print(
                        f"machine {machine!r} exited with code {code}",
                        file=sys.stderr,
                    )
                    launched.stop()
                    return 1
    finally:
        launched.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
