"""Client ↔ daemon IPC verbs for the TCP backend.

One dataclass per operation of the Spread client API's connection half
(plus the daemon-to-daemon ``PeerHello`` stream preamble).  Each is sent
as one :mod:`repro.transport.wire` frame; the request verbs mirror the
``DaemonEndpoint`` seam in :mod:`repro.transport.base` one-to-one, and
``ClientDeliver`` is the downstream half — the daemon pushing a
:class:`~repro.spread.events.DataEvent` / ``MembershipEvent`` /
``FlushRequestEvent`` / ``SelfLeaveEvent`` to the connection, exactly
the objects :meth:`SpreadClient.deliver_event` receives in the sim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.types import ProcessId, ServiceType


@dataclass(frozen=True, slots=True)
class PeerHello:
    """First frame on every daemon-to-daemon connection: who is calling.

    TCP gives no datagram source address, so the dialing daemon
    identifies itself once and every later frame on the stream is
    attributed to ``sender``.
    """

    sender: str
    wire_version: int = 2


@dataclass(frozen=True, slots=True)
class ClientConnect:
    """``SP_connect``: register ``private_name`` on this connection."""

    private_name: str


@dataclass(frozen=True, slots=True)
class ClientWelcome:
    """Accept a connect: the private group id plus the config the client
    library needs locally (fragmentation threshold, deployment names)."""

    pid: ProcessId
    max_message_size: int
    daemons: Tuple[str, ...]


@dataclass(frozen=True, slots=True)
class ClientRefused:
    """Reject a connect (duplicate private name, daemon shutting down)."""

    reason: str


@dataclass(frozen=True, slots=True)
class ClientJoin:
    """``SP_join``."""

    pid: ProcessId
    group: str


@dataclass(frozen=True, slots=True)
class ClientLeave:
    """``SP_leave``."""

    pid: ProcessId
    group: str


@dataclass(frozen=True, slots=True)
class ClientMulticast:
    """``SP_multicast``: one send (fragments travel as separate verbs)."""

    pid: ProcessId
    service: ServiceType
    group: str
    payload: Any
    origin_seq: int


@dataclass(frozen=True, slots=True)
class ClientDisconnect:
    """``SP_disconnect``: voluntary close (an unannounced socket loss is
    treated as a client crash, same as a broken IPC channel in the sim)."""

    private_name: str


@dataclass(frozen=True, slots=True)
class ClientDeliver:
    """Daemon → client push of one queued event."""

    event: Any


@dataclass(frozen=True, slots=True)
class ClientBye:
    """Daemon → client: the daemon is going down; the connection dies."""

    reason: str = "daemon_down"
