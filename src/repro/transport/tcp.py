"""The asyncio TCP backend of the ``Transport`` seam.

One :class:`TcpTransport` per hosted daemon.  Outbound, it keeps one
:class:`_PeerChannel` per destination daemon — a background task owning
a TCP connection that identifies itself with a
:class:`~repro.transport.protocol.PeerHello` and then streams frames;
the channel reconnects with capped exponential backoff and, because the
seam is a *datagram* service (reliability lives in the daemon's
NACK/retransmit machinery above), buffered frames beyond a bound are
dropped oldest-first rather than held forever against a dead peer.
Inbound, :meth:`TcpTransport.serve` accepts peer connections, attributes
each stream to the daemon named in its ``PeerHello``, and hands decoded
payloads straight to ``node.deliver(source, payload)`` — the same entry
point the sim network calls.

Addressing goes through a :class:`TransportMap` (daemon name →
``(host, port)`` for the peer and client listeners), shared by every
host and client in a deployment.  Binding to port 0 records the
ephemeral port back into the map, which is how single-process loopback
deployments (tests, benches) wire themselves without port collisions.

Observability: the transport keeps always-on counters
(``bytes_sent/recv``, ``frames_sent/recv``, ``connects``,
``reconnects``, ``send_drops``, ``decode_errors``) plus power-of-two
frame-size histograms, sampled by
:func:`repro.obs.metrics.collect_transport`; connection-level events
are traced under the ``transport.*`` namespace.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Deque, Dict, Optional, Tuple

from collections import deque

from repro.errors import FrameError, TransportError
from repro.transport.auth import AuthSpec, resolve_auth
from repro.transport.protocol import PeerHello
from repro.transport.wire import (
    REJECT_COUNTERS,
    FrameDecoder,
    encode_frame,
    max_frame_limit,
)

#: Reconnect backoff bounds; retries use *decorrelated jitter* between
#: them (see :func:`decorrelated_jitter`), not a bare doubling.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Outbound datagram buffer per peer channel, in frames.
SEND_BUFFER_FRAMES = 8192

READ_CHUNK = 65536

SEND_DEADLINE_ENV = "REPRO_TRANSPORT_SEND_DEADLINE"
DEFAULT_SEND_DEADLINE = 5.0


def send_deadline_limit() -> float:
    """The per-peer write-progress deadline in seconds
    (``REPRO_TRANSPORT_SEND_DEADLINE``): if a connected peer accepts no
    bytes for this long the connection is aborted and rebuilt rather
    than letting a zero-window/half-open socket wedge the channel."""
    raw = os.environ.get(SEND_DEADLINE_ENV, "")
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise TransportError(
                f"{SEND_DEADLINE_ENV} is not a number: {raw!r}"
            )
        if value <= 0:
            raise TransportError(f"{SEND_DEADLINE_ENV} must be > 0")
        return value
    return DEFAULT_SEND_DEADLINE


def decorrelated_jitter(rng, previous: float,
                        base: float = BACKOFF_BASE,
                        cap: float = BACKOFF_CAP) -> float:
    """Next reconnect delay, decorrelated-jitter style: uniform in
    ``[base, previous * 3]``, capped.  Unlike pure exponential doubling,
    peers that lost the same daemon at the same instant spread their
    retries instead of storming back in lockstep."""
    return min(cap, rng.uniform(base, max(base, previous * 3.0)))


class TransportMap:
    """Shared name → address directory for one deployment.

    Two address spaces per daemon: the *peer* listener (daemon-to-daemon
    frames) and the *client* listener (the Spread client API).  Entries
    appear either from configuration (``parse``) or when a listener
    binds (ephemeral-port discovery).
    """

    def __init__(self) -> None:
        self._peers: Dict[str, Tuple[str, int]] = {}
        self._clients: Dict[str, Tuple[str, int]] = {}

    def set_peer(self, name: str, host: str, port: int) -> None:
        self._peers[name] = (host, port)

    def set_client(self, name: str, host: str, port: int) -> None:
        self._clients[name] = (host, port)

    def peer(self, name: str) -> Optional[Tuple[str, int]]:
        return self._peers.get(name)

    def client(self, name: str) -> Optional[Tuple[str, int]]:
        return self._clients.get(name)

    def knows(self, name: str) -> bool:
        return name in self._peers

    @classmethod
    def parse(cls, specs) -> "TransportMap":
        """Build a map from ``name=host:peer_port:client_port`` strings
        (the CLI's ``--peer`` format).  Raises
        :class:`~repro.errors.TransportError` naming the exact defect —
        missing ``=``, malformed address, non-integer port, duplicate
        daemon name — so CLIs can surface it as a usage error."""
        table = cls()
        for spec in specs:
            if "=" not in spec:
                raise TransportError(
                    f"bad peer spec {spec!r}: missing '=' "
                    "(want name=host:peer_port:client_port)"
                )
            name, address = spec.split("=", 1)
            name = name.strip()
            if not name:
                raise TransportError(f"bad peer spec {spec!r}: empty name")
            if table.knows(name):
                raise TransportError(
                    f"bad peer spec {spec!r}: duplicate daemon name {name!r}"
                )
            parts = address.rsplit(":", 2)
            if len(parts) != 3 or not parts[0]:
                raise TransportError(
                    f"bad peer spec {spec!r}: address must be "
                    "host:peer_port:client_port"
                )
            host, peer_port, client_port = parts
            try:
                table.set_peer(name, host, int(peer_port))
                table.set_client(name, host, int(client_port))
            except ValueError:
                raise TransportError(
                    f"bad peer spec {spec!r}: ports must be integers, "
                    f"got {peer_port!r} and {client_port!r}"
                )
        return table


async def drain_tasks(tasks: set, writers: set, timeout: float = 2.0) -> None:
    """Wind down connection-handler tasks: close their sockets so the
    handlers exit on EOF, then wait (cancelling only stragglers —
    cancelling a parked stream handler outright makes asyncio's
    connection bookkeeping log spurious CancelledErrors)."""
    for writer in list(writers):
        try:
            writer.transport.abort()
        except Exception:
            pass
    writers.clear()
    pending = {task for task in tasks if not task.done()}
    tasks.clear()
    if not pending:
        return
    done, still = await asyncio.wait(pending, timeout=timeout)
    for task in still:
        task.cancel()
    if still:
        await asyncio.gather(*still, return_exceptions=True)


def size_bucket(size: int) -> int:
    """The power-of-two histogram bucket (its upper bound) for ``size``."""
    bucket = 16
    while bucket < size:
        bucket <<= 1
    return bucket


class TcpTransport:
    """Daemon-to-daemon datagram service over per-peer TCP connections.

    Satisfies the ``Transport`` seam (``add_node`` / ``has_node`` /
    ``send``) for exactly one local daemon.
    """

    def __init__(
        self,
        name: str,
        clock,
        addresses: TransportMap,
        max_frame: Optional[int] = None,
        auth: AuthSpec = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.addresses = addresses
        self.max_frame = max_frame if max_frame is not None else max_frame_limit()
        # Resolved once here (None consults REPRO_TRANSPORT_KEYFILE);
        # the send/receive hot paths never touch the environment.
        self.auth = resolve_auth(auth)
        self._node: Any = None
        self._channels: Dict[str, _PeerChannel] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._serve_tasks: set = set()
        self._serve_writers: set = set()
        self._closing = False
        self.counters: Dict[str, int] = {
            "bytes_sent": 0,
            "bytes_recv": 0,
            "frames_sent": 0,
            "frames_recv": 0,
            "connects": 0,
            "reconnects": 0,
            "connect_failures": 0,
            "send_drops": 0,
            "decode_errors": 0,
            "send_deadline_aborts": 0,
            "peer_eof_closes": 0,
            "client_stall_kicks": 0,
            "send_buffer_peak_frames": 0,
            "send_buffer_peak_bytes": 0,
        }
        for key in REJECT_COUNTERS:
            self.counters[key] = 0
        self.send_deadline = send_deadline_limit()
        #: Frame-size histograms: power-of-two bucket -> frame count.
        self.tx_frame_sizes: Dict[int, int] = {}
        self.rx_frame_sizes: Dict[int, int] = {}

    # -- the Transport seam ------------------------------------------------

    def add_node(self, node: Any) -> None:
        """Register the local daemon (the seam's single-node degenerate
        case: a TcpTransport carries exactly one daemon)."""
        if self._node is not None and self._node is not node:
            raise TransportError(f"transport {self.name} already has a node")
        self._node = node

    def has_node(self, name: str) -> bool:
        """Reachability by configuration: self, or an address we know."""
        return name == self.name or self.addresses.knows(name)

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> None:
        """Queue one datagram for ``destination`` (never blocks)."""
        if self._closing:
            return
        data = encode_frame(payload, self.max_frame, self.auth)
        self.counters["frames_sent"] += 1
        self.counters["bytes_sent"] += len(data)
        bucket = size_bucket(len(data))
        self.tx_frame_sizes[bucket] = self.tx_frame_sizes.get(bucket, 0) + 1
        if destination == self.name:
            # Self-delivery loopback (the daemon never does this today,
            # but the datagram contract allows it).
            self.clock.loop.call_soon(self._deliver, source, payload)
            return
        channel = self._channels.get(destination)
        if channel is None:
            channel = self._channels[destination] = _PeerChannel(
                self, destination
            )
        channel.send(data)

    # -- inbound -----------------------------------------------------------

    async def serve(self, host: str, port: int = 0) -> Tuple[str, int]:
        """Start the peer listener; records the bound address into the
        map and returns it."""
        self._server = await asyncio.start_server(self._accept, host, port)
        bound = self._server.sockets[0].getsockname()[:2]
        self.addresses.set_peer(self.name, bound[0], bound[1])
        return bound

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        def observe(kind: int, total: int) -> None:
            self.counters["frames_recv"] += 1
            self.counters["bytes_recv"] += total
            bucket = size_bucket(total)
            self.rx_frame_sizes[bucket] = self.rx_frame_sizes.get(bucket, 0) + 1

        decoder = FrameDecoder(
            self.max_frame,
            observe=observe,
            auth=self.auth,
            counters=self.counters,
        )
        peer: Optional[str] = None
        task = asyncio.current_task()
        self._serve_tasks.add(task)
        self._serve_writers.add(writer)
        try:
            while True:
                data = await reader.read(READ_CHUNK)
                if not data:
                    break
                for payload in decoder.feed(data):
                    if peer is None:
                        if not isinstance(payload, PeerHello):
                            raise FrameError(
                                "peer stream did not start with PeerHello"
                            )
                        peer = payload.sender
                        tracer = self.clock.tracer
                        if tracer.enabled:
                            tracer.record(
                                "transport.peer_accept",
                                me=self.name,
                                peer=peer,
                            )
                        continue
                    self._deliver(peer, payload)
        except FrameError:
            self.counters["decode_errors"] += 1
        except (ConnectionError, OSError):
            pass
        finally:
            self._serve_tasks.discard(task)
            self._serve_writers.discard(writer)
            writer.close()

    def _deliver(self, source: str, payload: Any) -> None:
        node = self._node
        if node is not None:
            node.deliver(source, payload)

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Stop the listener and tear down every peer channel.

        Every wait is bounded: a peer that holds its end of a
        connection open (alive, blackholed, or wedged) must not be able
        to hang our shutdown — ``Server.wait_closed`` otherwise waits
        for *remote* ends to detach."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), 2.0)
            except asyncio.TimeoutError:
                pass
        for channel in self._channels.values():
            await channel.close()
        self._channels.clear()
        await drain_tasks(self._serve_tasks, self._serve_writers)


class _PeerChannel:
    """One outbound connection to a peer daemon, with reconnect.

    Hardened against WAN failure modes the netem crucible manufactures:
    reconnect delays use decorrelated jitter (no thundering herd after a
    daemon restart), writes must make progress within the transport's
    ``send_deadline`` (a stalled/zero-window peer gets aborted and
    rebuilt instead of wedging the channel), and a read-side watchdog
    notices remote EOF/reset even while the write loop is parked with
    nothing to send — the half-open case a pure writer can never see.
    """

    def __init__(self, transport: TcpTransport, peer: str) -> None:
        self.transport = transport
        self.peer = peer
        self._queue: Deque[bytes] = deque()
        self._queue_bytes = 0
        self._wake = asyncio.Event()
        self._closed = False
        self._conn_broken = False
        self._rng = transport.clock.rng.child(f"backoff/{peer}")
        self._task = transport.clock.loop.create_task(
            self._run(), name=f"peer:{transport.name}->{peer}"
        )

    def send(self, data: bytes) -> None:
        if self._closed:
            return
        counters = self.transport.counters
        if len(self._queue) >= SEND_BUFFER_FRAMES:
            dropped = self._queue.popleft()
            self._queue_bytes -= len(dropped)
            counters["send_drops"] += 1
        self._queue.append(data)
        self._queue_bytes += len(data)
        if len(self._queue) > counters["send_buffer_peak_frames"]:
            counters["send_buffer_peak_frames"] = len(self._queue)
        if self._queue_bytes > counters["send_buffer_peak_bytes"]:
            counters["send_buffer_peak_bytes"] = self._queue_bytes
        self._wake.set()

    async def _watch_eof(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Detect remote close while the write loop is parked: peers
        never send us bytes on an outbound channel, so any read result
        — EOF, reset, or unexpected data — means the connection is
        done.  Abort it and wake the writer so reconnect starts now,
        not at the next send attempt."""
        try:
            await reader.read(READ_CHUNK)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass
        if self._closed:
            return
        self._conn_broken = True
        self.transport.counters["peer_eof_closes"] += 1
        try:
            writer.transport.abort()
        except Exception:
            pass
        self._wake.set()

    async def _run(self) -> None:
        transport = self.transport
        counters = transport.counters
        backoff = BACKOFF_BASE
        connected_before = False
        while not self._closed:
            address = transport.addresses.peer(self.peer)
            if address is None:
                # Peer not registered (yet): wait and re-resolve.
                await asyncio.sleep(backoff)
                backoff = decorrelated_jitter(self._rng, backoff)
                continue
            try:
                reader, writer = await asyncio.open_connection(*address)
            except OSError:
                counters["connect_failures"] += 1
                await asyncio.sleep(backoff)
                backoff = decorrelated_jitter(self._rng, backoff)
                continue
            if connected_before:
                counters["reconnects"] += 1
            connected_before = True
            counters["connects"] += 1
            backoff = BACKOFF_BASE
            self._conn_broken = False
            tracer = transport.clock.tracer
            if tracer.enabled:
                tracer.record(
                    "transport.peer_connect",
                    me=transport.name,
                    peer=self.peer,
                )
            watchdog = transport.clock.loop.create_task(
                self._watch_eof(reader, writer),
                name=f"peer-eof:{transport.name}->{self.peer}",
            )
            try:
                writer.write(
                    encode_frame(
                        PeerHello(transport.name),
                        transport.max_frame,
                        transport.auth,
                    )
                )
                while not self._closed:
                    queue = self._queue
                    while queue:
                        data = queue.popleft()
                        self._queue_bytes -= len(data)
                        writer.write(data)
                    try:
                        await asyncio.wait_for(
                            writer.drain(), transport.send_deadline
                        )
                    except asyncio.TimeoutError:
                        counters["send_deadline_aborts"] += 1
                        if tracer.enabled:
                            tracer.record(
                                "transport.send_stall",
                                me=transport.name,
                                peer=self.peer,
                                buffered=self._queue_bytes,
                            )
                        try:
                            writer.transport.abort()
                        except Exception:
                            pass
                        raise ConnectionResetError("send deadline expired")
                    if self._closed:
                        # wait_for on 3.11 swallows our cancellation
                        # when the drain future finishes in the same
                        # loop iteration (returns the result instead of
                        # re-raising).  close() sets _closed before it
                        # cancels, so re-check here — otherwise we would
                        # clear close()'s wake below and park on
                        # _wake.wait() forever, past its bounded wait.
                        break
                    if self._conn_broken:
                        raise ConnectionResetError("peer closed connection")
                    if not queue:
                        self._wake.clear()
                        await self._wake.wait()
                        if self._conn_broken:
                            raise ConnectionResetError(
                                "peer closed connection"
                            )
            except (ConnectionError, OSError):
                if tracer.enabled:
                    tracer.record(
                        "transport.peer_drop",
                        me=transport.name,
                        peer=self.peer,
                    )
                continue
            finally:
                watchdog.cancel()
                try:
                    writer.close()
                except Exception:
                    pass
                # Reap the watchdog without shielding ourselves from our
                # own cancellation: wait() never re-raises the watchdog's
                # error, while a pending cancel of *this* task is
                # delivered at the await and propagates — a cancelled
                # channel must die here, not survive into the reconnect
                # backoff sleep past close()'s bounded wait.
                await asyncio.wait({watchdog})
                if watchdog.done() and not watchdog.cancelled():
                    watchdog.exception()

    async def close(self) -> None:
        self._closed = True
        self._wake.set()
        self._task.cancel()
        # Bounded wait (asyncio.wait never re-raises and never blocks
        # past its timeout): cancellation can race connection teardown
        # in ways that leave the task parked; a wedged channel must not
        # wedge transport shutdown with it.
        await asyncio.wait({self._task}, timeout=2.0)
        if self._task.done() and not self._task.cancelled():
            self._task.exception()  # retrieved: no "never retrieved" noise
