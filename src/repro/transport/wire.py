"""Length-prefixed wire framing for the TCP backend.

Every payload that crosses a socket — daemon-to-daemon envelopes from
:mod:`repro.spread.messages`, client IPC verbs from
:mod:`repro.transport.protocol`, fragments, sealed blobs — travels as
one *frame*:

=======  ====  =========================================================
offset   size  field
=======  ====  =========================================================
0        1     magic, ``0xC5``
1        1     wire version, currently ``2``
2        1     flags — bit 0 (:data:`FLAG_AUTH`): frame carries a tag
3        2     kind code (big-endian) — see :data:`WIRE_KINDS`
5        4     body length in bytes (big-endian; excludes the tag)
9        4     CRC-32 of the body (big-endian)
13       32    HMAC-SHA256 tag over ``header || body`` — only when
               :data:`FLAG_AUTH` is set
13|45    n     body: the pickled payload object
=======  ====  =========================================================

The kind code lets a receiver classify a frame without unpickling it
(frame-size histograms, dispatch counters) and cross-checks the decoded
type; unknown payload types fall back to :data:`KIND_PYOBJ`.

Version 2 closes the unauthenticated-pickle hole of version 1: when a
deployment key is configured (see :mod:`repro.transport.auth`), every
frame carries an HMAC-SHA256 tag verified — in constant time — *before*
the body is deserialized, and bodies always go through
:func:`~repro.transport.auth.restricted_loads`, which resolves only the
registered wire-kind classes, never bare ``pickle.loads``.  Version-1
frames (and any other version mismatch) are rejected before any other
header field is interpreted, so the 12-byte v1 layout can never be
misparsed as v2.  Auth-config mismatches fail loudly in both
directions: an untagged frame at an authenticating endpoint and a
tagged frame at a non-authenticating endpoint are both connection-fatal
:class:`~repro.errors.FrameAuthError`\\ s, counted separately.

A frame longer than :func:`max_frame_limit` (default 16 MiB, env
``REPRO_TRANSPORT_MAX_FRAME``) is refused on both ends — a stream
desync otherwise turns into a multi-gigabyte allocation from attacker-
or corruption-controlled length bytes.

:class:`FrameDecoder` is incremental: feed it whatever ``read()``
returned — any chunking, including mid-header splits — and it yields
each payload exactly once, raising :class:`~repro.errors.FrameError`
(connection-fatal) on malformed input.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import (
    FrameAuthError,
    FrameError,
    RestrictedUnpickleError,
    WireVersionError,
)
from repro.transport.auth import TAG_SIZE, FrameAuth, restricted_loads

MAGIC = 0xC5
VERSION = 2

#: Flags bit 0: the frame carries an HMAC-SHA256 tag after the header.
FLAG_AUTH = 0x01

_KNOWN_FLAGS = FLAG_AUTH

#: Environment knob: maximum frame size (header + tag + body) in bytes.
MAX_FRAME_ENV = "REPRO_TRANSPORT_MAX_FRAME"
DEFAULT_MAX_FRAME = 16 * 1024 * 1024

HEADER = struct.Struct(">BBBHII")
HEADER_SIZE = HEADER.size  # 13

#: Fallback kind: any picklable object without a registered code.
KIND_PYOBJ = 0

#: Counter keys a :class:`FrameDecoder` bumps on rejected frames.  The
#: transports pre-initialize these in their ``counters`` dicts so the
#: obs layer exports them (as ``transport.<key>``) even when zero.
REJECT_COUNTERS = (
    "stale_version_rejects",
    "auth_bad_mac",
    "auth_missing_tag",
    "auth_unexpected_tag",
    "restricted_unpickle_rejects",
)


def max_frame_limit() -> int:
    """The configured frame-size ceiling (``REPRO_TRANSPORT_MAX_FRAME``)."""
    raw = os.environ.get(MAX_FRAME_ENV, "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise FrameError(f"{MAX_FRAME_ENV} is not an integer: {raw!r}")
        if value <= HEADER_SIZE:
            raise FrameError(f"{MAX_FRAME_ENV} too small: {value}")
        return value
    return DEFAULT_MAX_FRAME


def _registry() -> Tuple[Dict[Type, int], Dict[int, Type]]:
    # Imported lazily so ``repro.spread`` never has to exist at
    # transport-module import time in stripped-down environments.
    from repro.spread.fragments import MessageFragment
    from repro.spread.messages import (
        DataMessage,
        GatherAnnounce,
        Hello,
        Install,
        Nack,
        Packed,
        Propose,
        SyncInfo,
    )
    from repro.spread.ring import RingToken
    from repro.transport.protocol import (
        ClientBye,
        ClientConnect,
        ClientDeliver,
        ClientDisconnect,
        ClientJoin,
        ClientLeave,
        ClientMulticast,
        ClientRefused,
        ClientWelcome,
        PeerHello,
    )

    codes: Dict[Type, int] = {
        DataMessage: 1,
        Packed: 2,
        Hello: 3,
        Nack: 4,
        GatherAnnounce: 5,
        Propose: 6,
        SyncInfo: 7,
        Install: 8,
        RingToken: 9,
        MessageFragment: 10,
        PeerHello: 16,
        ClientConnect: 32,
        ClientWelcome: 33,
        ClientRefused: 34,
        ClientJoin: 35,
        ClientLeave: 36,
        ClientMulticast: 37,
        ClientDisconnect: 38,
        ClientDeliver: 39,
        ClientBye: 40,
    }
    return codes, {code: cls for cls, code in codes.items()}


_CODES: Optional[Dict[Type, int]] = None
_TYPES: Optional[Dict[int, Type]] = None


def _tables() -> Tuple[Dict[Type, int], Dict[int, Type]]:
    global _CODES, _TYPES
    if _CODES is None:
        _CODES, _TYPES = _registry()
    return _CODES, _TYPES


def kind_code(payload: Any) -> int:
    """The wire kind code for a payload (``KIND_PYOBJ`` if unregistered)."""
    codes, __ = _tables()
    return codes.get(type(payload), KIND_PYOBJ)


def kind_name(code: int) -> str:
    """Human-readable name of a kind code (for histogram labels)."""
    __, types = _tables()
    cls = types.get(code)
    return cls.__name__ if cls is not None else "pyobj"


def encode_frame(
    payload: Any,
    max_frame: Optional[int] = None,
    auth: Optional[FrameAuth] = None,
) -> bytes:
    """Serialize one payload into a complete wire frame.

    With ``auth`` the frame carries :data:`FLAG_AUTH` and an
    HMAC-SHA256 tag over ``header || body`` between header and body.
    """
    limit = max_frame if max_frame is not None else max_frame_limit()
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    flags = FLAG_AUTH if auth is not None else 0
    tag_size = TAG_SIZE if auth is not None else 0
    total = HEADER_SIZE + tag_size + len(body)
    if total > limit:
        raise FrameError(
            f"frame of {total} bytes exceeds the {limit}-byte limit "
            f"({type(payload).__name__})"
        )
    header = HEADER.pack(
        MAGIC, VERSION, flags, kind_code(payload), len(body), zlib.crc32(body)
    )
    if auth is None:
        return header + body
    return header + auth.tag(header, body) + body


def decode_frame(data: bytes, auth: Optional[FrameAuth] = None) -> Any:
    """Decode exactly one complete frame (helper for tests and probes)."""
    decoder = FrameDecoder(auth=auth)
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.pending:
        raise FrameError(
            f"expected exactly one complete frame, got {len(frames)} "
            f"with {decoder.pending} bytes left over"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    ``observe`` (optional) is called once per decoded frame with
    ``(kind_code, total_frame_bytes)`` — the hook the transport uses for
    its frame-size histograms.  ``auth`` (optional) requires and
    verifies a frame tag under the deployment key; without it, tagged
    frames are rejected.  ``counters`` (optional) is a dict the decoder
    bumps by :data:`REJECT_COUNTERS` key when it refuses a frame, so
    rejects surface in the obs ``transport.*`` metrics.  All
    :class:`~repro.errors.FrameError`\\ s are connection-fatal: after
    one, the stream offset can no longer be trusted and the caller must
    drop the connection.
    """

    def __init__(
        self,
        max_frame: Optional[int] = None,
        observe: Optional[Callable[[int, int], None]] = None,
        auth: Optional[FrameAuth] = None,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.max_frame = max_frame if max_frame is not None else max_frame_limit()
        self._observe = observe
        self._auth = auth
        self._counters = counters
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet part of a complete frame."""
        return len(self._buffer)

    def _count(self, key: str) -> None:
        if self._counters is not None:
            self._counters[key] = self._counters.get(key, 0) + 1

    def feed(self, data: bytes) -> List[Any]:
        """Absorb ``data`` and return every payload it completed."""
        self._buffer += data
        self.bytes_fed += len(data)
        out: List[Any] = []
        buffer = self._buffer
        while True:
            if len(buffer) < HEADER_SIZE:
                return out
            magic, version, flags, kind, length, crc = HEADER.unpack_from(buffer)
            if magic != MAGIC:
                raise FrameError(f"bad magic byte 0x{magic:02X}")
            # Version gates every other field: layouts differ across
            # versions, so nothing past byte 1 is interpreted until the
            # version matches.
            if version != VERSION:
                self._count("stale_version_rejects")
                raise WireVersionError(
                    f"unsupported wire version {version} (this build "
                    f"speaks {VERSION})"
                )
            if flags & ~_KNOWN_FLAGS:
                raise FrameError(f"unknown flag bits 0x{flags:02X}")
            tagged = bool(flags & FLAG_AUTH)
            if self._auth is not None and not tagged:
                self._count("auth_missing_tag")
                raise FrameAuthError(
                    "unauthenticated frame on an authenticating endpoint"
                )
            if self._auth is None and tagged:
                self._count("auth_unexpected_tag")
                raise FrameAuthError(
                    "authenticated frame on an endpoint with no deployment key"
                )
            tag_size = TAG_SIZE if tagged else 0
            total = HEADER_SIZE + tag_size + length
            if total > self.max_frame:
                raise FrameError(
                    f"declared frame of {total} bytes exceeds the "
                    f"{self.max_frame}-byte limit"
                )
            if len(buffer) < total:
                return out
            header = bytes(buffer[:HEADER_SIZE])
            tag = bytes(buffer[HEADER_SIZE : HEADER_SIZE + tag_size])
            body = bytes(buffer[HEADER_SIZE + tag_size : total])
            del buffer[:total]
            # Authenticate before the CRC and long before unpickling:
            # nothing downstream may touch unverified bytes.
            if self._auth is not None and not self._auth.verify(
                header, body, tag
            ):
                self._count("auth_bad_mac")
                raise FrameAuthError(
                    f"frame tag verification failed "
                    f"(key_id={self._auth.key_id})"
                )
            if zlib.crc32(body) != crc:
                raise FrameError("body CRC mismatch")
            try:
                payload = restricted_loads(body)
            except RestrictedUnpickleError:
                self._count("restricted_unpickle_rejects")
                raise
            except Exception as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
            if kind != KIND_PYOBJ:
                __, types = _tables()
                expected = types.get(kind)
                if expected is None:
                    raise FrameError(f"unknown kind code {kind}")
                if type(payload) is not expected:
                    raise FrameError(
                        f"kind code {kind} ({expected.__name__}) does not "
                        f"match decoded {type(payload).__name__}"
                    )
            self.frames_decoded += 1
            if self._observe is not None:
                self._observe(kind, total)
            out.append(payload)
