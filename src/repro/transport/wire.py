"""Length-prefixed wire framing for the TCP backend.

Every payload that crosses a socket — daemon-to-daemon envelopes from
:mod:`repro.spread.messages`, client IPC verbs from
:mod:`repro.transport.protocol`, fragments, sealed blobs — travels as
one *frame*:

=======  ====  =========================================================
offset   size  field
=======  ====  =========================================================
0        1     magic, ``0xC5``
1        1     wire version, currently ``1``
2        2     kind code (big-endian) — see :data:`WIRE_KINDS`
4        4     body length in bytes (big-endian)
8        4     CRC-32 of the body (big-endian)
12       n     body: the pickled payload object
=======  ====  =========================================================

The kind code lets a receiver classify a frame without unpickling it
(frame-size histograms, dispatch counters) and cross-checks the decoded
type; unknown payload types fall back to :data:`KIND_PYOBJ`.  Bodies
are pickled because Spread payloads are arbitrary application objects
(sealed envelopes, flush wrappers, key-agreement tokens) — the framing
is therefore only safe between mutually-trusting endpoints, which
matches the paper's deployment model (daemons are the trusted
infrastructure; *clients* are protected by the secure-session layer,
whose sealed payloads survive pickling unchanged).

A frame longer than :func:`max_frame_limit` (default 16 MiB, env
``REPRO_TRANSPORT_MAX_FRAME``) is refused on both ends — a stream
desync otherwise turns into a multi-gigabyte allocation from attacker-
or corruption-controlled length bytes.

:class:`FrameDecoder` is incremental: feed it whatever ``read()``
returned — any chunking, including mid-header splits — and it yields
each payload exactly once, raising :class:`~repro.errors.FrameError`
(connection-fatal) on malformed input.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import FrameError

MAGIC = 0xC5
VERSION = 1

#: Environment knob: maximum frame size (header + body) in bytes.
MAX_FRAME_ENV = "REPRO_TRANSPORT_MAX_FRAME"
DEFAULT_MAX_FRAME = 16 * 1024 * 1024

HEADER = struct.Struct(">BBHII")
HEADER_SIZE = HEADER.size  # 12

#: Fallback kind: any picklable object without a registered code.
KIND_PYOBJ = 0


def max_frame_limit() -> int:
    """The configured frame-size ceiling (``REPRO_TRANSPORT_MAX_FRAME``)."""
    raw = os.environ.get(MAX_FRAME_ENV, "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise FrameError(f"{MAX_FRAME_ENV} is not an integer: {raw!r}")
        if value <= HEADER_SIZE:
            raise FrameError(f"{MAX_FRAME_ENV} too small: {value}")
        return value
    return DEFAULT_MAX_FRAME


def _registry() -> Tuple[Dict[Type, int], Dict[int, Type]]:
    # Imported lazily so ``repro.spread`` never has to exist at
    # transport-module import time in stripped-down environments.
    from repro.spread.fragments import MessageFragment
    from repro.spread.messages import (
        DataMessage,
        GatherAnnounce,
        Hello,
        Install,
        Nack,
        Packed,
        Propose,
        SyncInfo,
    )
    from repro.spread.ring import RingToken
    from repro.transport.protocol import (
        ClientBye,
        ClientConnect,
        ClientDeliver,
        ClientDisconnect,
        ClientJoin,
        ClientLeave,
        ClientMulticast,
        ClientRefused,
        ClientWelcome,
        PeerHello,
    )

    codes: Dict[Type, int] = {
        DataMessage: 1,
        Packed: 2,
        Hello: 3,
        Nack: 4,
        GatherAnnounce: 5,
        Propose: 6,
        SyncInfo: 7,
        Install: 8,
        RingToken: 9,
        MessageFragment: 10,
        PeerHello: 16,
        ClientConnect: 32,
        ClientWelcome: 33,
        ClientRefused: 34,
        ClientJoin: 35,
        ClientLeave: 36,
        ClientMulticast: 37,
        ClientDisconnect: 38,
        ClientDeliver: 39,
        ClientBye: 40,
    }
    return codes, {code: cls for cls, code in codes.items()}


_CODES: Optional[Dict[Type, int]] = None
_TYPES: Optional[Dict[int, Type]] = None


def _tables() -> Tuple[Dict[Type, int], Dict[int, Type]]:
    global _CODES, _TYPES
    if _CODES is None:
        _CODES, _TYPES = _registry()
    return _CODES, _TYPES


def kind_code(payload: Any) -> int:
    """The wire kind code for a payload (``KIND_PYOBJ`` if unregistered)."""
    codes, __ = _tables()
    return codes.get(type(payload), KIND_PYOBJ)


def kind_name(code: int) -> str:
    """Human-readable name of a kind code (for histogram labels)."""
    __, types = _tables()
    cls = types.get(code)
    return cls.__name__ if cls is not None else "pyobj"


def encode_frame(payload: Any, max_frame: Optional[int] = None) -> bytes:
    """Serialize one payload into a complete wire frame."""
    limit = max_frame if max_frame is not None else max_frame_limit()
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    total = HEADER_SIZE + len(body)
    if total > limit:
        raise FrameError(
            f"frame of {total} bytes exceeds the {limit}-byte limit "
            f"({type(payload).__name__})"
        )
    header = HEADER.pack(
        MAGIC, VERSION, kind_code(payload), len(body), zlib.crc32(body)
    )
    return header + body


def decode_frame(data: bytes) -> Any:
    """Decode exactly one complete frame (helper for tests and probes)."""
    decoder = FrameDecoder()
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.pending:
        raise FrameError(
            f"expected exactly one complete frame, got {len(frames)} "
            f"with {decoder.pending} bytes left over"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    ``observe`` (optional) is called once per decoded frame with
    ``(kind_code, total_frame_bytes)`` — the hook the transport uses for
    its frame-size histograms.  All :class:`~repro.errors.FrameError`\\ s
    are connection-fatal: after one, the stream offset can no longer be
    trusted and the caller must drop the connection.
    """

    def __init__(
        self,
        max_frame: Optional[int] = None,
        observe: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.max_frame = max_frame if max_frame is not None else max_frame_limit()
        self._observe = observe
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet part of a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Any]:
        """Absorb ``data`` and return every payload it completed."""
        self._buffer += data
        self.bytes_fed += len(data)
        out: List[Any] = []
        buffer = self._buffer
        while True:
            if len(buffer) < HEADER_SIZE:
                return out
            magic, version, kind, length, crc = HEADER.unpack_from(buffer)
            if magic != MAGIC:
                raise FrameError(f"bad magic byte 0x{magic:02X}")
            if version != VERSION:
                raise FrameError(f"unsupported wire version {version}")
            total = HEADER_SIZE + length
            if total > self.max_frame:
                raise FrameError(
                    f"declared frame of {total} bytes exceeds the "
                    f"{self.max_frame}-byte limit"
                )
            if len(buffer) < total:
                return out
            body = bytes(buffer[HEADER_SIZE:total])
            del buffer[:total]
            if zlib.crc32(body) != crc:
                raise FrameError("body CRC mismatch")
            try:
                payload = pickle.loads(body)
            except Exception as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
            if kind != KIND_PYOBJ:
                __, types = _tables()
                expected = types.get(kind)
                if expected is None:
                    raise FrameError(f"unknown kind code {kind}")
                if type(payload) is not expected:
                    raise FrameError(
                        f"kind code {kind} ({expected.__name__}) does not "
                        f"match decoded {type(payload).__name__}"
                    )
            self.frames_decoded += 1
            if self._observe is not None:
                self._observe(kind, total)
            out.append(payload)
