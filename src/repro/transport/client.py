"""The TCP Spread client: ``SP_*`` over a socket, with reconnect.

:class:`TcpSpreadClient` exposes the same surface as the sim
:class:`~repro.spread.client.SpreadClient` — ``join`` / ``leave`` /
``multicast`` / ``unicast`` / ``receive`` / ``drain`` / ``on_event``,
``pid``, ``name``, ``kernel`` — so :class:`~repro.spread.flush
.FlushClient` and the whole secure-session stack run over it without a
line changed.  Three things are new because the network is real:

* **Listener callbacks** (asyncspread's ``SpreadListener`` style):
  beyond the polling queue, a listener object gets
  ``handle_connected`` / ``handle_dropped`` / ``handle_reconnected``
  plus per-event ``handle_data`` / ``handle_membership``.

* **Auto-reconnect**: when the connection drops, the client backs off
  with decorrelated jitter (uniform in ``[base, 3 × previous]``, capped
  — so a crowd of clients dropped by one daemon restart does not storm
  back in lockstep), re-connects under the same private name with a
  per-attempt connect timeout (a blackholed or half-open listener
  cannot wedge the retry loop), and re-joins every group it was in.  The application
  sees exactly one :class:`ConnectionLostEvent` per outage, then the
  normal membership events as its re-joins install — a membership
  resync, not an event replay.  (A daemon that still holds the old
  connection refuses the duplicate name; that refusal is retried like
  any other failure until the daemon notices the broken old socket.)

* **Heartbeat liveness**: optionally the client joins a heartbeat group
  and multicasts UNRELIABLE beacons to itself on a timer.  The beacons
  are consumed internally (never queued to the application); if echoes
  stop for ``liveness_timeout`` seconds, the connection is declared
  dead and aborted, which funnels into the same reconnect path.  This
  catches the half-open TCP case where the socket looks writable but
  the daemon is gone.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Deque, List, Optional, Set, Tuple

from collections import deque

from repro.errors import (
    ConnectionClosedError,
    DaemonDownError,
    FrameError,
    IllegalServiceError,
    NotMemberError,
    TransportError,
)
from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.fragments import MessageFragment, Reassembler, split_payload
from repro.transport.protocol import (
    ClientBye,
    ClientConnect,
    ClientDeliver,
    ClientDisconnect,
    ClientJoin,
    ClientLeave,
    ClientMulticast,
    ClientRefused,
    ClientWelcome,
)
from repro.transport.auth import AuthSpec, resolve_auth
from repro.transport.rtclock import RealtimeClock
from repro.transport.tcp import READ_CHUNK, decorrelated_jitter
from repro.transport.wire import (
    REJECT_COUNTERS,
    FrameDecoder,
    encode_frame,
    max_frame_limit,
)
from repro.types import ProcessId, ServiceType

EventCallback = Callable[[Any], None]


class ConnectionLostEvent:
    """Queued once per outage: the daemon connection dropped."""

    is_membership = False

    def __init__(self, reason: str = "") -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConnectionLostEvent {self.reason!r}>"


class ConnectionRestoredEvent:
    """Queued after a successful reconnect, before the re-join
    membership events arrive."""

    is_membership = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ConnectionRestoredEvent>"


class SpreadListener:
    """Callback interface for connection and delivery events.

    Subclass and override what you need; every hook defaults to a
    no-op.  ``handle_event`` fires for *every* queued event after any
    specific hook.
    """

    def handle_connected(self, client: "TcpSpreadClient") -> None: ...

    def handle_dropped(
        self, client: "TcpSpreadClient", reason: str = ""
    ) -> None: ...

    def handle_reconnected(self, client: "TcpSpreadClient") -> None: ...

    def handle_data(
        self, client: "TcpSpreadClient", event: DataEvent
    ) -> None: ...

    def handle_membership(
        self, client: "TcpSpreadClient", event: MembershipEvent
    ) -> None: ...

    def handle_event(self, client: "TcpSpreadClient", event: Any) -> None: ...


class TcpSpreadClient:
    """One application connection to a daemon over TCP."""

    def __init__(
        self,
        address: Tuple[str, int],
        private_name: str,
        clock: Optional[RealtimeClock] = None,
        reconnect: bool = True,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        heartbeat_group: Optional[str] = None,
        heartbeat_interval: float = 0.25,
        liveness_timeout: float = 2.0,
        max_frame: Optional[int] = None,
        connect_timeout: float = 5.0,
        auth: AuthSpec = None,
    ) -> None:
        self.address = address
        self.private_name = private_name
        self.kernel = clock  # created at connect() when not supplied
        self.auto_reconnect = reconnect
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.connect_timeout = connect_timeout
        self.heartbeat_group = heartbeat_group
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.max_frame = max_frame if max_frame is not None else max_frame_limit()
        self.auth = resolve_auth(auth)

        self.pid: Optional[ProcessId] = None
        self.name = f"#{private_name}#?"
        self.daemon_name: Optional[str] = None
        self.max_message_size = 65536
        self.connected = False
        self.queue: Deque[Any] = deque()
        self.counters = {
            "bytes_sent": 0,
            "bytes_recv": 0,
            "frames_sent": 0,
            "frames_recv": 0,
            "drops": 0,
            "reconnects": 0,
            "reconnect_attempts": 0,
            "heartbeats_sent": 0,
            "heartbeats_echoed": 0,
            "liveness_aborts": 0,
        }
        for key in REJECT_COUNTERS:
            self.counters[key] = 0
        self._callbacks: List[EventCallback] = []
        self._listeners: List[SpreadListener] = []
        self._send_seq = 0
        self._my_groups: Set[str] = set()
        self._fragment_counter = 0
        self._reassembler: Optional[Reassembler] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder: Optional[FrameDecoder] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closing = False
        self._hb_timer = None
        self._hb_seq = 0
        self._hb_last_echo: Optional[float] = None

    # -- connection lifecycle ----------------------------------------------

    async def connect(self, timeout: float = 10.0) -> ProcessId:
        """Dial the daemon, register ``private_name``, start receiving."""
        if self.connected:
            return self.pid
        if self.kernel is None:
            self.kernel = RealtimeClock(asyncio.get_running_loop())
        self._reassembler = Reassembler(tracer=self.kernel.tracer)
        await asyncio.wait_for(self._connect_once(), timeout)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"spread-client:{self.private_name}"
        )
        for listener in list(self._listeners):
            listener.handle_connected(self)
        if self.heartbeat_group is not None:
            self.join(self.heartbeat_group)
            self._arm_heartbeat()
        return self.pid

    async def _connect_once(self) -> None:
        reader, writer = await asyncio.open_connection(*self.address)
        decoder = FrameDecoder(
            self.max_frame,
            observe=self._observe_rx,
            auth=self.auth,
            counters=self.counters,
        )
        try:
            writer.write(
                encode_frame(
                    ClientConnect(self.private_name), self.max_frame, self.auth
                )
            )
            await writer.drain()
            welcome: Optional[ClientWelcome] = None
            while welcome is None:
                data = await reader.read(READ_CHUNK)
                if not data:
                    raise ConnectionClosedError(
                        f"daemon at {self.address} closed during handshake"
                    )
                for op in decoder.feed(data):
                    if isinstance(op, ClientRefused):
                        raise ConnectionClosedError(
                            f"daemon refused {self.private_name!r}: {op.reason}"
                        )
                    if isinstance(op, ClientWelcome):
                        welcome = op
                        break
                    raise FrameError(
                        f"unexpected handshake frame {type(op).__name__}"
                    )
        except BaseException:
            writer.close()
            raise
        self._reader, self._writer, self._decoder = reader, writer, decoder
        self.pid = welcome.pid
        self.daemon_name = str(welcome.pid.daemon)
        self.name = str(welcome.pid)
        self.max_message_size = welcome.max_message_size
        self.connected = True
        self._hb_last_echo = None

    def disconnect(self) -> None:
        """Voluntarily close: announce, stop reconnecting, drop."""
        if self._closing:
            return
        self._closing = True
        self._my_groups.clear()
        if self._hb_timer is not None:
            self._hb_timer.cancel()
            self._hb_timer = None
        if self.connected:
            self.connected = False
            try:
                self._raw_send(ClientDisconnect(self.private_name))
            except Exception:
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass

    async def close(self) -> None:
        """``disconnect`` plus letting the writer flush its goodbyes
        (bounded: a dead daemon must not hang our shutdown)."""
        self.disconnect()
        writer = self._writer
        if writer is not None:
            try:
                await asyncio.wait_for(writer.wait_closed(), 2.0)
            except (asyncio.TimeoutError, Exception):
                pass

    # -- the SpreadClient sending surface ----------------------------------

    def _require_connected(self) -> None:
        if not self.connected:
            raise ConnectionClosedError(f"{self.name} is not connected")

    def _observe_rx(self, kind: int, total: int) -> None:
        self.counters["frames_recv"] += 1
        self.counters["bytes_recv"] += total

    def _raw_send(self, op: Any) -> None:
        data = encode_frame(op, self.max_frame, self.auth)
        self.counters["frames_sent"] += 1
        self.counters["bytes_sent"] += len(data)
        self._writer.write(data)

    def join(self, group: str) -> None:
        """Join a group (idempotent at the daemon)."""
        self._require_connected()
        self._my_groups.add(group)
        self._raw_send(ClientJoin(self.pid, group))

    def leave(self, group: str) -> None:
        """Leave a group."""
        self._require_connected()
        if group not in self._my_groups:
            raise NotMemberError(f"{self.name} never joined {group!r}")
        self._my_groups.discard(group)
        self._raw_send(ClientLeave(self.pid, group))

    def multicast(self, service: ServiceType, group: str, payload: Any) -> int:
        """Send to a group or private ``#name#daemon`` destination.

        Same fragmentation contract as the sim client: byte payloads
        over the daemon's ``max_message_size`` split into FIFO-or-
        stronger fragment trains.
        """
        self._require_connected()
        limit = self.max_message_size
        if isinstance(payload, (bytes, bytearray)) and len(payload) > limit:
            if service.ordering_rank < ServiceType.FIFO.ordering_rank:
                raise IllegalServiceError(
                    "fragmented payloads need FIFO or stronger ordering"
                )
            self._fragment_counter += 1
            fragments = split_payload(payload, limit, self._fragment_counter)
            seq = 0
            for fragment in fragments:
                self._send_seq += 1
                seq = self._send_seq
                self._raw_send(
                    ClientMulticast(self.pid, service, group, fragment, seq)
                )
            return seq
        self._send_seq += 1
        seq = self._send_seq
        self._raw_send(ClientMulticast(self.pid, service, group, payload, seq))
        return seq

    def unicast(self, service: ServiceType, target: ProcessId, payload: Any) -> int:
        """Send to a single process via its private group."""
        return self.multicast(service, str(target), payload)

    async def flush_writes(self) -> None:
        """Await the socket's write buffer draining (senders in tight
        loops call this for backpressure; sync sends never block)."""
        writer = self._writer
        if writer is not None:
            await writer.drain()

    # -- the receive side --------------------------------------------------

    async def _read_loop(self) -> None:
        while True:
            try:
                while True:
                    data = await self._reader.read(READ_CHUNK)
                    if not data:
                        raise ConnectionClosedError("daemon closed connection")
                    for op in self._decoder.feed(data):
                        self._handle(op)
            except asyncio.CancelledError:
                return
            except Exception as exc:
                if self._closing:
                    return
                if not await self._reconnect(exc):
                    return

    def _handle(self, op: Any) -> None:
        if isinstance(op, ClientDeliver):
            self._deliver_event(op.event)
        elif isinstance(op, ClientBye):
            raise ConnectionClosedError(f"daemon said bye: {op.reason}")
        else:
            raise FrameError(f"unexpected frame {type(op).__name__}")

    def _deliver_event(self, event: Any) -> None:
        if isinstance(event, DataEvent):
            if self._is_heartbeat(event):
                self.counters["heartbeats_echoed"] += 1
                self._hb_last_echo = self.kernel.now
                return
            if isinstance(event.payload, MessageFragment):
                whole = self._reassembler.accept(
                    str(event.sender), event.payload
                )
                if whole is None:
                    return  # more fragments coming
                event = DataEvent(
                    group=event.group,
                    sender=event.sender,
                    service=event.service,
                    payload=whole,
                    seq=event.seq,
                )
        self._emit(event)

    def _emit(self, event: Any) -> None:
        self.queue.append(event)
        for callback in list(self._callbacks):
            callback(event)
        for listener in list(self._listeners):
            if isinstance(event, DataEvent):
                listener.handle_data(self, event)
            elif isinstance(event, MembershipEvent):
                listener.handle_membership(self, event)
            listener.handle_event(self, event)

    def on_event(self, callback: EventCallback) -> None:
        """Register a delivery callback (fires for every queued event)."""
        self._callbacks.append(callback)

    def add_listener(self, listener: SpreadListener) -> None:
        """Attach an asyncspread-style listener object."""
        self._listeners.append(listener)

    def receive(self) -> Optional[Any]:
        """Pop the next delivered event, or None when the queue is empty."""
        if self.queue:
            return self.queue.popleft()
        return None

    def drain(self) -> List[Any]:
        """Pop everything currently queued."""
        events = list(self.queue)
        self.queue.clear()
        return events

    def data_events(self) -> List[DataEvent]:
        return [e for e in self.queue if isinstance(e, DataEvent)]

    def membership_events(self) -> List[MembershipEvent]:
        return [e for e in self.queue if isinstance(e, MembershipEvent)]

    # -- reconnect ---------------------------------------------------------

    async def _reconnect(self, cause: BaseException) -> bool:
        """Drop bookkeeping + backoff-retry loop.  True when the session
        is re-established (groups re-joined), False when giving up."""
        self.connected = False
        self.counters["drops"] += 1
        reason = f"{type(cause).__name__}: {cause}"
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._emit(ConnectionLostEvent(reason))
        for listener in list(self._listeners):
            listener.handle_dropped(self, reason)
        if not self.auto_reconnect or self._closing:
            return False
        groups = sorted(self._my_groups)
        rng = self.kernel.rng.child(f"client-backoff/{self.private_name}")
        delay = self.backoff_base
        while not self._closing:
            await asyncio.sleep(delay)
            delay = decorrelated_jitter(
                rng, delay, self.backoff_base, self.backoff_cap
            )
            self.counters["reconnect_attempts"] += 1
            try:
                # The per-attempt timeout matters against a blackholed
                # or half-open listener: the TCP connect (or handshake)
                # would otherwise hang forever and the loop would never
                # retry once the partition heals.
                await asyncio.wait_for(
                    self._connect_once(), self.connect_timeout
                )
            except (
                OSError,
                TransportError,
                ConnectionClosedError,
                asyncio.TimeoutError,
            ):
                # Includes the daemon still holding our old name: retry
                # until its broken-socket detection runs client_gone.
                continue
            break
        if self._closing:
            return False
        self.counters["reconnects"] += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(
                "transport.client_reconnect",
                client=self.private_name,
                attempts=self.counters["reconnect_attempts"],
            )
        # Session re-join: the daemon sees a fresh connection, so the
        # groups re-install and every member (including us) gets the
        # membership resync events.
        for group in groups:
            self._my_groups.add(group)
            self._raw_send(ClientJoin(self.pid, group))
        self._emit(ConnectionRestoredEvent())
        for listener in list(self._listeners):
            listener.handle_reconnected(self)
        return True

    # -- heartbeat liveness ------------------------------------------------

    def _is_heartbeat(self, event: DataEvent) -> bool:
        return (
            self.heartbeat_group is not None
            and event.group == self.heartbeat_group
            and str(event.sender) == str(self.pid)
        )

    def _arm_heartbeat(self) -> None:
        self._hb_timer = self.kernel.call_later(
            self.heartbeat_interval,
            self._heartbeat_tick,
            label=f"{self.name}.heartbeat",
        )

    def _heartbeat_tick(self) -> None:
        if self._closing:
            return
        if self.connected:
            self._hb_seq += 1
            try:
                self._raw_send(
                    ClientMulticast(
                        self.pid,
                        ServiceType.UNRELIABLE,
                        self.heartbeat_group,
                        ("hb", self._hb_seq),
                        0,
                    )
                )
                self.counters["heartbeats_sent"] += 1
            except Exception:
                pass
            last = self._hb_last_echo
            if last is None:
                # Seed liveness at the first beacon of a (re)connected
                # session: a socket that is half-open from the very
                # start never produces an echo to set this, and must
                # still trip the timeout.
                self._hb_last_echo = self.kernel.now
            elif self.kernel.now - last > self.liveness_timeout:
                # Echoes stopped: declare the connection dead.  Abort
                # the socket; the read loop's error path reconnects.
                self._hb_last_echo = None
                self.counters["liveness_aborts"] += 1
                tracer = self.kernel.tracer
                if tracer.enabled:
                    tracer.record(
                        "transport.client_liveness",
                        client=self.private_name,
                        idle=self.kernel.now - last,
                    )
                writer = self._writer
                if writer is not None:
                    try:
                        writer.transport.abort()
                    except Exception:
                        pass
        self._arm_heartbeat()
