"""A wall-clock ``Clock`` backend over the asyncio event loop.

:class:`RealtimeClock` duck-types the scheduling surface of
:class:`repro.sim.kernel.Kernel` — ``now``, ``call_at``/``call_later``
(returning a cancellable handle with a readable ``cancelled``
attribute), ``tracer``, ``rng`` and the counter properties — so
:class:`~repro.sim.process.SimProcess` subclasses (the Spread daemon),
:class:`~repro.sim.timers.TimerWheel` and
:class:`~repro.secure.session.SecureGroupSession` run over a live
asyncio loop without modification.  Time is seconds since the clock's
construction (``loop.time()`` relative to an epoch), so protocol
timeouts written in sim seconds keep their meaning.

Two deliberate divergences from the virtual-time kernel:

* There is no ``run()``/``step()`` — the asyncio loop is the driver.
* ``call_at`` with a ``when`` already in the past fires as soon as
  possible instead of raising: between computing a deadline and
  scheduling it the wall clock has already moved, so "in the past" is
  the steady state for zero-delay callbacks, not a bug.  (Negative
  *delays* still raise, matching the kernel.)

``priority`` is accepted and ignored: wall-clock scheduling cannot
order two firings at "the same time" anyway, and the asyncio loop's
FIFO-per-deadline behaviour is deterministic enough for the protocols,
which tolerate arbitrary asynchrony by design.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.errors import ClockError
from repro.sim.rng import DeterministicRng
from repro.sim.trace import Tracer


class RtEvent:
    """Handle for one scheduled callback (the realtime ``Event``)."""

    __slots__ = ("cancelled", "label", "_fired", "_handle", "_clock")

    def __init__(self, clock: "RealtimeClock", label: str) -> None:
        self.cancelled = False
        self.label = label
        self._fired = False
        self._handle: Optional[asyncio.TimerHandle] = None
        self._clock = clock

    def cancel(self) -> None:
        """Cancel if not already fired or cancelled (idempotent)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        clock = self._clock
        clock._pending -= 1
        clock._events_cancelled += 1
        if self._handle is not None:
            self._handle.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<RtEvent {self.label or '?'}{state}>"


class RealtimeClock:
    """Kernel-compatible scheduler over ``asyncio``."""

    scheduler = "realtime"

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
    ) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._epoch = self._loop.time()
        self.rng = DeterministicRng(seed)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if getattr(self.tracer, "clock", None) is None:
            self.tracer.clock = lambda: self.now
        self._events_scheduled = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._pending = 0

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def now(self) -> float:
        """Seconds since this clock was created (monotonic)."""
        return self._loop.time() - self._epoch

    # -- counters (the kernel's observability surface) ---------------------

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        return self._events_scheduled

    @property
    def events_cancelled(self) -> int:
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        return self._pending

    # -- scheduling --------------------------------------------------------

    def call_at(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> RtEvent:
        """Schedule ``callback`` at clock time ``when`` (ASAP if past)."""
        event = RtEvent(self, label)
        self._events_scheduled += 1
        self._pending += 1

        def fire() -> None:
            if event.cancelled:
                return
            event._fired = True
            self._pending -= 1
            self._events_processed += 1
            callback()

        event._handle = self._loop.call_at(self._epoch + when, fire)
        return event

    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> RtEvent:
        """Schedule ``callback`` after ``delay`` wall-clock seconds."""
        if delay < 0:
            raise ClockError(f"negative delay: {delay!r}")
        return self.call_at(self.now + delay, callback, priority, label)
