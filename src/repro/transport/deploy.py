"""Deployment config files for multi-machine (and multi-process) runs.

A *deployment* names every daemon in a Spread configuration together
with where it listens — turning the hand-built ``--peer`` incantations
of ``python -m repro.transport.daemon`` into one reviewable file that
every machine (and the launcher, and benches, and CI) loads
identically.  TOML is the native format (stdlib ``tomllib``); JSON with
the same shape is accepted for programmatic writers::

    [deployment]
    keyfile = "deploy.key"      # frame-auth key, relative to this file
    bind = "127.0.0.1"          # listener bind address on each machine
    hello_interval = 0.25
    fail_timeout = 1.5
    packing = false
    seed = 0

    [[daemon]]
    name = "d0"
    host = "127.0.0.1"          # address *peers and clients* dial
    peer_port = 4803
    client_port = 4813
    machine = "m0"              # process/machine group; default: name

Daemons sharing a ``machine`` value run in one
:class:`~repro.transport.host.DaemonHost` process; by default each
daemon is its own machine, which is the honest multi-process shape the
loopback benches measure.  Every field is validated up front —
:class:`~repro.errors.DeployError` names the offending entry — because
a deployment file is shared state: one machine running a typo'd port
produces a partitioned view, not an error, hours later.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import DeployError
from repro.spread.config import SpreadConfig
from repro.transport.tcp import TransportMap


@dataclass(frozen=True)
class DaemonSpec:
    """One daemon of a deployment: identity plus listening addresses."""

    name: str
    host: str
    peer_port: int
    client_port: int
    machine: str

    @property
    def peer_address(self) -> Tuple[str, int]:
        return (self.host, self.peer_port)

    @property
    def client_address(self) -> Tuple[str, int]:
        return (self.host, self.client_port)


@dataclass(frozen=True)
class Deployment:
    """A validated deployment: daemon specs plus shared knobs."""

    daemons: Tuple[DaemonSpec, ...]
    keyfile: Optional[str] = None
    bind: str = "0.0.0.0"
    hello_interval: float = 0.25
    fail_timeout: float = 1.5
    packing: bool = False
    seed: int = 0

    def spec(self, name: str) -> DaemonSpec:
        for daemon in self.daemons:
            if daemon.name == name:
                return daemon
        raise DeployError(f"no daemon named {name!r} in the deployment")

    def machines(self) -> Dict[str, List[str]]:
        """Machine name → daemon names hosted there (insertion order)."""
        groups: Dict[str, List[str]] = {}
        for daemon in self.daemons:
            groups.setdefault(daemon.machine, []).append(daemon.name)
        return groups

    def transport_map(self) -> TransportMap:
        table = TransportMap()
        for daemon in self.daemons:
            table.set_peer(daemon.name, daemon.host, daemon.peer_port)
            table.set_client(daemon.name, daemon.host, daemon.client_port)
        return table

    def spread_config(self) -> SpreadConfig:
        return SpreadConfig(
            daemons=tuple(d.name for d in self.daemons),
            hello_interval=self.hello_interval,
            fail_timeout=self.fail_timeout,
            gather_timeout=self.fail_timeout * 2,
            sync_timeout=self.fail_timeout * 4,
            packing=self.packing,
        )

    def daemon_argv(self, machine: str) -> List[str]:
        """CLI arguments for ``python -m repro.transport.daemon`` hosting
        one machine's share of the deployment."""
        hosted = self.machines().get(machine)
        if not hosted:
            raise DeployError(f"no daemons on machine {machine!r}")
        argv = ["--bind", self.bind, "--seed", str(self.seed)]
        for daemon in self.daemons:
            argv += [
                "--peer",
                f"{daemon.name}={daemon.host}:{daemon.peer_port}"
                f":{daemon.client_port}",
            ]
        for name in hosted:
            argv += ["--host", name]
        argv += ["--hello-interval", str(self.hello_interval)]
        argv += ["--fail-timeout", str(self.fail_timeout)]
        if self.packing:
            argv.append("--packing")
        if self.keyfile is not None:
            argv += ["--keyfile", self.keyfile]
        return argv


def _require(table: dict, key: str, kind, where: str):
    if key not in table:
        raise DeployError(f"{where}: missing required field {key!r}")
    value = table[key]
    # bool is an int subclass; a port of ``true`` is a typo, not a port.
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise DeployError(
            f"{where}: field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _port(table: dict, key: str, where: str) -> int:
    port = _require(table, key, int, where)
    if not 1 <= port <= 65535:
        raise DeployError(f"{where}: {key} {port} outside 1-65535")
    return port


def parse_deployment(
    document: dict, base_dir: Optional[Path] = None
) -> Deployment:
    """Validate a parsed config document into a :class:`Deployment`.

    ``base_dir`` anchors relative ``keyfile`` paths (the directory of
    the config file, so a deployment directory can be copied whole).
    """
    if not isinstance(document, dict):
        raise DeployError("deployment document must be a table/object")
    shared = document.get("deployment", {})
    if not isinstance(shared, dict):
        raise DeployError("[deployment] must be a table/object")
    known = {
        "keyfile", "bind", "hello_interval", "fail_timeout",
        "packing", "seed",
    }
    for key in shared:
        if key not in known:
            raise DeployError(f"[deployment]: unknown field {key!r}")
    entries = document.get("daemon")
    if not isinstance(entries, list) or not entries:
        raise DeployError("a deployment needs at least one [[daemon]] entry")

    daemons: List[DaemonSpec] = []
    seen_names: set = set()
    seen_endpoints: set = set()
    for index, entry in enumerate(entries):
        where = f"daemon[{index}]"
        if not isinstance(entry, dict):
            raise DeployError(f"{where}: must be a table/object")
        for key in entry:
            if key not in {"name", "host", "peer_port", "client_port",
                           "machine"}:
                raise DeployError(f"{where}: unknown field {key!r}")
        name = _require(entry, "name", str, where)
        if not name:
            raise DeployError(f"{where}: empty daemon name")
        if name in seen_names:
            raise DeployError(f"{where}: duplicate daemon name {name!r}")
        seen_names.add(name)
        host = _require(entry, "host", str, where)
        peer_port = _port(entry, "peer_port", where)
        client_port = _port(entry, "client_port", where)
        for port in (peer_port, client_port):
            endpoint = (host, port)
            if endpoint in seen_endpoints:
                raise DeployError(
                    f"{where}: address {host}:{port} already in use"
                )
            seen_endpoints.add(endpoint)
        machine = entry.get("machine", name)
        if not isinstance(machine, str) or not machine:
            raise DeployError(f"{where}: machine must be a non-empty string")
        daemons.append(
            DaemonSpec(
                name=name,
                host=host,
                peer_port=peer_port,
                client_port=client_port,
                machine=machine,
            )
        )

    keyfile = shared.get("keyfile")
    if keyfile is not None:
        if not isinstance(keyfile, str) or not keyfile:
            raise DeployError("[deployment]: keyfile must be a path string")
        if base_dir is not None and not Path(keyfile).is_absolute():
            keyfile = str(base_dir / keyfile)

    bind = shared.get("bind", "0.0.0.0")
    if not isinstance(bind, str) or not bind:
        raise DeployError("[deployment]: bind must be an address string")

    def _number(key: str, default: float) -> float:
        value = shared.get(key, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DeployError(f"[deployment]: {key} must be a number")
        if value <= 0:
            raise DeployError(f"[deployment]: {key} must be > 0")
        return float(value)

    packing = shared.get("packing", False)
    if not isinstance(packing, bool):
        raise DeployError("[deployment]: packing must be a boolean")
    seed = shared.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise DeployError("[deployment]: seed must be an integer")

    return Deployment(
        daemons=tuple(daemons),
        keyfile=keyfile,
        bind=bind,
        hello_interval=_number("hello_interval", 0.25),
        fail_timeout=_number("fail_timeout", 1.5),
        packing=packing,
        seed=seed,
    )


def load_deployment(path: Union[str, Path]) -> Deployment:
    """Load and validate a deployment file (TOML, or JSON by suffix)."""
    source = Path(path)
    try:
        raw = source.read_bytes()
    except OSError as exc:
        raise DeployError(f"cannot read deployment file {path}: {exc}")
    if source.suffix.lower() == ".json":
        try:
            document = json.loads(raw)
        except ValueError as exc:
            raise DeployError(f"{path} is not valid JSON: {exc}")
    else:
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise DeployError(f"{path} is not valid TOML: {exc}")
    return parse_deployment(document, base_dir=source.parent)
