"""The transport seam: the contracts between the Spread stack and
whatever carries its bytes and drives its timers.

The daemon and client code in :mod:`repro.spread` was written against
the deterministic sim kernel, but the coupling was always narrow.  This
module makes the three implicit seams explicit (as :class:`typing
.Protocol` classes, so backends duck-type — the sim backend predates the
seam and must not import this package):

``Transport``
    What a :class:`~repro.spread.daemon.SpreadDaemon` needs from the
    daemon-to-daemon datagram substrate.  The sim backend is
    :class:`repro.net.network.Network` (unchanged — it already satisfies
    the protocol); the real backend is
    :class:`repro.transport.tcp.TcpTransport`, which carries each
    payload as one length-prefixed frame over a TCP connection per peer.

``Clock``
    What daemons, clients and secure sessions need from the event
    scheduler.  The sim backend is :class:`repro.sim.kernel.Kernel`
    (virtual time); the real backend is :class:`repro.transport.rtclock
    .RealtimeClock`, which maps the same ``call_at``/``call_later``
    surface onto ``asyncio.loop.call_at`` (wall-clock seconds).
    :class:`~repro.sim.process.SimProcess`, :class:`~repro.sim.timers
    .TimerWheel` and :class:`~repro.secure.session.SecureGroupSession`
    run unmodified over either.

``DaemonEndpoint``
    What a client library needs from its daemon: the client-side of the
    IPC channel.  The sim backend is :class:`repro.spread.client
    .SimDaemonEndpoint` (in-process calls behind the modelled
    ``ipc_delay``); the real backend is the framed TCP connection inside
    :class:`repro.transport.client.TcpSpreadClient`.

Nothing here is imported by :mod:`repro.spread` — the seam is a
contract, not a dependency — so the sim path stays byte-identical to
the pre-seam code (chaos-crucible fingerprints pin this).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.types import ProcessId, ServiceType


@runtime_checkable
class ScheduledEvent(Protocol):
    """Handle returned by ``Clock.call_at``/``call_later``.

    ``cancelled`` must be a readable attribute (``repro.sim.timers
    .Timer`` polls it) and ``cancel()`` must be idempotent.
    """

    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """The scheduler surface the Spread stack runs against.

    The sim backend is :class:`repro.sim.kernel.Kernel`; the realtime
    backend is :class:`repro.transport.rtclock.RealtimeClock`.  ``now``
    is seconds (virtual or wall — relative to the clock's own epoch);
    ``tracer`` and ``rng`` ride along because every layer reaches them
    through its clock/kernel reference.
    """

    now: float
    tracer: Any
    rng: Any

    def call_at(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent: ...

    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent: ...


@runtime_checkable
class Transport(Protocol):
    """The daemon-to-daemon datagram surface.

    Exactly the three calls :class:`~repro.spread.daemon.SpreadDaemon`
    makes: register the local node, ask whether a peer is reachable at
    all (configured/registered — *not* a liveness oracle), and send one
    payload.  Datagram semantics: ``send`` never blocks and may drop;
    reliability lives above, in the daemon's NACK/retransmit machinery.
    """

    def add_node(self, node: Any) -> None: ...

    def has_node(self, name: str) -> bool: ...

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> None: ...


@runtime_checkable
class DaemonEndpoint(Protocol):
    """The client side of the client ↔ daemon IPC channel.

    The verbs of the Spread C API's connection half, minus queueing
    (receive-side delivery happens by the daemon calling
    ``deliver_event`` on whatever ``connect`` handed it).  The sim
    backend (:class:`repro.spread.client.SimDaemonEndpoint`) schedules
    each verb behind the modelled ``ipc_delay``; the TCP backend writes
    a frame per verb and lets the socket provide the latency.
    """

    @property
    def alive(self) -> bool: ...

    @property
    def daemon_name(self) -> str: ...

    @property
    def max_message_size(self) -> int: ...

    def connect(self, client: Any, private_name: str) -> ProcessId: ...

    def join(self, pid: ProcessId, group: str) -> None: ...

    def leave(self, pid: ProcessId, group: str) -> None: ...

    def multicast(
        self,
        pid: ProcessId,
        service: ServiceType,
        group: str,
        payload: Any,
        origin_seq: int,
    ) -> None: ...

    def disconnect(self, private_name: str) -> None: ...

    def crash_notify(self, private_name: str) -> None: ...
