"""repro.transport — the real-network backend behind the transport seam.

The deterministic sim kernel stays the reference backend; this package
makes the seams it sat behind explicit and adds an asyncio TCP backend
so the *same* daemons, clients and secure sessions run over real
sockets (docs/TRANSPORT.md):

* :mod:`repro.transport.base` — the ``Transport`` / ``Clock`` /
  ``DaemonEndpoint`` seam contracts (Protocols; backends duck-type).
* :mod:`repro.transport.wire` — length-prefixed, versioned,
  CRC-checked frame codec with an incremental decoder.
* :mod:`repro.transport.protocol` — client ↔ daemon IPC verbs.
* :mod:`repro.transport.rtclock` — ``RealtimeClock``: the kernel
  scheduling surface bridged to ``asyncio.loop.call_at``.
* :mod:`repro.transport.tcp` — ``TcpTransport``: daemon-to-daemon
  datagrams over per-peer TCP connections, plus the ``TransportMap``
  address directory.
* :mod:`repro.transport.host` — ``DaemonHost``: real daemons on one
  asyncio loop (client listeners included).
* :mod:`repro.transport.daemon` — the CLI
  (``python -m repro.transport.daemon``).
* :mod:`repro.transport.client` — ``TcpSpreadClient``: the Spread
  client API over a socket, with listener callbacks, auto-reconnect
  and heartbeat liveness.
* :mod:`repro.transport.netem` — WAN-shaped fault injection: a seeded
  shaping TCP proxy (``NetemLink``/``NetemWorld``) plus declarative
  ``NetemSchedule`` fault scripts; also a standalone CLI
  (``python -m repro.transport.netem``).
* :mod:`repro.transport.auth` — frame authentication: HMAC-SHA256 tags
  under a pre-shared deployment key (``FrameAuth``, key-file CLI) plus
  the restricted unpickler wire bodies decode through.
* :mod:`repro.transport.deploy` — deployment config files (TOML/JSON:
  daemon names, hosts, ports, key file) parsed to a ``Deployment``.
* :mod:`repro.transport.launch` — ``python -m repro.transport.launch``:
  spawn the daemon processes of a deployment, wait for readiness,
  tear down cleanly.

Submodules that need the Spread stack (``host``, ``client``) are
re-exported lazily so importing :mod:`repro.transport` from low-level
code can never create an import cycle with :mod:`repro.spread`.
"""

from repro.transport.auth import AUTH_DISABLED, FrameAuth, restricted_loads
from repro.transport.rtclock import RealtimeClock
from repro.transport.tcp import TcpTransport, TransportMap
from repro.transport.wire import FrameDecoder, decode_frame, encode_frame

__all__ = [
    "RealtimeClock",
    "TcpTransport",
    "TransportMap",
    "FrameDecoder",
    "decode_frame",
    "encode_frame",
    "AUTH_DISABLED",
    "FrameAuth",
    "restricted_loads",
    "Deployment",
    "DaemonSpec",
    "load_deployment",
    "DaemonHost",
    "TcpSpreadClient",
    "SpreadListener",
    "LinkShape",
    "NetemLink",
    "NetemSchedule",
    "NetemWorld",
]


def __getattr__(name):
    if name == "DaemonHost":
        from repro.transport.host import DaemonHost

        return DaemonHost
    if name in ("TcpSpreadClient", "SpreadListener"):
        import repro.transport.client as _client

        return getattr(_client, name)
    if name in ("LinkShape", "NetemLink", "NetemSchedule", "NetemWorld"):
        import repro.transport.netem as _netem

        return getattr(_netem, name)
    if name in ("Deployment", "DaemonSpec", "load_deployment"):
        import repro.transport.deploy as _deploy

        return getattr(_deploy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
