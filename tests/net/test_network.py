"""Unit tests for links, the network and fault injection."""

import pytest

from repro.errors import LinkError, PartitionError, UnknownAddressError
from repro.net.fault import FaultInjector, FaultSchedule
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.sim.process import FunctionProcess
from repro.sim.rng import DeterministicRng


def make_net(n=3, **net_kwargs):
    kernel = Kernel(seed=1)
    network = Network(kernel, **net_kwargs)
    nodes = []
    for i in range(n):
        node = FunctionProcess(kernel, f"n{i}")
        node.start()
        network.add_node(node)
        nodes.append(node)
    return kernel, network, nodes


# -- LinkModel ------------------------------------------------------------------


def test_link_validation():
    with pytest.raises(LinkError):
        LinkModel(base_latency=-1)
    with pytest.raises(LinkError):
        LinkModel(bandwidth=0)
    with pytest.raises(LinkError):
        LinkModel(jitter=-0.1)
    with pytest.raises(LinkError):
        LinkModel(loss_rate=1.5)


def test_link_delay_includes_serialization():
    rng = DeterministicRng(0)
    link = LinkModel(base_latency=0.001, bandwidth=1000.0)
    assert link.delay_for(500, rng) == pytest.approx(0.001 + 0.5)


def test_link_delay_infinite_bandwidth():
    rng = DeterministicRng(0)
    link = LinkModel(base_latency=0.002)
    assert link.delay_for(10 ** 6, rng) == pytest.approx(0.002)


def test_link_jitter_bounds():
    rng = DeterministicRng(0)
    link = LinkModel(base_latency=0.001, jitter=0.01)
    for _ in range(100):
        delay = link.delay_for(0, rng)
        assert 0.001 <= delay <= 0.011


def test_link_loss_rate_statistics():
    rng = DeterministicRng(0)
    link = LinkModel(loss_rate=0.3)
    losses = sum(link.is_lost(rng) for _ in range(5000))
    assert 0.25 < losses / 5000 < 0.35


def test_link_zero_loss_never_drops():
    rng = DeterministicRng(0)
    link = LinkModel()
    assert not any(link.is_lost(rng) for _ in range(100))


def test_link_presets_construct():
    for preset in (
        LinkModel.ethernet_10base_t(),
        LinkModel.ethernet_100base_t(),
        LinkModel.local_ipc(),
        LinkModel.wan(),
    ):
        assert preset.base_latency >= 0


# -- Network delivery --------------------------------------------------------------


def test_unicast_delivery():
    kernel, network, nodes = make_net()
    network.send("n0", "n1", "hello")
    kernel.run()
    assert nodes[1].inbox == [("n0", "hello")]
    assert network.datagrams_delivered == 1


def test_unknown_destination_raises():
    kernel, network, _ = make_net()
    with pytest.raises(UnknownAddressError):
        network.send("n0", "nope", "x")


def test_multicast_skips_source():
    kernel, network, nodes = make_net(4)
    network.multicast("n0", ["n0", "n1", "n2", "n3"], "m")
    kernel.run()
    assert nodes[0].inbox == []
    for node in nodes[1:]:
        assert node.inbox == [("n0", "m")]


def test_delivery_respects_latency():
    kernel, network, nodes = make_net()
    network.set_link("n0", "n1", LinkModel(base_latency=0.5))
    network.send("n0", "n1", "x")
    kernel.run()
    assert kernel.now == pytest.approx(0.5)


def test_per_pair_link_override_is_symmetric():
    kernel, network, _ = make_net()
    model = LinkModel(base_latency=0.123)
    network.set_link("n0", "n1", model)
    assert network.link_between("n1", "n0") is model
    assert network.link_between("n0", "n2") is network.default_link


def test_lossy_link_drops():
    kernel = Kernel(seed=5)
    network = Network(kernel, default_link=LinkModel(loss_rate=1.0))
    a = FunctionProcess(kernel, "a")
    b = FunctionProcess(kernel, "b")
    for node in (a, b):
        node.start()
        network.add_node(node)
    network.send("a", "b", "x")
    kernel.run()
    assert b.inbox == []
    assert network.datagrams_dropped == 1


# -- Partitions -----------------------------------------------------------------------


def test_partition_blocks_cross_component_traffic():
    kernel, network, nodes = make_net(4)
    network.partition([["n0", "n1"], ["n2", "n3"]])
    network.send("n0", "n2", "blocked")
    network.send("n0", "n1", "ok")
    kernel.run()
    assert nodes[2].inbox == []
    assert nodes[1].inbox == [("n0", "ok")]


def test_partition_overlapping_components_rejected():
    kernel, network, _ = make_net()
    with pytest.raises(PartitionError):
        network.partition([["n0", "n1"], ["n1", "n2"]])


def test_unnamed_nodes_form_their_own_component():
    kernel, network, nodes = make_net(4)
    network.partition([["n0"]])
    assert network.reachable("n1", "n2")
    assert network.reachable("n2", "n3")
    assert not network.reachable("n0", "n1")


def test_heal_restores_connectivity():
    kernel, network, nodes = make_net()
    network.partition([["n0"], ["n1", "n2"]])
    assert not network.reachable("n0", "n1")
    network.heal()
    assert network.reachable("n0", "n1")
    assert not network.partitioned


def test_component_members():
    kernel, network, _ = make_net(4)
    network.partition([["n0", "n1"], ["n2", "n3"]])
    assert network.component_members("n0") == {"n0", "n1"}
    network.heal()
    assert network.component_members("n0") == {"n0", "n1", "n2", "n3"}


def test_self_reachability_always_holds():
    kernel, network, _ = make_net()
    network.partition([["n0"], ["n1", "n2"]])
    assert network.reachable("n0", "n0")


def test_in_flight_message_cut_by_partition():
    kernel, network, nodes = make_net()
    network.set_link("n0", "n1", LinkModel(base_latency=1.0))
    network.send("n0", "n1", "late")
    kernel.call_at(0.5, lambda: network.partition([["n0"], ["n1", "n2"]]))
    kernel.run()
    assert nodes[1].inbox == []


def test_wire_size_from_payload():
    kernel, network, nodes = make_net()
    network.send("n0", "n1", b"12345678")
    kernel.run()
    assert network.bytes_sent == 8


# -- Fault injection ----------------------------------------------------------------


def test_fault_schedule_describe_sorted():
    schedule = (
        FaultSchedule()
        .heal(5.0)
        .crash(1.0, "a")
        .partition(2.0, [["a"], ["b"]])
        .recover(3.0, "a")
    )
    lines = schedule.describe()
    assert lines[0].startswith("t=1.0: crash")
    assert lines[1].startswith("t=2.0: partition")
    assert lines[2].startswith("t=3.0: recover")
    assert lines[3] == "t=5.0: heal"


def test_injector_runs_crash_and_recover():
    kernel, network, nodes = make_net()
    injector = FaultInjector(kernel, network, {n.name: n for n in nodes})
    schedule = FaultSchedule().crash(1.0, "n0").recover(2.0, "n0")
    injector.arm(schedule)
    kernel.run(until=1.5)
    assert not nodes[0].alive
    kernel.run()
    assert nodes[0].alive
    assert len(injector.fired) == 2


def test_injector_partition_and_heal():
    kernel, network, nodes = make_net()
    injector = FaultInjector(kernel, network, {n.name: n for n in nodes})
    injector.arm(FaultSchedule().partition(1.0, [["n0"], ["n1", "n2"]]).heal(2.0))
    kernel.run(until=1.5)
    assert not network.reachable("n0", "n1")
    kernel.run()
    assert network.reachable("n0", "n1")


def test_injector_register_after_construction():
    kernel, network, nodes = make_net()
    injector = FaultInjector(kernel, network, {})
    injector.register(nodes[0])
    injector.arm(FaultSchedule().crash(1.0, "n0"))
    kernel.run()
    assert not nodes[0].alive
