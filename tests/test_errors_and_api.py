"""Error hierarchy and public API surface sanity."""

import inspect

import pytest

import repro
import repro.errors as errors_module
from repro.errors import ReproError


def all_error_classes():
    return [
        cls
        for __, cls in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(cls, Exception) and cls.__module__ == "repro.errors"
    ]


def test_every_library_error_derives_from_repro_error():
    for cls in all_error_classes():
        assert issubclass(cls, ReproError), cls


def test_error_classes_have_docstrings():
    for cls in all_error_classes():
        assert cls.__doc__, cls


def test_catching_base_class_catches_all():
    from repro.errors import CipherError, CliquesError, SpreadError

    for cls in (CipherError, CliquesError, SpreadError):
        with pytest.raises(ReproError):
            raise cls("boom")


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_public_imports_resolve():
    # Every name promised by the package __init__ files must import.
    import repro.secure as secure
    import repro.spread as spread
    import repro.crypto as crypto
    import repro.cliques as cliques
    import repro.ckd as ckd
    import repro.sim as sim
    import repro.net as net
    import repro.bench as bench

    for module in (secure, spread, crypto, cliques, ckd, sim, net, bench):
        for name in module.__all__:
            assert getattr(module, name) is not None, (module.__name__, name)


def test_subsystem_docstrings_exist():
    import repro.secure, repro.spread, repro.crypto, repro.cliques
    import repro.ckd, repro.sim, repro.net, repro.bench

    for module in (
        repro, repro.secure, repro.spread, repro.crypto, repro.cliques,
        repro.ckd, repro.sim, repro.net, repro.bench,
    ):
        assert module.__doc__ and len(module.__doc__) > 40, module.__name__
