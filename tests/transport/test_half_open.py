"""Heartbeat liveness against a stalled-but-open socket.

A half-open TCP connection — switch died, NAT entry expired, peer
power-cycled — delivers no data and no error.  The client's self-echo
heartbeat is the detector: when its own beacon stops coming back inside
``liveness_timeout``, the client aborts the socket and runs the normal
outage path.  Contract under test: per manufactured half-open outage the
application observes exactly one ``ConnectionLostEvent`` and exactly one
``ConnectionRestoredEvent`` — no matter how many reconnect attempts
failed against the still-stalled wire in between.
"""

import asyncio

from repro.transport.client import (
    ConnectionLostEvent,
    ConnectionRestoredEvent,
    TcpSpreadClient,
)
from repro.transport.host import DaemonHost, wait_for_condition
from repro.transport.netem import NetemWorld

from tests.transport.conftest import loopback_config, run


def test_stalled_socket_trips_liveness_and_reconnects_once():
    async def main():
        host = DaemonHost(loopback_config(("d0",)), ("d0",))
        await host.start()
        await host.settle()
        world = NetemWorld(seed=6)
        try:
            proxy = await world.open_link(
                "client:c0", lambda: host.addresses.client("d0")
            )
            client = TcpSpreadClient(
                proxy,
                "c0",
                clock=host.clock,
                backoff_base=0.05,
                backoff_cap=0.3,
                connect_timeout=0.5,
                heartbeat_group="hb-c0",
                heartbeat_interval=0.1,
                liveness_timeout=0.6,
            )
            await client.connect()
            client.join("g")
            await wait_for_condition(
                lambda: any(
                    getattr(e, "is_membership", False)
                    and str(getattr(e, "group", "")) == "g"
                    for e in client.queue
                ),
                timeout=30.0,
            )
            client.drain()

            # Manufacture the half-open state: both directions freeze,
            # sockets stay open, no error ever surfaces on its own.
            world.links["client:c0"].stall("both")
            await wait_for_condition(
                lambda: client.counters["liveness_aborts"] >= 1,
                timeout=30.0,
            )
            # Reconnect attempts against the stalled wire must fail
            # (connect_timeout) without fabricating more outage events.
            await asyncio.sleep(1.0)
            assert not client.connected

            world.links["client:c0"].resume("both")
            await wait_for_condition(
                lambda: client.counters["reconnects"] >= 1
                and client.connected,
                timeout=30.0,
            )

            events = client.drain()
            lost = [e for e in events if isinstance(e, ConnectionLostEvent)]
            restored = [
                e for e in events if isinstance(e, ConnectionRestoredEvent)
            ]
            assert len(lost) == 1, f"expected one lost event, got {lost}"
            assert len(restored) == 1, (
                f"expected one restored event, got {restored}"
            )
            assert events.index(lost[0]) < events.index(restored[0])
            assert client.counters["liveness_aborts"] == 1
            assert client.counters["drops"] == 1
            assert client.counters["reconnects"] == 1
            # The stalled window cost at least one failed dial.
            assert client.counters["reconnect_attempts"] >= 1
            await client.close()
        finally:
            await world.close()
            await host.stop()

    run(main())


def test_half_open_from_connect_is_detected():
    """Liveness must trip even when the wire stalls before the first
    beacon ever echoes (the `_hb_last_echo is None` seed-at-first-beacon
    case)."""

    async def main():
        host = DaemonHost(loopback_config(("d0",)), ("d0",))
        await host.start()
        await host.settle()
        world = NetemWorld(seed=7)
        try:
            proxy = await world.open_link(
                "client:c1", lambda: host.addresses.client("d0")
            )
            client = TcpSpreadClient(
                proxy,
                "c1",
                clock=host.clock,
                backoff_base=0.05,
                backoff_cap=0.3,
                connect_timeout=0.5,
                heartbeat_group="hb-c1",
                heartbeat_interval=0.1,
                liveness_timeout=0.6,
            )
            await client.connect()
            # Stall immediately: no beacon will ever come back.
            world.links["client:c1"].stall("both")
            await wait_for_condition(
                lambda: client.counters["liveness_aborts"] >= 1,
                timeout=30.0,
            )
            await client.close()
        finally:
            await world.close()
            await host.stop()

    run(main())
