"""Hypothesis fuzz over the wire framing (`repro.transport.wire`).

The FrameDecoder sits directly on attacker-adjacent bytes: whatever the
kernel's ``read()`` returns — arbitrarily chunked, truncated by a dying
peer, or corrupted by a hostile middlebox — must come out as either the
exact sent payload stream or a clean :class:`~repro.errors.FrameError`
(connection-fatal, caller reconnects and resyncs).  Nothing else may
escape — not a pickle error, not a struct error, not an unbounded
buffer.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.errors import FrameError
from repro.transport.wire import (
    HEADER,
    HEADER_SIZE,
    MAGIC,
    VERSION,
    FrameDecoder,
    encode_frame,
)

#: Small picklable payloads of the shapes the stack actually ships:
#: raw bytes, tagged tuples, tiny dicts.
payloads = st.lists(
    st.one_of(
        st.binary(max_size=200),
        st.tuples(st.integers(-1000, 1000), st.binary(max_size=50)),
        st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
    ),
    min_size=1,
    max_size=5,
)

FUZZ_LIMIT = 1 << 16


def feed_chunked(decoder, stream, data):
    """Feed ``stream`` in draw-sized chunks; returns decoded payloads."""
    out = []
    offset = 0
    while offset < len(stream):
        size = data.draw(
            st.integers(min_value=1, max_value=len(stream) - offset),
            label="chunk",
        )
        out.extend(decoder.feed(stream[offset : offset + size]))
        offset += size
    return out


@given(items=payloads, data=st.data())
@settings(max_examples=75, deadline=None)
def test_any_chunking_decodes_the_exact_stream(items, data):
    stream = b"".join(encode_frame(item) for item in items)
    decoder = FrameDecoder(max_frame=FUZZ_LIMIT)
    out = feed_chunked(decoder, stream, data)
    assert out == items
    assert decoder.pending == 0
    assert decoder.frames_decoded == len(items)


@given(items=payloads, data=st.data())
@settings(max_examples=75, deadline=None)
def test_truncation_yields_a_clean_prefix(items, data):
    encoded = [encode_frame(item) for item in items]
    stream = b"".join(encoded)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    decoder = FrameDecoder(max_frame=FUZZ_LIMIT)
    out = feed_chunked(decoder, stream[:cut], data) if cut else []
    # Exactly the frames that fit whole before the cut, in order.
    boundary = 0
    expected = []
    for item, blob in zip(items, encoded):
        boundary += len(blob)
        if boundary <= cut:
            expected.append(item)
    assert out == expected
    assert decoder.pending < FUZZ_LIMIT


@given(items=payloads, data=st.data())
@settings(max_examples=100, deadline=None)
def test_single_byte_corruption_never_escapes_frameerror(items, data):
    stream = bytearray(b"".join(encode_frame(item) for item in items))
    position = data.draw(
        st.integers(min_value=0, max_value=len(stream) - 1), label="pos"
    )
    mask = data.draw(st.integers(min_value=1, max_value=255), label="mask")
    stream[position] ^= mask
    decoder = FrameDecoder(max_frame=FUZZ_LIMIT)
    out = []
    try:
        out = feed_chunked(decoder, bytes(stream), data)
    except FrameError:
        pass  # the only exception allowed out
    # Whatever decoded is an exact prefix of what was sent: corruption
    # may cost the tail of the stream, never invent or reorder data.
    assert out == items[: len(out)]
    assert decoder.pending <= FUZZ_LIMIT


@given(junk=st.binary(min_size=1, max_size=4096), data=st.data())
@settings(max_examples=75, deadline=None)
def test_garbage_is_rejected_or_left_pending(junk, data):
    decoder = FrameDecoder(max_frame=FUZZ_LIMIT)
    try:
        out = feed_chunked(decoder, junk, data)
    except FrameError:
        return
    # No error: the bytes could not have formed a bogus payload — junk
    # must survive magic, version, CRC *and* unpickle to decode, and a
    # stalled partial header stays bounded in the buffer.
    assert out == []
    assert decoder.pending <= FUZZ_LIMIT


def test_oversized_declared_length_is_refused_before_buffering():
    header = HEADER.pack(MAGIC, VERSION, 0, 0, FUZZ_LIMIT * 16, 0)
    decoder = FrameDecoder(max_frame=FUZZ_LIMIT)
    with pytest.raises(FrameError):
        decoder.feed(header)


def test_decoder_resyncs_on_a_fresh_connection_after_error():
    blob = encode_frame(b"payload")
    corrupted = bytearray(blob)
    corrupted[-1] ^= 0xFF
    stale = FrameDecoder(max_frame=FUZZ_LIMIT)
    with pytest.raises(FrameError):
        stale.feed(bytes(corrupted))
    # Connection-fatal means the *caller* reconnects; the replacement
    # decoder starts at a frame boundary and decodes cleanly.
    fresh = FrameDecoder(max_frame=FUZZ_LIMIT)
    assert fresh.feed(blob) == [b"payload"]
    assert fresh.pending == 0


def test_header_split_at_every_byte_boundary():
    blob = encode_frame((1, b"x"))
    for split in range(1, HEADER_SIZE + 1):
        decoder = FrameDecoder(max_frame=FUZZ_LIMIT)
        assert decoder.feed(blob[:split]) == []
        assert decoder.feed(blob[split:]) == [(1, b"x")]
