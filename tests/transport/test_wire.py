"""Wire-format properties: framing survives arbitrary TCP chunking.

TCP is a byte stream — the decoder must produce the identical envelope
sequence no matter where the stream is cut.  Hypothesis drives the cut
points; the malformed-input tests cover every rejection path of the
header (magic, version, size, checksum, kind/type agreement).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, WireVersionError
from repro.spread.fragments import MessageFragment
from repro.spread.messages import DataMessage, Hello, Nack, Packed
from repro.transport.protocol import (
    ClientConnect,
    ClientDeliver,
    ClientMulticast,
    PeerHello,
)
from repro.transport.wire import (
    HEADER_SIZE,
    FrameDecoder,
    decode_frame,
    encode_frame,
    kind_code,
    kind_name,
)
from repro.types import ProcessId, ServiceType, ViewId


def sample_envelopes():
    """One representative of each interesting wire shape."""
    pid = ProcessId(private_name="m0", daemon="d0")
    view = ViewId(epoch=1, counter=1, coordinator="d0")
    data = DataMessage(
        sender_daemon="d0",
        view_id=view,
        seq=7,
        lamport=11,
        service=ServiceType.AGREED,
        kind="app",
        group="g",
        origin=pid,
        origin_seq=3,
        payload=b"x" * 50,
    )
    return [
        data,
        Packed(sender="d0", view_id=view, messages=(data, data)),
        Hello(sender="d1", view_id=view, lamport=5, all_received=2,
              incarnation=1, sent_seq=7),
        Nack(sender="d2", view_id=view, target="d0", missing=(1, 2)),
        PeerHello("d0"),
        ClientConnect("m0"),
        ClientMulticast(pid, ServiceType.SAFE, "g", b"payload", 9),
        ClientDeliver(("opaque", ["python", "object"])),
        ClientMulticast(
            pid,
            ServiceType.FIFO,
            "g",
            MessageFragment(fragment_id=1, index=0, total=2, chunk=b"c" * 30),
            10,
        ),
        {"plain": "pyobj fallback"},
    ]


def chunking(data: bytes, cuts):
    """Split ``data`` at the (sorted, de-duplicated) cut offsets."""
    offsets = sorted({c % (len(data) + 1) for c in cuts})
    pieces, last = [], 0
    for offset in offsets:
        pieces.append(data[last:offset])
        last = offset
    pieces.append(data[last:])
    return [p for p in pieces if p]


def roundtrip_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    try:
        if a == b:
            return True
    except Exception:
        pass
    return repr(a) == repr(b)


@settings(max_examples=60, deadline=None)
@given(
    order=st.lists(st.integers(0, len(sample_envelopes()) - 1), min_size=1, max_size=6),
    cuts=st.lists(st.integers(0, 10_000), max_size=24),
)
def test_any_envelope_stream_survives_arbitrary_chunking(order, cuts):
    envelopes = [sample_envelopes()[i] for i in order]
    stream = b"".join(encode_frame(e) for e in envelopes)
    decoder = FrameDecoder()
    out = []
    for piece in chunking(stream, cuts):
        out.extend(decoder.feed(piece))
    assert len(out) == len(envelopes)
    for sent, received in zip(envelopes, out):
        assert type(received) is type(sent)
        assert roundtrip_equal(sent, received)
    assert decoder.pending == 0
    assert decoder.frames_decoded == len(envelopes)
    assert decoder.bytes_fed == len(stream)


@settings(max_examples=40, deadline=None)
@given(
    index=st.integers(0, len(sample_envelopes()) - 1),
    drop=st.integers(1, 64),
)
def test_truncated_frame_is_held_not_misdecoded(index, drop):
    frame = encode_frame(sample_envelopes()[index])
    cut = max(0, len(frame) - drop)
    decoder = FrameDecoder()
    assert decoder.feed(frame[:cut]) == []
    assert decoder.pending == cut
    # The rest completes it.
    assert len(decoder.feed(frame[cut:])) == 1


def test_single_frame_decode_roundtrip():
    for envelope in sample_envelopes():
        frame = encode_frame(envelope)
        assert type(decode_frame(frame)) is type(envelope)


def test_decode_frame_rejects_trailing_garbage():
    frame = encode_frame(PeerHello("d0"))
    with pytest.raises(FrameError):
        decode_frame(frame + b"\x00")


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(PeerHello("d0")))
    frame[0] ^= 0xFF
    with pytest.raises(FrameError):
        FrameDecoder().feed(bytes(frame))


def test_bad_version_rejected():
    frame = bytearray(encode_frame(PeerHello("d0")))
    frame[1] += 1
    with pytest.raises(WireVersionError):
        FrameDecoder().feed(bytes(frame))


def test_unknown_flag_bits_rejected():
    frame = bytearray(encode_frame(PeerHello("d0")))
    frame[2] |= 0x80
    with pytest.raises(FrameError):
        FrameDecoder().feed(bytes(frame))


def test_checksum_mismatch_rejected():
    frame = bytearray(encode_frame(PeerHello("d0")))
    frame[-1] ^= 0x01  # flip a body byte; CRC no longer matches
    with pytest.raises(FrameError):
        FrameDecoder().feed(bytes(frame))


def test_kind_type_disagreement_rejected():
    # Rewrite the header's kind field (CRC covers the body only, so
    # the frame is otherwise valid) — decode must notice the envelope
    # type does not match the declared kind.
    frame = bytearray(encode_frame(PeerHello("d0")))
    wrong = kind_code(ClientConnect("x"))
    frame[3:5] = wrong.to_bytes(2, "big")
    with pytest.raises(FrameError):
        FrameDecoder().feed(bytes(frame))


def test_oversized_frame_rejected_at_encode_and_decode():
    big = b"x" * 4096
    with pytest.raises(FrameError):
        encode_frame(big, max_frame=1024)
    frame = encode_frame(big)  # fine under the default limit
    decoder = FrameDecoder(max_frame=1024)
    with pytest.raises(FrameError):
        # Rejected from the header alone: the body never needs to arrive.
        decoder.feed(frame[:HEADER_SIZE])


def test_kind_registry_is_stable():
    # Wire compatibility: these code assignments are part of the
    # protocol; changing them breaks mixed-version deployments.
    data = sample_envelopes()[0]
    assert kind_code(data) == 1
    assert kind_code(sample_envelopes()[1]) == 2
    assert kind_code(PeerHello("d")) == 16
    assert kind_code(ClientConnect("m")) == 32
    assert kind_code({"anything": "else"}) == 0
    assert kind_name(0) == "pyobj"
