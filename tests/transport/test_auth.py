"""Frame authentication and the restricted unpickler
(:mod:`repro.transport.auth`).

The edges an attacker actually probes: tampered bodies and headers,
truncated or forged tags, replayed version-1 frames, mismatched keys —
every one must die at the decoder with the right
:class:`~repro.errors.FrameError` subclass and the right reject
counter, before a single body byte reaches the unpickler.  And the
unpickler itself is restricted: every registered wire kind round-trips,
everything outside the allowlist raises.
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.errors import (
    FrameAuthError,
    FrameError,
    RestrictedUnpickleError,
    WireVersionError,
)
from repro.transport.auth import (
    AUTH_DISABLED,
    GENERATED_KEY_BYTES,
    KEYFILE_ENV,
    MIN_KEY_BYTES,
    TAG_SIZE,
    FrameAuth,
    generate_keyfile,
    load_keyfile,
    main as auth_main,
    resolve_auth,
    restricted_loads,
)
from repro.transport.wire import (
    FLAG_AUTH,
    HEADER,
    HEADER_SIZE,
    MAGIC,
    FrameDecoder,
    encode_frame,
)

KEY_A = FrameAuth(b"a" * 32)
KEY_B = FrameAuth(b"b" * 32)


def fresh_counters() -> dict:
    return {
        "stale_version_rejects": 0,
        "auth_bad_mac": 0,
        "auth_missing_tag": 0,
        "auth_unexpected_tag": 0,
        "restricted_unpickle_rejects": 0,
    }


# -- tag verification edges ---------------------------------------------------


def test_authenticated_round_trip():
    frame = encode_frame((1, b"payload"), auth=KEY_A)
    decoder = FrameDecoder(auth=KEY_A)
    assert decoder.feed(frame) == [(1, b"payload")]
    assert decoder.pending == 0


def test_tampered_body_is_rejected_with_bad_mac():
    frame = bytearray(encode_frame(b"payload", auth=KEY_A))
    frame[-1] ^= 0x01  # flip one body byte; CRC would also catch this,
    counters = fresh_counters()  # but the MAC must reject *first*
    decoder = FrameDecoder(auth=KEY_A, counters=counters)
    with pytest.raises(FrameAuthError):
        decoder.feed(bytes(frame))
    assert counters["auth_bad_mac"] == 1


def test_tampered_header_is_rejected_with_bad_mac():
    # The tag covers the header too: rewriting the kind code (which the
    # CRC does NOT cover) must still fail verification.
    frame = bytearray(encode_frame(b"payload", auth=KEY_A))
    frame[4] ^= 0x01  # low byte of the 2-byte kind field
    counters = fresh_counters()
    decoder = FrameDecoder(auth=KEY_A, counters=counters)
    with pytest.raises(FrameAuthError):
        decoder.feed(bytes(frame))
    assert counters["auth_bad_mac"] == 1


def test_forged_tag_is_rejected():
    frame = bytearray(encode_frame(b"payload", auth=KEY_A))
    frame[HEADER_SIZE] ^= 0xFF  # first tag byte
    decoder = FrameDecoder(auth=KEY_A)
    with pytest.raises(FrameAuthError):
        decoder.feed(bytes(frame))


def test_truncated_tag_stays_pending_then_fails_closed():
    # Dropping a tag byte shifts the stream: the decoder waits for the
    # declared total, and whatever completes it cannot verify.
    frame = encode_frame(b"payload", auth=KEY_A)
    decoder = FrameDecoder(auth=KEY_A)
    assert decoder.feed(frame[:-1]) == []  # incomplete: nothing emitted
    assert decoder.pending == len(frame) - 1
    with pytest.raises(FrameAuthError):
        decoder.feed(b"\x00")


def test_wrong_key_deployment_is_rejected():
    frame = encode_frame(b"payload", auth=KEY_A)
    counters = fresh_counters()
    decoder = FrameDecoder(auth=KEY_B, counters=counters)
    with pytest.raises(FrameAuthError):
        decoder.feed(frame)
    assert counters["auth_bad_mac"] == 1


def test_untagged_frame_at_authenticating_endpoint():
    frame = encode_frame(b"payload")  # no auth
    counters = fresh_counters()
    decoder = FrameDecoder(auth=KEY_A, counters=counters)
    with pytest.raises(FrameAuthError):
        decoder.feed(frame)
    assert counters["auth_missing_tag"] == 1


def test_tagged_frame_at_plain_endpoint():
    frame = encode_frame(b"payload", auth=KEY_A)
    counters = fresh_counters()
    decoder = FrameDecoder(counters=counters)
    with pytest.raises(FrameAuthError):
        decoder.feed(frame)
    assert counters["auth_unexpected_tag"] == 1


def test_replayed_version1_frame_is_rejected_before_parsing():
    # A wire-v1 frame: 12-byte >BBHII header, no flags byte, no tag.
    # Version is checked before any other field, so the v1 layout can
    # never be misparsed — even though its kind/length bytes land where
    # v2 expects flags/kind.
    body = pickle.dumps(b"replayed")
    v1 = struct.Struct(">BBHII").pack(MAGIC, 1, 1, len(body), 0) + body
    counters = fresh_counters()
    decoder = FrameDecoder(auth=KEY_A, counters=counters)
    with pytest.raises(WireVersionError):
        decoder.feed(v1)
    assert counters["stale_version_rejects"] == 1


def test_tag_is_exactly_hmac_sha256_of_header_and_body():
    import hashlib
    import hmac as stdlib_hmac

    frame = encode_frame(b"payload", auth=KEY_A)
    header = frame[:HEADER_SIZE]
    tag = frame[HEADER_SIZE : HEADER_SIZE + TAG_SIZE]
    body = frame[HEADER_SIZE + TAG_SIZE :]
    assert header[2] & FLAG_AUTH
    expected = stdlib_hmac.new(b"a" * 32, header + body, hashlib.sha256)
    assert tag == expected.digest()


# -- key files and resolution -------------------------------------------------


def test_generate_and_load_keyfile(tmp_path):
    path = tmp_path / "deploy.key"
    generate_keyfile(path)
    assert path.stat().st_mode & 0o777 == 0o600
    key = load_keyfile(path)
    assert len(key) == GENERATED_KEY_BYTES
    # Same file, same key; two files, different keys.
    assert load_keyfile(path) == key
    other = tmp_path / "other.key"
    generate_keyfile(other)
    assert load_keyfile(other) != key


def test_generate_refuses_overwrite_without_force(tmp_path):
    path = tmp_path / "deploy.key"
    generate_keyfile(path)
    key = load_keyfile(path)
    with pytest.raises(FrameAuthError):
        generate_keyfile(path)
    generate_keyfile(path, force=True)
    assert load_keyfile(path) != key


def test_keyfile_is_whitespace_tolerant_hex(tmp_path):
    path = tmp_path / "deploy.key"
    path.write_text("  " + ("ab" * MIN_KEY_BYTES) + "\n\n")
    assert load_keyfile(path) == b"\xab" * MIN_KEY_BYTES


@pytest.mark.parametrize(
    "content", ["", "zz" * 16, "ab" * (MIN_KEY_BYTES - 1), "abc"]
)
def test_bad_keyfiles_are_refused(tmp_path, content):
    path = tmp_path / "deploy.key"
    path.write_text(content)
    with pytest.raises(FrameAuthError):
        load_keyfile(path)


def test_missing_keyfile_is_refused(tmp_path):
    with pytest.raises(FrameAuthError):
        load_keyfile(tmp_path / "nope.key")


def test_resolve_auth(tmp_path, monkeypatch):
    path = tmp_path / "deploy.key"
    generate_keyfile(path)
    monkeypatch.delenv(KEYFILE_ENV, raising=False)
    assert resolve_auth(None) is None
    assert resolve_auth(AUTH_DISABLED) is None
    assert isinstance(resolve_auth(str(path)), FrameAuth)
    assert isinstance(resolve_auth(path), FrameAuth)
    monkeypatch.setenv(KEYFILE_ENV, str(path))
    env_auth = resolve_auth(None)
    assert isinstance(env_auth, FrameAuth)
    # Explicit opt-out beats the environment.
    assert resolve_auth(AUTH_DISABLED) is None
    # Pass-through of an already-resolved FrameAuth.
    assert resolve_auth(env_auth) is env_auth


def test_key_ids_fingerprint_the_key(tmp_path):
    assert KEY_A.key_id != KEY_B.key_id
    assert FrameAuth(b"a" * 32).key_id == KEY_A.key_id


def test_auth_cli_generate_and_fingerprint(tmp_path, capsys):
    path = tmp_path / "cli.key"
    assert auth_main(["generate", str(path)]) == 0
    assert auth_main(["fingerprint", str(path)]) == 0
    out = capsys.readouterr().out
    assert FrameAuth(load_keyfile(path)).key_id in out
    assert auth_main(["generate", str(path)]) != 0  # no --force


# -- the restricted unpickler -------------------------------------------------


def _sample_wire_payloads():
    """One instance of every registered wire kind (and the common
    nested payloads), built the way the live stack builds them."""
    from repro.spread.fragments import MessageFragment
    from repro.spread.messages import (
        DataMessage,
        GatherAnnounce,
        Hello,
        Install,
        Nack,
        Packed,
        Propose,
        SyncInfo,
    )
    from repro.spread.ring import RingToken
    from repro.transport.protocol import (
        ClientBye,
        ClientConnect,
        ClientDeliver,
        ClientDisconnect,
        ClientJoin,
        ClientLeave,
        ClientMulticast,
        ClientRefused,
        ClientWelcome,
        PeerHello,
    )
    from repro.types import ProcessId, ServiceType, ViewId

    view = ViewId(epoch=1, counter=2, coordinator="d0")
    pid = ProcessId.parse("#m0#d0")
    data = DataMessage(
        sender_daemon="d0",
        view_id=view,
        seq=7,
        lamport=9,
        service=ServiceType.AGREED,
        kind="data",
        group="g",
        origin=pid,
        origin_seq=3,
        payload=b"\x00\x01",
        causal_vector=(("d0", 1),),
    )
    return [
        data,
        Packed(sender="d0", view_id=view, messages=(data,)),
        Hello(
            sender="d0", view_id=view, lamport=1, all_received=0,
            incarnation=1, sent_seq=4,
        ),
        Nack(sender="d0", view_id=view, target="d1", missing=(1, 2)),
        GatherAnnounce(
            sender="d0", round_id=1, alive=frozenset({"d0"}),
            view_id=view, incarnation=1,
        ),
        Propose(
            coordinator="d0", round_id=1, new_view=view, members=("d0",),
        ),
        SyncInfo(
            sender="d0", round_id=1, new_view=view, old_view=view,
            undelivered=(data,), delivered_ts=1,
            delivered_fifo={"d0": 1}, groups={"g": ("#m0#d0",)}, lamport=2,
        ),
        Install(
            coordinator="d0", round_id=1, new_view=view, members=("d0",),
            complements={view: (data,)}, synced={view: ("d0",)},
            groups={"g": ("#m0#d0",)}, start_lamport=2,
        ),
        RingToken(view_id=view, round=1, seq=2, aru={"d0": 1}, rtr=(3,)),
        MessageFragment(fragment_id=1, index=0, total=2, chunk=b"frag"),
        PeerHello(sender="d0"),
        ClientConnect(private_name="m0"),
        ClientWelcome(pid=pid, max_message_size=1 << 20, daemons=("d0",)),
        ClientRefused(reason="dup"),
        ClientJoin(pid=pid, group="g"),
        ClientLeave(pid=pid, group="g"),
        ClientMulticast(
            pid=pid, service=ServiceType.AGREED, group="g",
            payload=b"body", origin_seq=1,
        ),
        ClientDisconnect(private_name="m0"),
        ClientDeliver(event=data),
        ClientBye(),
    ]


def test_every_registered_wire_kind_survives_restricted_loads():
    from repro.transport.wire import _tables

    samples = _sample_wire_payloads()
    codes, __ = _tables()
    covered = {type(s) for s in samples}
    assert covered >= set(codes), (
        "sample list out of date; missing: "
        f"{set(codes) - covered}"
    )
    for sample in samples:
        blob = pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL)
        assert restricted_loads(blob) == sample


def test_registered_kinds_round_trip_through_authenticated_frames():
    for sample in _sample_wire_payloads():
        frame = encode_frame(sample, auth=KEY_A)
        assert FrameDecoder(auth=KEY_A).feed(frame) == [sample]


def test_restricted_loads_accepts_safe_builtins():
    for value in ({1, 2}, frozenset({3}), bytearray(b"x"), 1 + 2j):
        assert restricted_loads(pickle.dumps(value)) == value


def test_restricted_loads_rejects_arbitrary_callables():
    import os

    class Evil:
        def __reduce__(self):
            return (os.system, ("true",))

    blob = pickle.dumps(Evil())
    with pytest.raises(RestrictedUnpickleError):
        restricted_loads(blob)


def test_restricted_loads_rejects_unlisted_project_classes():
    # A perfectly honest repro class that is not wire-registered must
    # still be refused: the allowlist is modules that cross the wire,
    # not "anything in the package".
    from repro.spread.config import SpreadConfig

    blob = pickle.dumps(SpreadConfig(daemons=("d0",)))
    with pytest.raises(RestrictedUnpickleError):
        restricted_loads(blob)


def test_decoder_counts_restricted_unpickle_rejects():
    import os

    class Evil:
        def __reduce__(self):
            return (os.getcwd, ())

    counters = fresh_counters()
    decoder = FrameDecoder(auth=KEY_A, counters=counters)
    with pytest.raises(RestrictedUnpickleError):
        decoder.feed(encode_frame(Evil(), auth=KEY_A))
    assert counters["restricted_unpickle_rejects"] == 1


@pytest.mark.parametrize("name", ["os.path", "builtins.eval", "builtins.exec"])
def test_restricted_loads_rejects_dangerous_globals(name):
    module, attr = name.rsplit(".", 1)
    blob = (
        b"\x80\x04\x95"
        + (len(module) + len(attr) + 10).to_bytes(8, "little")
        + b"\x8c" + bytes([len(module)]) + module.encode()
        + b"\x8c" + bytes([len(attr)]) + attr.encode()
        + b"\x93."
    )
    with pytest.raises((RestrictedUnpickleError, pickle.UnpicklingError)):
        restricted_loads(blob)


# -- hypothesis: arbitrary field values survive the full path -----------------

try:
    from hypothesis import given, settings, strategies as st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    _HAVE_HYPOTHESIS = False

if _HAVE_HYPOTHESIS:

    @given(
        group=st.text(min_size=1, max_size=16),
        payload=st.binary(max_size=512),
        seq=st.integers(min_value=0, max_value=2**31 - 1),
        service_agreed=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_fuzzed_wire_kinds_round_trip_restricted(
        group, payload, seq, service_agreed
    ):
        """Property: for every registered wire kind carrying fuzzed
        field values, encode → authenticate → decode → restricted
        unpickle is the identity."""
        from repro.spread.messages import DataMessage
        from repro.transport.protocol import ClientMulticast
        from repro.types import ProcessId, ServiceType, ViewId

        service = (
            ServiceType.AGREED if service_agreed else ServiceType.FIFO
        )
        pid = ProcessId.parse("#m0#d0")
        view = ViewId(epoch=1, counter=seq, coordinator="d0")
        for sample in (
            DataMessage(
                sender_daemon="d0", view_id=view, seq=seq, lamport=seq,
                service=service, kind="data", group=group, origin=pid,
                origin_seq=seq, payload=payload, causal_vector=None,
            ),
            ClientMulticast(
                pid=pid, service=service, group=group,
                payload=payload, origin_seq=seq,
            ),
        ):
            frame = encode_frame(sample, auth=KEY_A)
            assert FrameDecoder(auth=KEY_A).feed(frame) == [sample]
