"""Shared helpers for the real-socket transport tests.

Everything here is hermetic against port collisions: hosts and netem
proxies bind port 0 and publish the ephemeral port the kernel handed
back, so suites can run in parallel on one machine.  On platforms
without loopback sockets :func:`run` skips rather than fails — the
same escape hatch the CI ``transport-smoke`` job uses.
"""

import asyncio

import pytest

from repro.spread.config import SpreadConfig
from repro.transport.host import DaemonHost, wait_for_condition

__all__ = ["loopback_config", "run", "start_host", "join_all"]


def loopback_config(names=("d0", "d1", "d2")):
    """Real-time daemon timers sized for loopback test runs."""
    return SpreadConfig(
        daemons=names,
        hello_interval=0.25,
        fail_timeout=1.5,
        gather_timeout=3.0,
        sync_timeout=6.0,
    )


def run(coro, timeout=60.0):
    """asyncio.run with a hard bound and the no-sockets skip."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout)

    try:
        return asyncio.run(bounded())
    except OSError as exc:  # pragma: no cover - sandboxed platforms
        pytest.skip(f"loopback sockets unavailable: {exc}")


async def start_host(names=("d0", "d1", "d2")):
    """One DaemonHost on ephemeral ports, settled into one view."""
    host = DaemonHost(loopback_config(names), names)
    await host.start()
    await host.settle()
    return host


async def join_all(clients, group):
    """Join every client to ``group`` and wait for the common view."""
    for client in clients:
        client.join(group)
    expected = {str(c.pid) for c in clients}

    def settled():
        for client in clients:
            views = [
                e for e in client.queue
                if getattr(e, "is_membership", False)
                and str(getattr(e, "group", "")) == group
            ]
            if not views or {str(m) for m in views[-1].members} != expected:
                return False
        return True

    await wait_for_condition(settled, timeout=30.0)
