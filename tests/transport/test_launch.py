"""The deployment launcher (:mod:`repro.transport.launch`).

These tests spawn real ``python -m repro.transport.daemon`` processes
on loopback — the cheapest honest exercise of the multi-host deployment
path: config file → subprocesses → listeners up → clean teardown, plus
the fail-fast paths (dead child, impossible config).
"""

from __future__ import annotations

import os
import socket

import pytest

from repro.errors import DeployError
from repro.transport.auth import KEYFILE_ENV, generate_keyfile
from repro.transport.deploy import load_deployment
from repro.transport.launch import LaunchedDeployment, _child_env


def free_ports(count: int):
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def write_config(tmp_path, daemons: int, keyfile=None) -> str:
    ports = free_ports(2 * daemons)
    lines = ["[deployment]", 'bind = "127.0.0.1"']
    if keyfile is not None:
        lines.insert(1, f'keyfile = "{keyfile}"')
    for index in range(daemons):
        lines += [
            "[[daemon]]",
            f'name = "d{index}"',
            'host = "127.0.0.1"',
            f"peer_port = {ports[2 * index]}",
            f"client_port = {ports[2 * index + 1]}",
        ]
    config = tmp_path / "deploy.toml"
    config.write_text("\n".join(lines) + "\n")
    return config


def test_launch_two_daemons_ready_and_stop(tmp_path):
    deployment = load_deployment(write_config(tmp_path, 2))
    with LaunchedDeployment(
        deployment, log_dir=tmp_path / "logs"
    ) as launched:
        launched.wait_ready(timeout=30.0)
        assert sorted(launched.hosted_daemons()) == ["d0", "d1"]
        assert all(code is None for code in launched.poll().values())
        # Listeners really accept.
        for spec in deployment.daemons:
            with socket.create_connection(spec.client_address, timeout=2.0):
                pass
    # Context exit stopped every child.
    codes = launched.poll()
    assert all(code is not None for code in codes.values())
    assert (tmp_path / "logs" / "d0.log").exists()


def test_launch_subset_of_machines(tmp_path):
    deployment = load_deployment(write_config(tmp_path, 2))
    with LaunchedDeployment(deployment, machines=["d1"]) as launched:
        launched.wait_ready(timeout=30.0)
        assert launched.hosted_daemons() == ["d1"]
        # d0 was not launched: nothing listens there.
        with pytest.raises(OSError):
            socket.create_connection(
                deployment.spec("d0").client_address, timeout=0.5
            )


def test_unknown_machine_is_refused(tmp_path):
    deployment = load_deployment(write_config(tmp_path, 1))
    with pytest.raises(DeployError, match="unknown machine"):
        LaunchedDeployment(deployment, machines=["nope"])


def test_dead_child_fails_wait_ready_fast(tmp_path):
    # A keyfile that does not exist makes the daemon exit at startup;
    # wait_ready must surface that immediately, not burn the timeout.
    config = write_config(tmp_path, 1, keyfile="missing.key")
    deployment = load_deployment(config)
    launched = LaunchedDeployment(deployment)
    launched.start()
    try:
        with pytest.raises(DeployError, match="exited with code"):
            launched.wait_ready(timeout=20.0)
    finally:
        launched.stop()


def test_double_start_is_refused(tmp_path):
    deployment = load_deployment(write_config(tmp_path, 1))
    with LaunchedDeployment(deployment) as launched:
        with pytest.raises(DeployError, match="already started"):
            launched.start()


def test_child_env_prepends_src_and_drops_ambient_keyfile(monkeypatch):
    monkeypatch.setenv(KEYFILE_ENV, "/some/ambient.key")
    monkeypatch.setenv("PYTHONPATH", "/existing")
    env = _child_env()
    # Children import the same code we run, ambient auth never leaks:
    # the deployment file alone decides whether daemons authenticate.
    head, rest = env["PYTHONPATH"].split(os.pathsep, 1)
    assert os.path.isdir(os.path.join(head, "repro"))
    assert rest == "/existing"
    assert KEYFILE_ENV not in env


def test_authenticated_deployment_end_to_end(tmp_path):
    """Key file in config → daemons speak MAC'd frames → a keyed client
    round-trips and a keyless probe is cut off."""
    import asyncio

    from repro.transport.client import TcpSpreadClient
    from repro.transport.rtclock import RealtimeClock
    from repro.errors import ReproError
    from repro.transport.auth import AUTH_DISABLED

    keyfile = tmp_path / "deploy.key"
    generate_keyfile(keyfile)
    deployment = load_deployment(write_config(tmp_path, 1, keyfile=keyfile))
    with LaunchedDeployment(
        deployment, log_dir=tmp_path / "logs"
    ) as launched:
        launched.wait_ready(timeout=30.0)
        spec = deployment.daemons[0]

        async def keyed_round_trip():
            clock = RealtimeClock(asyncio.get_running_loop())
            client = TcpSpreadClient(
                spec.client_address, "ok", clock=clock, auth=str(keyfile)
            )
            pid = await client.connect()
            await client.close()
            return str(pid)

        assert asyncio.run(keyed_round_trip()) == "#ok#d0"

        async def keyless_probe():
            clock = RealtimeClock(asyncio.get_running_loop())
            client = TcpSpreadClient(
                spec.client_address, "bad", clock=clock,
                auth=AUTH_DISABLED, reconnect=False,
            )
            try:
                await asyncio.wait_for(client.connect(timeout=3.0), 6.0)
            except (ReproError, OSError, asyncio.TimeoutError):
                return True
            finally:
                await client.close()
            return False

        assert asyncio.run(keyless_probe())
