"""Lint: no bare ``pickle.loads`` outside the restricted choke point.

The unauthenticated-pickle hole was closed by routing every wire (and
wire-adjacent) deserialization through
:func:`repro.transport.auth.restricted_loads`.  This grep gate keeps it
closed: a new ``pickle.loads(...)`` call site anywhere in the library
fails CI with a pointer to the offender instead of silently reopening
arbitrary-object deserialization.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The single module allowed to call the raw unpickler machinery: the
#: restricted-unpickler implementation itself.
CHOKE_POINT = Path("transport") / "auth.py"

_BARE_LOADS = re.compile(r"\bpickle\.loads\s*\(")
_BARE_UNPICKLER = re.compile(r"\bpickle\.Unpickler\b")


def _offenders(pattern: re.Pattern) -> list:
    found = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative == CHOKE_POINT:
            continue
        text = path.read_text(encoding="utf-8")
        for match in pattern.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            found.append(f"{relative}:{line}")
    return found


def test_no_bare_pickle_loads_outside_the_choke_point():
    offenders = _offenders(_BARE_LOADS)
    assert not offenders, (
        "bare pickle.loads outside repro.transport.auth — route through"
        " restricted_loads instead:\n" + "\n".join(offenders)
    )


def test_no_unpickler_subclasses_outside_the_choke_point():
    offenders = _offenders(_BARE_UNPICKLER)
    assert not offenders, (
        "pickle.Unpickler used outside repro.transport.auth:\n"
        + "\n".join(offenders)
    )


def test_the_choke_point_still_exists():
    text = (SRC_ROOT / CHOKE_POINT).read_text(encoding="utf-8")
    assert "class _RestrictedUnpickler" in text
    assert "def restricted_loads" in text
