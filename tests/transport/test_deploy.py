"""Deployment config parsing (:mod:`repro.transport.deploy`).

A deployment file is shared state across machines, so parsing is
all-or-nothing: every malformed field must raise a
:class:`~repro.errors.DeployError` naming the offender, and a parsed
:class:`Deployment` must regenerate the exact daemon CLI the launcher
spawns.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import DeployError
from repro.transport.deploy import (
    DaemonSpec,
    Deployment,
    load_deployment,
    parse_deployment,
)

GOOD_TOML = """
[deployment]
keyfile = "deploy.key"
bind = "127.0.0.1"
hello_interval = 0.5
fail_timeout = 2.0
packing = true
seed = 7

[[daemon]]
name = "d0"
host = "10.0.0.1"
peer_port = 4803
client_port = 4813

[[daemon]]
name = "d1"
host = "10.0.0.2"
peer_port = 4803
client_port = 4813
machine = "box-b"
"""


def good_document() -> dict:
    return {
        "deployment": {"bind": "127.0.0.1"},
        "daemon": [
            {
                "name": "d0",
                "host": "127.0.0.1",
                "peer_port": 4803,
                "client_port": 4813,
            },
        ],
    }


def test_toml_round_trip(tmp_path):
    config = tmp_path / "deploy.toml"
    config.write_text(GOOD_TOML)
    deployment = load_deployment(config)
    assert [d.name for d in deployment.daemons] == ["d0", "d1"]
    assert deployment.spec("d1").peer_address == ("10.0.0.2", 4803)
    assert deployment.bind == "127.0.0.1"
    assert deployment.hello_interval == 0.5
    assert deployment.fail_timeout == 2.0
    assert deployment.packing is True
    assert deployment.seed == 7
    # Relative keyfile is anchored at the config's directory.
    assert deployment.keyfile == str(tmp_path / "deploy.key")
    # Default machine is the daemon name; explicit machine groups.
    assert deployment.machines() == {"d0": ["d0"], "box-b": ["d1"]}


def test_json_is_accepted_by_suffix(tmp_path):
    config = tmp_path / "deploy.json"
    config.write_text(json.dumps(good_document()))
    deployment = load_deployment(config)
    assert deployment.spec("d0").client_address == ("127.0.0.1", 4813)
    assert deployment.keyfile is None


def test_daemon_argv_regenerates_the_daemon_cli(tmp_path):
    config = tmp_path / "deploy.toml"
    config.write_text(GOOD_TOML)
    deployment = load_deployment(config)
    argv = deployment.daemon_argv("box-b")
    # Full peer map (every machine needs every address), own hosts only.
    assert argv.count("--peer") == 2
    assert "d0=10.0.0.1:4803:4813" in argv
    assert "d1=10.0.0.2:4803:4813" in argv
    assert argv[argv.index("--host") + 1] == "d1"
    assert argv.count("--host") == 1
    assert "--packing" in argv
    assert argv[argv.index("--keyfile") + 1] == str(tmp_path / "deploy.key")
    with pytest.raises(DeployError):
        deployment.daemon_argv("no-such-machine")


def test_spread_config_derives_timeouts():
    deployment = parse_deployment(good_document())
    config = deployment.spread_config()
    assert config.daemons == ("d0",)
    assert config.gather_timeout == deployment.fail_timeout * 2
    assert config.sync_timeout == deployment.fail_timeout * 4


def test_transport_map_covers_every_daemon():
    document = good_document()
    document["daemon"].append(
        {"name": "d1", "host": "127.0.0.1", "peer_port": 4804,
         "client_port": 4814}
    )
    table = parse_deployment(document).transport_map()
    assert table.peer("d1") == ("127.0.0.1", 4804)
    assert table.client("d0") == ("127.0.0.1", 4813)


@pytest.mark.parametrize(
    "mutate, match",
    [
        (lambda d: d.pop("daemon"), "at least one"),
        (lambda d: d["daemon"][0].pop("name"), "missing required field"),
        (lambda d: d["daemon"][0].update(name=""), "empty daemon name"),
        (lambda d: d["daemon"][0].update(peer_port="4803"), "must be int"),
        (lambda d: d["daemon"][0].update(peer_port=0), "outside 1-65535"),
        (lambda d: d["daemon"][0].update(peer_port=65536), "outside 1-65535"),
        (lambda d: d["daemon"][0].update(peer_port=True), "must be int"),
        (lambda d: d["daemon"][0].update(bogus=1), "unknown field"),
        (lambda d: d["deployment"].update(bogus=1), "unknown field"),
        (lambda d: d["deployment"].update(keyfile=""), "keyfile"),
        (lambda d: d["deployment"].update(bind=""), "bind"),
        (lambda d: d["deployment"].update(hello_interval=0), "> 0"),
        (lambda d: d["deployment"].update(fail_timeout="x"), "number"),
        (lambda d: d["deployment"].update(packing=1), "boolean"),
        (lambda d: d["deployment"].update(seed=True), "integer"),
        (lambda d: d["daemon"][0].update(machine=""), "machine"),
    ],
)
def test_malformed_documents_are_refused(mutate, match):
    document = good_document()
    mutate(document)
    with pytest.raises(DeployError, match=match):
        parse_deployment(document)


def test_duplicate_daemon_names_are_refused():
    document = good_document()
    document["daemon"].append(dict(document["daemon"][0], peer_port=5000,
                                   client_port=5001))
    with pytest.raises(DeployError, match="duplicate daemon name"):
        parse_deployment(document)


def test_colliding_endpoints_are_refused():
    document = good_document()
    document["daemon"].append(
        dict(document["daemon"][0], name="d1", client_port=4803)
    )
    with pytest.raises(DeployError, match="already in use"):
        parse_deployment(document)
    # Same ports on *different hosts* is fine (the common WAN layout).
    document["daemon"][1].update(host="10.0.0.2", client_port=4813)
    parse_deployment(document)


def test_unreadable_and_invalid_files(tmp_path):
    with pytest.raises(DeployError, match="cannot read"):
        load_deployment(tmp_path / "missing.toml")
    bad_toml = tmp_path / "bad.toml"
    bad_toml.write_text("[deployment\n")
    with pytest.raises(DeployError, match="not valid TOML"):
        load_deployment(bad_toml)
    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{")
    with pytest.raises(DeployError, match="not valid JSON"):
        load_deployment(bad_json)


def test_example_config_parses():
    from pathlib import Path

    example = (
        Path(__file__).resolve().parents[2]
        / "examples" / "deploy_loopback.toml"
    )
    deployment = load_deployment(example)
    assert len(deployment.daemons) == 3
    assert deployment.keyfile.endswith("deploy.key")
    assert len(deployment.machines()) == 3


def test_spec_lookup_failure():
    deployment = Deployment(
        daemons=(
            DaemonSpec(
                name="d0", host="h", peer_port=1, client_port=2,
                machine="d0",
            ),
        )
    )
    with pytest.raises(DeployError):
        deployment.spec("nope")
