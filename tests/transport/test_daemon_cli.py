"""The daemon CLI's ``--peer`` validation (:mod:`repro.transport.daemon`).

A malformed peer spec used to surface as a traceback (or worse, a
half-parsed address map); now every malformed entry is an argparse
usage error that names the offending spec.
"""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.transport.daemon import build_parser, make_config, parse_addresses
from repro.transport.tcp import TransportMap

GOOD = ["d0=127.0.0.1:4803:4813", "d1=127.0.0.1:4804:4814"]


def parse_cli(peers, hosts=()):
    parser = build_parser()
    argv = []
    for peer in peers:
        argv += ["--peer", peer]
    for host in hosts:
        argv += ["--host", host]
    args = parser.parse_args(argv)
    return parse_addresses(parser, args)


def test_good_specs_parse():
    addresses = parse_cli(GOOD)
    assert addresses.peer("d0") == ("127.0.0.1", 4803)
    assert addresses.client("d1") == ("127.0.0.1", 4814)


@pytest.mark.parametrize(
    "bad",
    [
        "d0",                          # missing '='
        "=127.0.0.1:4803:4813",        # empty name
        "d0=127.0.0.1",                # missing ports
        "d0=127.0.0.1:4803",           # missing client port
        "d0=127.0.0.1:x:4813",         # non-integer peer port
        "d0=127.0.0.1:4803:y",         # non-integer client port
    ],
)
def test_malformed_peer_specs_are_usage_errors(bad, capsys):
    with pytest.raises(SystemExit) as excinfo:
        parse_cli([GOOD[0], bad])
    assert excinfo.value.code == 2  # argparse usage error, not a traceback
    assert bad.split("=", 1)[0] in capsys.readouterr().err


def test_duplicate_daemon_names_are_usage_errors(capsys):
    with pytest.raises(SystemExit):
        parse_cli(["d0=127.0.0.1:4803:4813", "d0=127.0.0.1:4804:4814"])
    assert "duplicate" in capsys.readouterr().err


def test_unknown_host_selection_is_a_usage_error(capsys):
    with pytest.raises(SystemExit):
        parse_cli(GOOD, hosts=["d9"])
    assert "no matching --peer" in capsys.readouterr().err


def test_transport_map_parse_errors_name_the_spec():
    with pytest.raises(TransportError, match="missing '='"):
        TransportMap.parse(["d0:127.0.0.1:4803:4813"])
    with pytest.raises(TransportError, match="port"):
        TransportMap.parse(["d0=127.0.0.1:bad:4813"])


def test_make_config_lists_every_peer():
    parser = build_parser()
    args = parser.parse_args(
        ["--peer", GOOD[0], "--peer", GOOD[1], "--fail-timeout", "2.0"]
    )
    config = make_config(args)
    assert config.daemons == ("d0", "d1")
    assert config.gather_timeout == 4.0
