"""RealtimeClock: the Kernel scheduling surface on an asyncio loop."""

import asyncio

import pytest

from repro.errors import ClockError
from repro.transport.rtclock import RealtimeClock


def run(coro):
    return asyncio.run(coro)


def test_now_starts_at_zero_and_advances():
    async def main():
        clock = RealtimeClock()
        first = clock.now
        assert first >= 0.0
        await asyncio.sleep(0.02)
        assert clock.now > first

    run(main())


def test_call_later_fires_and_counts():
    async def main():
        clock = RealtimeClock()
        fired = []
        clock.call_later(0.01, lambda: fired.append(clock.now))
        assert clock.events_scheduled == 1
        assert clock.pending_events == 1
        await asyncio.sleep(0.05)
        assert len(fired) == 1
        assert fired[0] >= 0.01
        assert clock.events_processed == 1
        assert clock.pending_events == 0

    run(main())


def test_cancel_prevents_firing():
    async def main():
        clock = RealtimeClock()
        fired = []
        handle = clock.call_later(0.01, lambda: fired.append(1), label="x")
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        handle.cancel()  # idempotent
        await asyncio.sleep(0.03)
        assert fired == []
        assert clock.events_cancelled == 1
        assert clock.pending_events == 0

    run(main())


def test_negative_delay_rejected():
    async def main():
        clock = RealtimeClock()
        with pytest.raises(ClockError):
            clock.call_later(-0.1, lambda: None)

    run(main())


def test_call_at_in_the_past_fires_immediately():
    # Documented divergence from the sim kernel (which raises): wall
    # clocks cannot rewind, so a past deadline fires as soon as possible.
    async def main():
        clock = RealtimeClock()
        await asyncio.sleep(0.01)
        fired = []
        clock.call_at(0.0, lambda: fired.append(1))
        await asyncio.sleep(0.02)
        assert fired == [1]

    run(main())


def test_scheduler_tag_and_tracer_default():
    async def main():
        clock = RealtimeClock()
        assert clock.scheduler == "realtime"
        assert not clock.tracer.enabled
        assert clock.rng is not None

    run(main())
