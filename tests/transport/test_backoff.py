"""Decorrelated-jitter reconnect backoff: bounds and spread.

A reconnect storm after a daemon restart must not arrive in lockstep;
``decorrelated_jitter`` (AWS-style: ``min(cap, uniform(base, prev*3))``)
keeps every delay inside [base, cap] while decorrelating clients from
each other and from their own previous delay.
"""

from repro.sim.rng import DeterministicRng
from repro.transport.tcp import BACKOFF_BASE, BACKOFF_CAP, decorrelated_jitter


def walk(rng, steps, base=BACKOFF_BASE, cap=BACKOFF_CAP):
    delays = []
    previous = base
    for __ in range(steps):
        previous = decorrelated_jitter(rng, previous, base, cap)
        delays.append(previous)
    return delays


def test_delays_stay_inside_base_and_cap():
    rng = DeterministicRng(7, label="backoff")
    for delay in walk(rng, 500):
        assert BACKOFF_BASE <= delay <= BACKOFF_CAP


def test_first_step_bounded_by_three_times_base():
    rng = DeterministicRng(11, label="backoff")
    for __ in range(100):
        first = decorrelated_jitter(rng, BACKOFF_BASE)
        assert BACKOFF_BASE <= first <= 3.0 * BACKOFF_BASE


def test_zero_previous_never_collapses_below_base():
    rng = DeterministicRng(13, label="backoff")
    assert decorrelated_jitter(rng, 0.0) >= BACKOFF_BASE


def test_streams_with_different_seeds_decorrelate():
    a = walk(DeterministicRng(1, label="backoff"), 50)
    b = walk(DeterministicRng(2, label="backoff"), 50)
    assert a != b
    # Not a constant schedule either: a decorrelated walk must vary.
    assert len(set(round(d, 9) for d in a)) > 10


def test_same_seed_replays_the_same_walk():
    a = walk(DeterministicRng(3, label="backoff"), 50)
    b = walk(DeterministicRng(3, label="backoff"), 50)
    assert a == b


def test_cap_clamps_growth():
    rng = DeterministicRng(5, label="backoff")
    # From a previous delay at the cap, growth cannot exceed the cap.
    for __ in range(100):
        assert decorrelated_jitter(rng, BACKOFF_CAP) <= BACKOFF_CAP
