"""Loopback end-to-end: real daemons, real sockets, unmodified stack.

These tests bind TCP listeners on 127.0.0.1; on a platform without
loopback sockets they skip rather than fail (the same escape hatch the
CI ``transport-smoke`` job uses).
"""

import asyncio

import pytest

from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.random_source import DeterministicSource
from repro.cliques.directory import KeyDirectory
from repro.secure.events import SecureDataEvent
from repro.secure.session import SecureClient
from repro.sim.rng import stable_seed
from repro.spread.events import DataEvent
from repro.spread.flush import FlushClient
from repro.transport.client import TcpSpreadClient
from repro.transport.host import wait_for_condition
from repro.types import ServiceType

from tests.transport.conftest import join_all, run, start_host


def test_multicast_crosses_real_sockets():
    async def main():
        host = await start_host()
        try:
            a = TcpSpreadClient(host.addresses.client("d0"), "a", clock=host.clock)
            b = TcpSpreadClient(host.addresses.client("d2"), "b", clock=host.clock)
            await a.connect()
            await b.connect()
            assert a.daemon_name == "d0" and b.daemon_name == "d2"
            await join_all([a, b], "g")
            a.multicast(ServiceType.AGREED, "g", b"hello-tcp")
            await a.flush_writes()

            def got():
                return any(
                    isinstance(e, DataEvent) and e.payload == b"hello-tcp"
                    for e in b.queue
                )

            await wait_for_condition(got, timeout=30.0)
            delivered = [e for e in b.drain() if isinstance(e, DataEvent)]
            assert delivered[0].payload == b"hello-tcp"
            assert str(delivered[0].sender) == str(a.pid)
            await a.close()
            await b.close()
        finally:
            await host.stop()

    run(main())


def test_duplicate_private_name_refused():
    async def main():
        host = await start_host(("d0",))
        try:
            first = TcpSpreadClient(
                host.addresses.client("d0"), "dup", clock=host.clock
            )
            await first.connect()
            second = TcpSpreadClient(
                host.addresses.client("d0"), "dup",
                clock=host.clock, reconnect=False,
            )
            from repro.errors import ConnectionClosedError

            with pytest.raises(ConnectionClosedError):
                await second.connect()
            await first.close()
        finally:
            await host.stop()

    run(main())


def test_secure_session_runs_unmodified_over_tcp():
    """The acceptance bar: the identical SecureGroupSession code path
    (join, re-key, sealed multicast) over the TCP backend."""

    async def main():
        host = await start_host()
        try:
            params = DHParams.tiny_test()
            directory = KeyDirectory()
            members = {}
            clients = {}
            for index, name in enumerate(["m0", "m1", "m2"]):
                address = host.addresses.client(f"d{index}")
                client = TcpSpreadClient(address, name, clock=host.clock)
                await client.connect()
                source = DeterministicSource(stable_seed(42, name))
                member = SecureClient(
                    flush=FlushClient(client, auto_flush=False),
                    params=params,
                    long_term=DHKeyPair.generate(params, source),
                    directory=directory,
                    random_source=source,
                )
                member.publish_key()
                member.join("g", module="cliques")
                members[name] = member
                clients[name] = client
                joined = list(members)
                await wait_for_condition(
                    lambda: all(members[n].has_key("g") for n in joined),
                    timeout=60.0,
                )
            members["m0"].send("g", b"sealed-over-tcp")

            def sealed_everywhere():
                return all(
                    any(
                        isinstance(e, SecureDataEvent)
                        and e.payload == b"sealed-over-tcp"
                        for e in members[n].queue
                    )
                    for n in ("m1", "m2")
                )

            await wait_for_condition(sealed_everywhere, timeout=30.0)
            for client in clients.values():
                await client.close()
        finally:
            await host.stop()

    run(main(), timeout=120.0)
