"""Reconnect semantics: kill the daemon-side socket mid-session.

The contract (docs/TRANSPORT.md): per outage the application observes
exactly one ``ConnectionLostEvent`` (and one ``handle_dropped``), the
client retries with exponential backoff, reconnects under the same
private name, re-joins its groups, and the listener then sees a normal
membership resync — never an event replay.
"""

import asyncio

from repro.spread.events import DataEvent
from repro.transport.client import (
    ConnectionLostEvent,
    ConnectionRestoredEvent,
    SpreadListener,
    TcpSpreadClient,
)
from repro.transport.host import DaemonHost, wait_for_condition
from repro.types import ServiceType

from tests.transport.conftest import loopback_config
from tests.transport.conftest import run as conftest_run


class Recorder(SpreadListener):
    def __init__(self):
        self.dropped = []
        self.reconnected = 0
        self.memberships = []

    def handle_dropped(self, client, reason=""):
        self.dropped.append(reason)

    def handle_reconnected(self, client):
        self.reconnected += 1

    def handle_membership(self, client, event):
        self.memberships.append({str(m) for m in event.members})


def run(coro, timeout=90.0):
    return conftest_run(coro, timeout)


def test_kill_socket_backoff_reconnect_rejoin():
    async def main():
        host = DaemonHost(loopback_config(("d0",)), ("d0",))
        await host.start()
        await host.settle()
        try:
            client = TcpSpreadClient(
                host.addresses.client("d0"),
                "c0",
                clock=host.clock,
                backoff_base=0.02,
                backoff_cap=0.2,
            )
            recorder = Recorder()
            client.add_listener(recorder)
            await client.connect()
            client.join("g")
            await wait_for_condition(
                lambda: bool(recorder.memberships), timeout=30.0
            )
            me = {str(client.pid)}
            assert recorder.memberships[-1] == me
            client.drain()

            # Guillotine: the daemon aborts the socket without warning.
            assert host.kick_clients("d0") == 1

            await wait_for_condition(
                lambda: recorder.reconnected >= 1
                and recorder.memberships
                and recorder.memberships[-1] == me,
                timeout=60.0,
            )

            events = client.drain()
            lost = [e for e in events if isinstance(e, ConnectionLostEvent)]
            restored = [
                e for e in events if isinstance(e, ConnectionRestoredEvent)
            ]
            # Exactly one outage observed, exactly once.
            assert len(lost) == 1
            assert len(restored) == 1
            assert recorder.dropped and len(recorder.dropped) == 1
            assert client.counters["drops"] == 1
            assert client.counters["reconnects"] == 1
            assert client.counters["reconnect_attempts"] >= 1
            # The restored event precedes the membership resync.
            assert events.index(lost[0]) < events.index(restored[0])

            # The session still works: multicast round-trips to self.
            client.multicast(ServiceType.AGREED, "g", b"after-reconnect")
            await client.flush_writes()
            await wait_for_condition(
                lambda: any(
                    isinstance(e, DataEvent)
                    and e.payload == b"after-reconnect"
                    for e in client.queue
                ),
                timeout=30.0,
            )
            await client.close()
        finally:
            await host.stop()

    run(main())


def test_voluntary_disconnect_does_not_reconnect():
    async def main():
        host = DaemonHost(loopback_config(("d0",)), ("d0",))
        await host.start()
        await host.settle()
        try:
            client = TcpSpreadClient(
                host.addresses.client("d0"), "c1", clock=host.clock
            )
            await client.connect()
            await client.close()
            await asyncio.sleep(0.1)
            assert client.counters["reconnects"] == 0
            assert not client.connected
        finally:
            await host.stop()

    run(main())
