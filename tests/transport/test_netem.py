"""The netem proxy layer: pass-through fidelity, shaping, faults.

The acceptance bar for the whole fault-injection layer: with an empty
schedule the proxy is an invisible wire — byte-identical in both
directions, zero faults injected — and every fault it *does* inject is
seeded, counted and traced.
"""

import asyncio

import pytest

from repro.errors import FaultError
from repro.transport.netem import (
    ALL_LINKS,
    LinkShape,
    NetemSchedule,
    NetemWorld,
    build_parser,
)

from tests.transport.conftest import run


async def start_sink():
    """An asyncio server that records every byte and echoes it back."""
    received = bytearray()

    async def handle(reader, writer):
        while True:
            data = await reader.read(65536)
            if not data:
                break
            received.extend(data)
            writer.write(data)
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    address = server.sockets[0].getsockname()[:2]
    return server, address, received


def test_empty_schedule_is_byte_identical_passthrough():
    async def main():
        server, address, received = await start_sink()
        world = NetemWorld(seed=42)
        try:
            world.validate(NetemSchedule())  # empty schedule is legal
            proxy = await world.open_link("wire", address)
            reader, writer = await asyncio.open_connection(*proxy)
            sent = bytes(range(256)) * 512  # 128 KiB, every byte value
            echoed = bytearray()
            for offset in range(0, len(sent), 8192):
                writer.write(sent[offset : offset + 8192])
            await writer.drain()
            while len(echoed) < len(sent):
                chunk = await asyncio.wait_for(reader.read(65536), 10.0)
                assert chunk, "echo stream ended early"
                echoed.extend(chunk)
            assert bytes(received) == sent  # forward path byte-identical
            assert bytes(echoed) == sent  # return path byte-identical
            assert world.faults_injected() == 0
            totals = world.counters_total()
            assert totals["bytes_fwd"] == len(sent)
            assert totals["bytes_back"] == len(sent)
            assert totals["conns"] == 1
            writer.close()
        finally:
            await world.close()
            server.close()

    run(main())


def test_latency_shaping_delays_delivery():
    async def main():
        server, address, __ = await start_sink()
        world = NetemWorld(seed=1)
        try:
            proxy = await world.open_link("wire", address)
            world.links["wire"].apply_shape("fwd", latency=0.2)
            reader, writer = await asyncio.open_connection(*proxy)
            loop = asyncio.get_running_loop()
            started = loop.time()
            writer.write(b"ping")
            await writer.drain()
            echo = await asyncio.wait_for(reader.read(4), 10.0)
            assert echo == b"ping"
            assert loop.time() - started >= 0.2
            writer.close()
        finally:
            await world.close()
            server.close()

    run(main())


def test_stall_holds_bytes_until_resume():
    async def main():
        server, address, received = await start_sink()
        world = NetemWorld(seed=2)
        try:
            proxy = await world.open_link("wire", address)
            reader, writer = await asyncio.open_connection(*proxy)
            writer.write(b"before")
            await asyncio.wait_for(reader.readexactly(6), 10.0)

            world.links["wire"].stall("both")
            writer.write(b"held")
            await writer.drain()
            await asyncio.sleep(0.3)
            assert bytes(received) == b"before"  # bytes held, socket open

            world.links["wire"].resume("both")
            assert await asyncio.wait_for(reader.readexactly(4), 10.0) == b"held"
            writer.close()
        finally:
            await world.close()
            server.close()

    run(main())


def test_blackhole_discards_silently_and_reset_aborts():
    async def main():
        server, address, received = await start_sink()
        world = NetemWorld(seed=3)
        try:
            proxy = await world.open_link("wire", address)
            reader, writer = await asyncio.open_connection(*proxy)
            writer.write(b"seen")
            await asyncio.wait_for(reader.readexactly(4), 10.0)

            link = world.links["wire"]
            link.blackhole("both")
            writer.write(b"gone")
            await writer.drain()
            await asyncio.sleep(0.2)
            assert bytes(received) == b"seen"  # blackholed bytes vanished
            assert link.counters["blackholed_bytes"] == 4

            assert link.reset_connections() >= 1
            with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
                await asyncio.wait_for(reader.readexactly(1), 10.0)
        finally:
            await world.close()
            server.close()

    run(main())


def test_corruption_flips_bytes_and_counts_faults():
    async def main():
        server, address, received = await start_sink()
        world = NetemWorld(seed=4)
        try:
            proxy = await world.open_link("wire", address)
            world.links["wire"].apply_shape("fwd", corrupt=1.0)
            __, writer = await asyncio.open_connection(*proxy)
            sent = b"\x00" * 64
            writer.write(sent)
            await writer.drain()
            await asyncio.wait_for(_wait_len(received, 64), 10.0)
            assert bytes(received) != sent
            assert world.links["wire"].counters["faults_corrupt"] >= 1
            writer.close()
        finally:
            await world.close()
            server.close()

    async def _wait_len(buffer, size):
        while len(buffer) < size:
            await asyncio.sleep(0.01)

    run(main())


def test_schedule_validation_rejects_bad_input():
    async def main():
        world = NetemWorld(seed=5)
        server, address, __ = await start_sink()
        try:
            await world.open_link("known", address)
            with pytest.raises(FaultError):
                world.validate(NetemSchedule().stall(1.0, ["unknown-link"]))
            with pytest.raises(FaultError):
                world.validate(
                    NetemSchedule().shape(1.0, ["known"], latency=-1.0)
                )
            with pytest.raises(FaultError):
                world.validate(
                    NetemSchedule().shape(1.0, ["known"], direction="up")
                )
            with pytest.raises(FaultError):
                world.links["known"].apply_shape("fwd", bogus_field=1)
            # A valid schedule against known links passes.
            world.validate(
                NetemSchedule()
                .shape(0.5, [ALL_LINKS], latency=0.01)
                .blackhole(1.0, ["known"])
                .heal(2.0, ["known"])
                .reset(2.0, ["known"])
                .clear(3.0)
            )
        finally:
            await world.close()
            server.close()

    run(main())


def test_schedule_describe_is_deterministic_and_ordered():
    def build():
        return (
            NetemSchedule()
            .reset(2.0)
            .shape(0.5, ["a"], latency=0.01, loss=0.1)
            .stall(1.0, ["b"], direction="fwd")
            .resume(1.5, ["b"], direction="fwd")
        )

    first, second = build().describe(), build().describe()
    assert first == second
    times = [float(line.split()[0].split("=", 1)[1].rstrip(":")) for line in first]
    assert times == sorted(times)


def test_linkshape_passthrough_detection():
    assert LinkShape().is_passthrough()
    assert not LinkShape(latency=0.01).is_passthrough()
    assert not LinkShape(loss=0.5).is_passthrough()
    stalled = LinkShape()
    stalled.stalled = True
    assert not stalled.is_passthrough()


def test_cli_parser_shapes_and_addresses():
    parser = build_parser()
    args = parser.parse_args(
        [
            "--listen", "127.0.0.1:0",
            "--target", "127.0.0.1:4803",
            "--latency", "0.05",
            "--loss", "0.02",
            "--back-latency", "0.01",
            "--seed", "9",
        ]
    )
    assert args.listen == ("127.0.0.1", 0)
    assert args.target == ("127.0.0.1", 4803)
    assert args.latency == 0.05
    assert args.loss == 0.02
    assert args.seed == 9


def test_authenticated_frames_pass_through_byte_identically():
    """MAC'd wire-v2 frames survive the unshapen proxy untouched: the
    tag still verifies on the far side, so frame auth and netem compose
    (netem shapes bytes, it never rewrites them)."""
    from repro.transport.auth import FrameAuth
    from repro.transport.wire import FrameDecoder, encode_frame

    auth = FrameAuth(b"k" * 32)
    payloads = [b"x" * size for size in (1, 100, 10_000)] + [(7, b"tuple")]
    stream = b"".join(encode_frame(p, auth=auth) for p in payloads)

    async def main():
        server, address, received = await start_sink()
        world = NetemWorld(seed=7)
        try:
            proxy = await world.open_link("wire", address)
            reader, writer = await asyncio.open_connection(*proxy)
            writer.write(stream)
            await writer.drain()
            echoed = bytearray()
            while len(echoed) < len(stream):
                chunk = await asyncio.wait_for(reader.read(65536), 10.0)
                assert chunk, "echo stream ended early"
                echoed.extend(chunk)
            assert bytes(received) == stream
            # Both directions decode with the MAC verifying clean.
            for blob in (bytes(received), bytes(echoed)):
                decoder = FrameDecoder(auth=auth)
                assert decoder.feed(blob) == payloads
            assert world.faults_injected() == 0
            writer.close()
        finally:
            await world.close()
            server.close()

    run(main())
