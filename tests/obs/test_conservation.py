"""Cross-layer conservation: the metrics collected from each layer obey
the inequalities the wire model implies.

Byte conservation down the stack (strict, not heuristic):

* ``net.bytes_sent >= net.bytes_delivered`` — drops only remove bytes.
* ``net.bytes_delivered >= sum(spread.bytes_delivered_remote)`` — every
  remote reliable message a daemon delivers arrived in some datagram
  whose wire size includes it (Install/SyncInfo wire sizes embed their
  complement messages), and retransmissions only widen the gap.
* ``sum(spread.client_bytes_delivered) >= sum(secure.unsealed_bytes)``
  — every successful unseal consumed exactly one client push whose
  DataMessage wire size (96 + payload) exceeds the sealed payload.

And the control plane: the registry's per-op exponentiation counts must
byte-match each member's :class:`~repro.crypto.counters.ExpCounter` for
join/leave scenarios under all three key-agreement modules (the paper's
Tables 2-4 axes).
"""

from __future__ import annotations

import pytest

from repro.bench.testbed import SecureTestbed
from repro.obs.metrics import MetricsRegistry, collect_testbed, exp_counts_match

MODULES = ("cliques", "ckd", "tgdh")


@pytest.fixture(scope="module", params=MODULES)
def exercised(request):
    """A testbed that did real work under ``module``: grow to three
    members (two joins re-key), multicast from everyone, then a leave."""
    module = request.param
    bed = SecureTestbed()
    names = bed.grow_group(3, module=module)
    for name in names:
        bed.members[name].send("g", f"payload from {name}".encode())
    bed.run(2.0)
    bed.timed_leave(names)  # removes m2, re-keys m0/m1
    bed.run(1.0)
    registry = collect_testbed(MetricsRegistry(), bed)
    return module, bed, registry


def test_bytes_conserved_down_the_stack(exercised):
    module, __, registry = exercised
    sent = registry.value("net.bytes_sent")
    delivered = registry.value("net.bytes_delivered")
    remote = registry.total("spread.bytes_delivered_remote")
    assert sent >= delivered >= remote > 0, module


def test_client_bytes_cover_unsealed_bytes(exercised):
    module, __, registry = exercised
    client = registry.total("spread.client_bytes_delivered")
    unsealed = registry.total("secure.unsealed_bytes")
    assert client >= unsealed > 0, module


def test_message_counts_are_sane(exercised):
    module, bed, registry = exercised
    sealed = registry.total("secure.sealed_messages")
    unsealed = registry.total("secure.unsealed_messages")
    assert sealed >= len(bed.members) > 0, module
    # Each multicast comes back to every member (sender included), so
    # the group-wide unseal count is at least the seal count.
    assert unsealed >= sealed, module
    assert registry.total("secure.rekeys_completed") > 0
    assert registry.total("spread.views_installed") > 0
    # No corruption on a clean network: nothing rejected.
    assert registry.total("secure.rejected_messages") == 0


def test_datagram_counts_consistent(exercised):
    __, bed, registry = exercised
    sent = registry.value("net.datagrams_sent")
    delivered = registry.value("net.datagrams_delivered")
    dropped = registry.value("net.datagrams_dropped")
    duplicated = registry.value("net.datagrams_duplicated")
    assert sent > 0
    # Deliveries can exceed sends only through duplication.
    assert delivered + dropped <= sent + duplicated


def test_exp_counts_byte_match_the_crypto_counters(exercised):
    module, bed, registry = exercised
    assert bed.members, module
    for name, client in bed.members.items():
        assert client.counter.total > 0, (module, name)
        assert exp_counts_match(registry, client.counter, member=name), (
            module,
            name,
        )
