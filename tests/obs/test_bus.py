"""The trace bus: ring retention, exact fingerprints, subscribers, and
the event-kind namespace catalogue."""

from __future__ import annotations

import pytest

from repro.chaos.invariants import trace_fingerprint
from repro.obs.bus import (
    KIND_NAMESPACES,
    LAYERS,
    TraceBus,
    is_namespaced,
    layer_of,
    namespace_of,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import Tracer


def _feed(tracer, count, kind="net.drop_loss"):
    for index in range(count):
        tracer.record(kind, index=index)


# -- ring-buffer retention ---------------------------------------------------


def test_uncapped_tracer_retains_everything():
    tracer = Tracer(enabled=True)
    _feed(tracer, 12)
    assert len(tracer) == 12
    assert tracer.dropped_events == 0
    assert tracer.recorded_total == 12


def test_ring_buffer_drops_oldest_and_counts():
    tracer = Tracer(enabled=True, max_events=5)
    _feed(tracer, 12)
    assert len(tracer) == 5
    assert tracer.dropped_events == 7
    assert tracer.recorded_total == 12
    # The *newest* events survive; the oldest rotated out.
    assert [event["index"] for event in tracer.events] == [7, 8, 9, 10, 11]


def test_max_events_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(max_events=0)
    with pytest.raises(ValueError):
        Tracer(max_events=-3)


def test_clear_resets_ring_and_fingerprint():
    tracer = Tracer(enabled=True, max_events=3)
    _feed(tracer, 7)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped_events == 0
    assert tracer.recorded_total == 0
    assert tracer.fingerprint() == Tracer(enabled=True).fingerprint()


# -- incremental fingerprinting ----------------------------------------------


def _varied_feed(tracer):
    tracer.record("daemon.install", me="d0", view="v1", members=["d0", "d1"])
    tracer.record("secure.send", me="m0", group="g", epoch="g|v1|0")
    tracer.record("net.drop_loss", source="d0", destination="d1")
    tracer.record("secure.data", me="m1", group="g", epoch="g|v1|0")
    for index in range(40):
        tracer.record("net.corrupt", index=index)


def test_fingerprint_equals_legacy_function_when_uncapped():
    tracer = Tracer(enabled=True)
    _varied_feed(tracer)
    assert tracer.fingerprint() == trace_fingerprint(tracer.events)


def test_capped_fingerprint_survives_rotation():
    capped = Tracer(enabled=True, max_events=8)
    uncapped = Tracer(enabled=True)
    _varied_feed(capped)
    _varied_feed(uncapped)
    assert capped.dropped_events > 0
    # Rotation discards events from retention, never from the digest.
    assert capped.fingerprint() == uncapped.fingerprint()
    # The retained tail alone would hash differently.
    assert trace_fingerprint(capped.events) != capped.fingerprint()


def test_kernel_event_kind_excluded_from_fingerprint():
    with_noise = Tracer(enabled=True)
    without = Tracer(enabled=True)
    with_noise.record("kernel.event", time=1.0, label="x")
    with_noise.record("daemon.install", me="d0")
    without.record("daemon.install", me="d0")
    assert with_noise.fingerprint() == without.fingerprint()


def test_keep_filter_drops_before_retention_and_digest():
    filtered = Tracer(enabled=True, keep=lambda kind: kind != "kernel.event")
    plain = Tracer(enabled=True)
    filtered.record("kernel.event", time=0.0, label="x")
    filtered.record("net.heal")
    plain.record("net.heal")
    assert [event.kind for event in filtered.events] == ["net.heal"]
    assert filtered.recorded_total == 1
    assert filtered.fingerprint() == plain.fingerprint()


def test_timing_metadata_not_part_of_fingerprint():
    early = Tracer(enabled=True)
    late = Tracer(enabled=True)
    late.clock = lambda: 42.5
    early.record("secure.send", me="m0", group="g", epoch="e")
    late.record("secure.send", me="m0", group="g", epoch="e")
    assert late.events[0].t == 42.5
    assert early.fingerprint() == late.fingerprint()


# -- subscribers -------------------------------------------------------------


def test_subscribers_see_every_retained_event():
    tracer = Tracer(enabled=True, keep=lambda kind: kind.startswith("net."))
    seen = []
    tracer.subscribe(lambda event: seen.append(event.kind))
    tracer.record("net.heal")
    tracer.record("daemon.install", me="d0")  # keep-filtered: not delivered
    tracer.record("net.restore")
    assert seen == ["net.heal", "net.restore"]


def test_unsubscribe_detaches():
    tracer = Tracer(enabled=True)
    seen = []
    callback = lambda event: seen.append(event.kind)  # noqa: E731
    tracer.subscribe(callback)
    tracer.record("net.heal")
    tracer.unsubscribe(callback)
    tracer.unsubscribe(callback)  # double-detach is a no-op
    tracer.record("net.restore")
    assert seen == ["net.heal"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    seen = []
    tracer.subscribe(lambda event: seen.append(event))
    tracer.record("net.heal")
    assert len(tracer) == 0 and not seen
    assert tracer.fingerprint() == Tracer(enabled=True).fingerprint()


# -- the namespace catalogue -------------------------------------------------


def test_layer_catalogue_covers_the_stack():
    assert layer_of("daemon.install") == "spread"
    assert layer_of("memb.transition") == "spread"
    assert layer_of("secure.confirmed") == "secure"
    assert layer_of("keyagree.round") == "keyagree"
    assert layer_of("net.drop_loss") == "net"
    assert layer_of("kernel.event") == "sim"
    assert layer_of("process.crash") == "sim"
    assert layer_of("fault.fire") == "chaos"
    assert layer_of("bogus.kind") == "unknown"
    assert namespace_of("net.drop_loss") == "net"
    assert set(KIND_NAMESPACES.values()) <= set(LAYERS) | {"unknown"}


def test_is_namespaced():
    assert is_namespaced("secure.send")
    assert is_namespaced("net.drop_partition_inflight")
    assert not is_namespaced("nodot")
    assert not is_namespaced("unregistered.kind")
    assert not is_namespaced("net.")


# -- TraceBus ----------------------------------------------------------------


def test_bus_is_a_tracer():
    bus = TraceBus(enabled=True, max_events=4)
    _feed(bus, 6)
    assert isinstance(bus, Tracer)
    assert len(bus) == 4 and bus.dropped_events == 2


def test_attach_metrics_feeds_per_kind_counters():
    bus = TraceBus(enabled=True)
    registry = MetricsRegistry()
    feed = bus.attach_metrics(registry)
    bus.record("net.drop_loss", source="a", destination="b")
    bus.record("net.drop_loss", source="a", destination="b")
    bus.record("daemon.install", me="d0")
    assert (
        registry.value("trace.events", layer="net", kind="net.drop_loss") == 2
    )
    assert (
        registry.value("trace.events", layer="spread", kind="daemon.install")
        == 1
    )
    bus.unsubscribe(feed)
    bus.record("net.drop_loss", source="a", destination="b")
    assert (
        registry.value("trace.events", layer="net", kind="net.drop_loss") == 2
    )


def test_events_by_layer_groups_retained_events():
    bus = TraceBus(enabled=True)
    bus.record("net.heal")
    bus.record("net.restore")
    bus.record("daemon.install", me="d0")
    assert bus.events_by_layer() == {"net": 2, "spread": 1}
