"""Spans, run dumps, and the inspector, end to end over a real chaos run."""

from __future__ import annotations

import json

import pytest

from repro.chaos.harness import run_chaos
from repro.obs import inspect as obs_inspect
from repro.obs.dump import is_run_dump, iter_runs, load_run
from repro.obs.spans import (
    Span,
    chrome_trace,
    derive_spans,
    rekey_latency_table,
)
from repro.sim.trace import TraceEvent


# -- span derivation over a synthetic trace ----------------------------------


def _event(kind, t, **fields):
    return TraceEvent(kind=kind, fields=fields, t=t)


def test_rekey_span_closed_by_matching_confirm():
    events = [
        _event(
            "secure.rekey_started",
            1.0, me="m0", group="g", view="v1", operation="join",
            members=["m0", "m1"],
        ),
        _event(
            "secure.confirmed",
            1.4, me="m0", group="g", view="v1", attempt=0,
            members=["m0", "m1"], fingerprint="ab",
        ),
        _event("secure.data", 1.6, me="m0", group="g", sender="m1", epoch="e"),
    ]
    spans = derive_spans(events)
    rekey = [s for s in spans if s.name == "rekey"]
    first = [s for s in spans if s.name == "first_delivery"]
    assert len(rekey) == 1 and len(first) == 1
    assert rekey[0].actor == "m0"
    assert rekey[0].duration == pytest.approx(0.4)
    assert rekey[0].attrs["operation"] == "join"
    assert first[0].start == 1.0 and first[0].end == 1.6


def test_superseded_rekey_becomes_marker_not_span():
    events = [
        _event("secure.rekey_started", 1.0, me="m0", group="g", view="v1",
               operation="join", members=["m0"]),
        _event("secure.rekey_started", 2.0, me="m0", group="g", view="v2",
               operation="merge", members=["m0"]),
        _event("secure.confirmed", 2.5, me="m0", group="g", view="v2",
               attempt=0, members=["m0"], fingerprint="cd"),
    ]
    spans = derive_spans(events)
    assert [s.name for s in spans if s.name == "rekey"] == ["rekey"]
    markers = [s for s in spans if s.name == "superseded_rekeys"]
    assert len(markers) == 1 and markers[0].attrs["count"] == 1


def test_fault_windows_and_open_spans():
    events = [
        _event("process.crash", 1.0, name="d3"),
        _event("net.partition", 1.5, groups=[["d0"], ["d1"]]),
        _event("net.heal", 2.5),
        _event("process.recover", 3.0, name="d3"),
        _event("process.stall", 3.5, name="d1"),  # never resumed
    ]
    spans = {(s.name, s.actor): s for s in derive_spans(events)}
    assert spans[("crash", "d3")].duration == pytest.approx(2.0)
    assert spans[("partition", "net")].duration == pytest.approx(1.0)
    stall = spans[("stall", "d1")]
    assert stall.attrs.get("open") is True
    assert stall.end == 3.5  # closed at trace end


def test_latency_table_requires_every_member():
    events = [
        _event("secure.rekey_started", 1.0, me="m0", group="g", view="v1",
               operation="join", members=["m0", "m1"]),
        _event("secure.rekey_started", 1.0, me="m1", group="g", view="v1",
               operation="join", members=["m0", "m1"]),
        _event("secure.confirmed", 1.8, me="m0", group="g", view="v1",
               attempt=0, members=["m0", "m1"], fingerprint="ab"),
    ]
    (row,) = rekey_latency_table(events)
    assert row["confirmed"] == 1 and row["members"] == 2
    assert row["latency"] is None  # one confirm missing: not complete
    events.append(
        _event("secure.confirmed", 2.0, me="m1", group="g", view="v1",
               attempt=0, members=["m0", "m1"], fingerprint="ab")
    )
    (row,) = rekey_latency_table(events)
    assert row["latency"] == pytest.approx(1.0)


def test_chrome_trace_shape():
    spans = [
        Span(name="rekey", category="secure", actor="m0", start=1.0, end=1.5),
        Span(name="crash", category="sim", actor="d3", start=0.5, end=2.0),
    ]
    document = chrome_trace(spans)
    events = document["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    names = [e for e in events if e["ph"] == "M"]
    assert len(slices) == 2 and len(names) == 2
    assert slices[0]["ts"] == pytest.approx(1_000_000)
    assert slices[0]["dur"] == pytest.approx(500_000)
    assert {e["args"]["name"] for e in names} == {"m0", "d3"}
    json.dumps(document)


# -- the dump + inspector pipeline over a real run ---------------------------


@pytest.fixture(scope="module")
def chaos_dump(tmp_path_factory):
    root = tmp_path_factory.mktemp("obsdump")
    result = run_chaos(5, "cliques", quick=True, dump_dir=str(root))
    return root, result


def test_dump_roundtrip(chaos_dump):
    root, result = chaos_dump
    directory = root / f"seed{result.seed}-{result.module}"
    assert is_run_dump(str(directory))
    run = load_run(str(directory))
    assert run.meta["seed"] == 5
    assert run.meta["module"] == "cliques"
    assert run.meta["ok"] == result.ok
    assert run.meta["fingerprint"] == result.fingerprint
    assert run.meta["trace_retained"] == len(run.events) > 0
    # Events survive the JSONL round-trip with kind, fields and time.
    installs = [e for e in run.events if e.kind == "daemon.install"]
    assert installs and all(e.t >= 0 for e in installs)
    # The metrics snapshot rode along.
    gauges = {row["name"] for row in run.metrics["gauges"]}
    assert "net.bytes_sent" in gauges
    assert "spread.views_installed" in gauges
    # Spans were derived and written.
    assert run.spans
    assert any(span.name == "rekey" for span in run.spans)
    assert (directory / "chrome_trace.json").exists()
    chrome = json.loads((directory / "chrome_trace.json").read_text())
    assert chrome["traceEvents"]


def test_latency_table_on_real_run_has_completed_rows(chaos_dump):
    root, result = chaos_dump
    run = load_run(str(root / f"seed{result.seed}-{result.module}"))
    table = rekey_latency_table(run.events)
    assert table
    completed = [row for row in table if row["latency"] is not None]
    assert completed, "no epoch reached all-members-confirmed"
    assert all(row["latency"] >= 0 for row in completed)


def test_inspector_prints_and_check_passes(chaos_dump, capsys):
    root, __ = chaos_dump
    assert obs_inspect.main([str(root), "--check"]) == 0
    out = capsys.readouterr().out
    assert "timeline" in out
    assert "per-epoch traffic" in out
    assert "view-change -> key-installed latency" in out
    assert "spans (" in out
    assert "metrics (" in out


def test_inspector_check_fails_on_empty_dump(tmp_path, capsys):
    from repro.obs.dump import dump_run

    dump_run(str(tmp_path / "empty"), events=[])
    assert obs_inspect.main([str(tmp_path), "--check"]) == 1
    assert obs_inspect.main([str(tmp_path)]) == 0  # plain render still ok
    capsys.readouterr()


def test_inspector_errors_on_missing_dumps(tmp_path, capsys):
    assert obs_inspect.main([str(tmp_path)]) == 1
    assert "no run dumps found" in capsys.readouterr().err


def test_iter_runs_finds_nested_dumps(chaos_dump):
    root, result = chaos_dump
    runs = list(iter_runs(str(root)))
    assert [run.name for run in runs] == [f"seed{result.seed}-{result.module}"]
