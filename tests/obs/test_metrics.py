"""The metrics registry: instruments, aggregation, JSON round-trips,
and the layer collectors against stub objects."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.crypto.counters import ExpCounter
from repro.obs.metrics import (
    MetricsRegistry,
    collect_daemon,
    collect_exp_counter,
    collect_kernel,
    collect_network,
    collect_session,
    exp_counts_match,
    registry_from_json,
)


# -- instruments -------------------------------------------------------------


def test_counter_get_or_create_identity():
    registry = MetricsRegistry()
    a = registry.counter("net.bytes_sent")
    b = registry.counter("net.bytes_sent")
    assert a is b
    a.inc(10)
    assert registry.value("net.bytes_sent") == 10


def test_labels_distinguish_instruments():
    registry = MetricsRegistry()
    registry.counter("spread.views_installed", daemon="d0").inc(3)
    registry.counter("spread.views_installed", daemon="d1").inc(5)
    assert registry.value("spread.views_installed", daemon="d0") == 3
    assert registry.value("spread.views_installed", daemon="d1") == 5
    assert registry.total("spread.views_installed") == 8
    family = registry.family("spread.views_installed")
    assert family[(("daemon", "d0"),)] == 3
    # Label values are canonicalized to strings, so 0 and "0" collide
    # deliberately (JSON round-trips cannot tell them apart).
    registry.counter("x", n=0).inc()
    registry.counter("x", n="0").inc()
    assert registry.value("x", n=0) == 2


def test_counter_rejects_negative_increment():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("net.bytes_sent").inc(-1)


def test_gauge_sets_point_in_time_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("kernel.virtual_time")
    gauge.set(4.5)
    gauge.set(2.0)  # gauges overwrite, never accumulate
    assert registry.value("kernel.virtual_time") == 2.0


def test_histogram_aggregates_and_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("secure.rekey_latency_s")
    for value in (3.0, 1.0, 2.0, 4.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.min == 1.0 and histogram.max == 4.0
    assert histogram.mean == 2.5
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 4.0
    empty = registry.histogram("secure.other")
    assert empty.mean == 0.0 and empty.percentile(50) == 0.0


def test_value_of_absent_instrument_is_zero():
    assert MetricsRegistry().value("no.such_metric") == 0.0


def test_names_lists_every_family_once():
    registry = MetricsRegistry()
    registry.counter("a.one", x=1)
    registry.counter("a.one", x=2)
    registry.gauge("b.two")
    registry.histogram("c.three")
    assert registry.names() == ["a.one", "b.two", "c.three"]


# -- serialization -----------------------------------------------------------


def test_snapshot_roundtrip():
    registry = MetricsRegistry()
    registry.counter("net.bytes_sent").inc(1234)
    registry.gauge("kernel.virtual_time", run="r1").set(9.25)
    histogram = registry.histogram("secure.rekey_latency_s", module="tgdh")
    for value in (0.5, 1.5, 2.5):
        histogram.observe(value)

    snapshot = registry.snapshot()
    json.dumps(snapshot)  # JSON-native end to end
    assert snapshot["schema"] == "obs-metrics/1"

    loaded = registry_from_json(snapshot)
    assert loaded.value("net.bytes_sent") == 1234
    assert loaded.value("kernel.virtual_time", run="r1") == 9.25
    restored = loaded.histogram("secure.rekey_latency_s", module="tgdh")
    assert restored.count == 3
    assert restored.total == 4.5
    assert restored.min == 0.5 and restored.max == 2.5
    assert loaded.snapshot() == snapshot


def test_roundtrip_restores_truncated_histogram_aggregates():
    registry = MetricsRegistry()
    histogram = registry.histogram("h.x")
    histogram.reservoir_cap = 2
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    assert len(histogram.samples) == 2  # reservoir full
    restored = registry_from_json(registry.snapshot()).histogram("h.x")
    assert restored.count == 4
    assert restored.total == 10.0
    assert restored.max == 4.0


# -- collectors --------------------------------------------------------------


def test_collect_kernel_and_network():
    registry = MetricsRegistry()
    collect_kernel(
        registry,
        SimpleNamespace(
            events_scheduled=100,
            events_processed=90,
            events_cancelled=5,
            pending_events=5,
            now=12.5,
        ),
    )
    collect_network(
        registry,
        SimpleNamespace(
            datagrams_sent=40,
            datagrams_delivered=35,
            datagrams_dropped=4,
            datagrams_duplicated=1,
            datagrams_corrupted=2,
            bytes_sent=4000,
            bytes_delivered=3500,
        ),
    )
    assert registry.value("kernel.events_scheduled") == 100
    assert registry.value("kernel.events_fired") == 90
    assert registry.value("kernel.virtual_time") == 12.5
    assert registry.value("net.datagrams_sent") == 40
    assert registry.value("net.bytes_delivered") == 3500


def test_collect_daemon_and_session_label_by_owner():
    registry = MetricsRegistry()
    collect_daemon(
        registry,
        SimpleNamespace(
            name="d0",
            views_installed=7,
            flush_cuts=3,
            retransmissions=2,
            messages_delivered=50,
            remote_bytes_delivered=4800,
            client_messages_delivered=20,
            client_bytes_delivered=2000,
            packed_datagrams=6,
            packed_messages=18,
            delivery_runs=10,
            delivered_in_runs=45,
            longest_run=9,
        ),
    )
    collect_session(
        registry,
        "m0",
        "g",
        SimpleNamespace(
            module=SimpleNamespace(name="tgdh"),
            sealed_messages=5,
            sealed_bytes=640,
            unsealed_messages=4,
            unsealed_bytes=512,
            rejected_messages=1,
            rekeys_completed=2,
        ),
    )
    assert registry.value("spread.flush_cuts", daemon="d0") == 3
    assert registry.value("spread.bytes_delivered_remote", daemon="d0") == 4800
    assert registry.value("spread.packed_datagrams", daemon="d0") == 6
    assert registry.value("spread.packed_messages", daemon="d0") == 18
    assert registry.value("spread.longest_delivery_run", daemon="d0") == 9
    labels = {"member": "m0", "group": "g", "module": "tgdh"}
    assert registry.value("secure.sealed_bytes", **labels) == 640
    assert registry.value("secure.rekeys_completed", **labels) == 2


def test_collect_exp_counter_byte_matches_snapshot():
    counter = ExpCounter()
    counter.record("upflow", count=3)
    counter.record("downflow", count=2)
    counter.record("upflow")
    registry = MetricsRegistry()
    collect_exp_counter(registry, counter, member="m0")
    snapshot = counter.snapshot()
    for op, count in snapshot.items():
        assert (
            registry.value("keyagree.exponentiations", op=op, member="m0")
            == count
        )
    assert (
        registry.value("keyagree.exponentiations_total", member="m0")
        == counter.total
    )
    assert exp_counts_match(registry, counter, member="m0")
    # A mismatch is detected: one stray increment breaks the match.
    registry.counter("keyagree.exponentiations", op="upflow", member="m0").inc()
    assert not exp_counts_match(registry, counter, member="m0")
