"""Lint: every literal trace-event kind in the library is namespaced.

Grep-based, so a new ``tracer.record("foo", ...)`` call site with an
unregistered or dot-less kind fails CI with a pointer to the offending
file instead of silently landing in the "unknown" layer bucket.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.bus import is_namespaced

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Matches ``<anything>tracer.record("kind"`` across a line break after
#: the paren — the idiom of every trace call site in the library.
#: ``counter.record(...)`` (ExpCounter) deliberately does not match.
_RECORD_CALL = re.compile(r"tracer\.record\(\s*\"([^\"]+)\"", re.MULTILINE)


def _literal_kinds():
    found = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _RECORD_CALL.finditer(text):
            line = text.count("\n", 0, match.start()) + 1
            found.append((path.relative_to(SRC_ROOT), line, match.group(1)))
    return found


def test_trace_call_sites_exist():
    kinds = _literal_kinds()
    assert len(kinds) >= 20, "lint regex stopped matching the record idiom"
    assert {kind for __, __, kind in kinds} >= {
        "daemon.install",
        "secure.confirmed",
        "net.drop_loss",
        "fault.fire",
    }


def test_every_literal_kind_is_namespaced():
    offenders = [
        f"{path}:{line}: {kind!r}"
        for path, line, kind in _literal_kinds()
        if not is_namespaced(kind)
    ]
    assert not offenders, (
        "unnamespaced trace kinds (register the root in"
        " repro.obs.bus.KIND_NAMESPACES or rename):\n" + "\n".join(offenders)
    )
