"""Unit tests for the calendar-queue scheduler structure itself.

The kernel-level ordering contract (heap vs calendar equivalence) lives
in ``test_scheduler_equivalence.py``; these tests poke the queue's own
mechanics — bucket hashing, the day walk, the sparse-year fallback and
the self-tuning resize — through its public seam.
"""

import random

import pytest

from repro.sim.calqueue import MIN_BUCKETS, CalendarQueue


class _Stub:
    """Minimal event record: the queue only reads time/priority/seq."""

    __slots__ = ("time", "priority", "seq")

    def __init__(self, time, priority=0, seq=0):
        self.time = time
        self.priority = priority
        self.seq = seq

    def __repr__(self):
        return f"_Stub({self.time}, {self.priority}, {self.seq})"


def _drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append(event)


def test_empty_pop_returns_none():
    queue = CalendarQueue()
    assert queue.pop() is None
    assert len(queue) == 0
    assert not queue


def test_constructor_validation():
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=-1.0)
    with pytest.raises(ValueError):
        CalendarQueue(bucket_count=0)


def test_bucket_count_rounds_up_to_power_of_two():
    assert CalendarQueue(bucket_count=5).bucket_count == MIN_BUCKETS
    assert CalendarQueue(bucket_count=9).bucket_count == 16


def test_orders_by_time_priority_seq():
    queue = CalendarQueue()
    events = [
        _Stub(2.0, 0, 3),
        _Stub(1.0, 1, 2),
        _Stub(1.0, 0, 5),
        _Stub(1.0, 0, 1),
        _Stub(0.5, 9, 4),
    ]
    for event in events:
        queue.push(event)
    drained = _drain(queue)
    assert [(e.time, e.priority, e.seq) for e in drained] == [
        (0.5, 9, 4),
        (1.0, 0, 1),
        (1.0, 0, 5),
        (1.0, 1, 2),
        (2.0, 0, 3),
    ]


def test_random_population_pops_sorted():
    rng = random.Random(7)
    queue = CalendarQueue()
    events = [
        _Stub(rng.uniform(0.0, 50.0), rng.randrange(3), seq)
        for seq in range(2000)
    ]
    for event in events:
        queue.push(event)
    drained = _drain(queue)
    keys = [(e.time, e.priority, e.seq) for e in drained]
    assert keys == sorted(keys)
    assert len(drained) == len(events)


def test_interleaved_push_pop_stays_ordered():
    rng = random.Random(11)
    queue = CalendarQueue()
    seq = 0
    popped = []
    clock = 0.0
    for __ in range(3000):
        if queue and rng.random() < 0.5:
            event = queue.pop()
            # Simulation invariant: events pop in nondecreasing order.
            assert event.time >= clock or abs(event.time - clock) < 1e-12
            clock = max(clock, event.time)
            popped.append(event)
        else:
            queue.push(_Stub(clock + rng.uniform(0.0, 5.0), 0, seq))
            seq += 1
    popped.extend(_drain(queue))
    assert len(popped) == seq


def test_interleaved_matches_sorted_reference_exactly():
    # Exact differential check against a sorted list, through heavy
    # growth/shrink resize churn and mixed time scales.  Regression
    # guard for the resize re-anchor bug: a shrink used to anchor the
    # day walk on the earliest *remaining* entry, stranding later
    # pushes that landed between the clock and that entry.
    for seed in range(5):
        rng = random.Random(seed)
        queue = CalendarQueue()
        reference = []
        seq = 0
        clock = 0.0
        for __ in range(4000):
            if reference and rng.random() < 0.55:
                event = queue.pop()
                reference.sort(key=lambda e: (e.time, e.priority, e.seq))
                expected = reference.pop(0)
                assert event is expected, (
                    f"seed {seed}: popped {(event.time, event.seq)}, "
                    f"expected {(expected.time, expected.seq)}"
                )
                clock = event.time
            else:
                scale = rng.choice([0.0005, 0.02, 1.0, 30.0])
                stub = _Stub(clock + rng.random() * scale, rng.randrange(3), seq)
                seq += 1
                queue.push(stub)
                reference.append(stub)
        drained = _drain(queue)
        reference.sort(key=lambda e: (e.time, e.priority, e.seq))
        assert drained == reference


def test_growth_and_shrink_resize():
    queue = CalendarQueue()
    for seq in range(10_000):
        queue.push(_Stub(seq * 0.001, 0, seq))
    assert queue.bucket_count > MIN_BUCKETS
    grown_resizes = queue.resizes
    assert grown_resizes > 0
    _drain(queue)
    # Draining far below the shrink threshold must have halved the ring
    # back down (possibly all the way to the floor).
    assert queue.resizes > grown_resizes
    assert queue.bucket_count < 10_000


def test_sparse_year_fallback_finds_distant_event():
    # One event many "years" past the walk position: the lap finds
    # nothing due, and the full-scan fallback must locate it.
    queue = CalendarQueue(bucket_width=0.01, bucket_count=8)
    far = _Stub(1e6, 0, 1)
    queue.push(far)
    assert queue.pop() is far
    # And the walk is re-anchored there: a follow-up nearby event pops
    # immediately instead of lapping from day zero again.
    near = _Stub(1e6 + 0.001, 0, 2)
    queue.push(near)
    assert queue.pop() is near


def test_push_below_walk_rewinds_and_keeps_order():
    # The kernel may pop an event, hold it without running it, and push
    # it back after scheduling earlier work (run-horizon stash, merge
    # head) — so a push below the last pop is legal.  The walk must
    # rewind to it; a stale anchor would pop the later event first.
    queue = CalendarQueue(bucket_width=0.01, bucket_count=8)
    late = _Stub(5.0, 0, 1)
    queue.push(late)
    assert queue.pop() is late  # walk is now anchored at t=5.0's day
    early = _Stub(4.0, 0, 2)
    queue.push(early)
    queue.push(late)
    assert queue.pop() is early
    assert queue.pop() is late
    assert queue.pop() is None


def test_many_pushes_below_walk_pop_in_time_order():
    # Several below-walk entries spread across distinct buckets: ring
    # position must not leak into pop order (the walk starts at the
    # lowest home day, so time order wins).
    queue = CalendarQueue(bucket_width=0.01, bucket_count=8)
    far = _Stub(9.0, 0, 1)
    queue.push(far)
    assert queue.pop() is far
    stubs = [_Stub(t, 0, seq) for seq, t in enumerate([4.5, 4.0, 8.0, 0.5])]
    for stub in stubs:
        queue.push(stub)
    queue.push(far)
    drained = _drain(queue)
    times = [e.time for e in drained]
    assert times == sorted(times) == [0.5, 4.0, 4.5, 8.0, 9.0]


def test_resize_anchor_covers_entries_below_last_pop():
    # A resize while a below-last-pop entry is queued must not anchor
    # the walk past it.  Push enough to force growth resizes after the
    # rewind and check exact order.
    queue = CalendarQueue(bucket_width=0.01, bucket_count=8)
    far = _Stub(50.0, 0, 0)
    queue.push(far)
    assert queue.pop() is far  # last pop (and walk) now at t=50.0
    stubs = [_Stub(1.0 + seq * 0.001, 0, seq + 1) for seq in range(200)]
    for stub in stubs:
        queue.push(stub)  # triggers growth resizes with low entries
    queue.push(far)
    assert queue.resizes > 0
    drained = _drain(queue)
    assert drained == stubs + [far]


def test_simultaneous_events_keep_seq_order():
    queue = CalendarQueue()
    events = [_Stub(1.0, 0, seq) for seq in range(500)]
    for event in reversed(events):
        queue.push(event)
    assert [e.seq for e in _drain(queue)] == list(range(500))


def test_width_reestimated_on_resize():
    # A flash crowd in a tiny window then a drain: widths must adapt
    # (growth estimates from the dense population) without ever going
    # non-positive.
    queue = CalendarQueue(bucket_width=10.0)
    for seq in range(5000):
        queue.push(_Stub(100.0 + seq * 1e-6, 0, seq))
    assert queue.resizes > 0
    assert queue.bucket_width > 0.0
    drained = _drain(queue)
    assert [e.seq for e in drained] == list(range(5000))


def test_all_simultaneous_population_survives_resize():
    # Zero time spread: the width estimator must keep the old width
    # rather than dividing into a zero-width ring.
    queue = CalendarQueue()
    for seq in range(1000):
        queue.push(_Stub(42.0, 0, seq))
    assert queue.bucket_width > 0.0
    assert [e.seq for e in _drain(queue)] == list(range(1000))
