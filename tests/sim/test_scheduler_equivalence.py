"""Heap vs calendar-queue scheduler equivalence (hypothesis).

The calendar queue is only admissible as a drop-in because its dispatch
order is *byte-identical* to the heap's: events pop in exactly
``(time, priority, seq)`` order under both.  This suite drives random
programs — absolute and relative schedules, priorities, ties,
cancellations, and callbacks that schedule more work mid-run — through
one kernel of each flavour and demands the same dispatch log and the
same ``events_processed``/``events_cancelled``/``pending_events``
accounting on both sides.

The same property at chaos-run granularity (full protocol stack, trace
fingerprints) is asserted by ``repro.bench.scale``'s equivalence stage;
this is the fast, shrinkable version.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import SCHEDULERS, Kernel

#: One random scheduling instruction:
#:   (delay, priority, cancel_target, respawn)
#: ``delay`` is relative to the kernel clock at execution time,
#: ``cancel_target`` picks an earlier handle to cancel (or None), and
#: ``respawn`` > 0 makes the callback reschedule itself that many times.
_OPS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=3),
        st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=60,
)


def _execute(scheduler: str, ops, seed: int):
    """Run one op program on a fresh kernel; return its dispatch log
    and counter triple."""
    kernel = Kernel(seed=seed, scheduler=scheduler)
    log = []
    handles = []

    def make_callback(index, delay, priority, respawn):
        def callback():
            log.append((round(kernel.now, 9), index))
            if respawn > 0:
                handles.append(
                    kernel.call_at(
                        kernel.now + delay + 0.25,
                        make_callback(index, delay, priority, respawn - 1),
                        priority=priority,
                    )
                )

        return callback

    for index, (delay, priority, cancel_target, respawn) in enumerate(ops):
        handles.append(
            kernel.call_at(
                kernel.now + delay,
                make_callback(index, delay, priority, respawn),
                priority=priority,
            )
        )
        if cancel_target is not None and handles:
            handles[cancel_target % len(handles)].cancel()
    kernel.run()
    return log, (
        kernel.events_processed,
        kernel.events_cancelled,
        kernel.pending_events,
    )


@given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_dispatch_order_and_accounting_identical(ops, seed):
    heap_log, heap_counts = _execute("heap", ops, seed)
    calendar_log, calendar_counts = _execute("calendar", ops, seed)
    assert heap_log == calendar_log
    assert heap_counts == calendar_counts
    assert heap_counts[2] == 0  # run() drains everything


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_tied_times_dispatch_in_seq_order(times):
    """Duplicate timestamps must resolve by scheduling order on both."""
    logs = {}
    for scheduler in SCHEDULERS:
        kernel = Kernel(seed=1, scheduler=scheduler)
        log = []
        for index, when in enumerate(sorted(times)):
            kernel.call_at(when, lambda i=index: log.append(i))
        kernel.run()
        logs[scheduler] = log
    assert logs["heap"] == logs["calendar"] == sorted(logs["heap"])


#: A horizon-split program: per-segment event offsets (relative to the
#: segment's start clock) plus the horizon gap to the next ``run(until)``
#: call.  Events scheduled between runs can legally sort before an event
#: popped-then-stashed at an earlier horizon — the regression surface.
_SEGMENTS = st.lists(
    st.tuples(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=0,
            max_size=8,
        ),
        st.floats(min_value=0.1, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=8,
)


@given(segments=_SEGMENTS)
@settings(max_examples=60, deadline=None)
def test_horizon_split_runs_dispatch_in_global_order(segments):
    """Interleaving ``run(until=...)`` with fresh scheduling must still
    dispatch every event in global ``(time, priority, seq)`` order.

    Checked against a sorted ground-truth oracle, not just heap-vs-
    calendar equality: a held stash/head served out of order is a bug
    both schedulers would share, so equality alone cannot catch it.
    """
    logs = {}
    for scheduler in SCHEDULERS:
        kernel = Kernel(seed=3, scheduler=scheduler)
        log = []
        expected = []
        for offsets, gap in segments:
            for offset, priority in offsets:
                when = kernel.now + offset
                handle = kernel.call_at(
                    when, lambda: log.append(kernel.now), priority=priority
                )
                expected.append((when, priority, handle.seq))
            kernel.run(until=kernel.now + gap)
        kernel.run()
        assert log == sorted(log), f"{scheduler}: clock moved backwards"
        assert log == [time for time, __, __ in sorted(expected)]
        assert kernel.pending_events == 0
        logs[scheduler] = log
    assert logs["heap"] == logs["calendar"]


def test_env_var_selects_scheduler(monkeypatch):
    from repro.sim import kernel as kernel_mod

    monkeypatch.setenv(kernel_mod.SCHEDULER_ENV, "calendar")
    kernel = Kernel(seed=0)
    assert type(kernel._sched).__name__ == "CalendarQueue"
    monkeypatch.setenv(kernel_mod.SCHEDULER_ENV, "heap")
    assert type(Kernel(seed=0)._sched).__name__ == "_HeapScheduler"
