"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import ClockError, DeadlockError
from repro.sim.kernel import SCHEDULERS, Kernel


def test_clock_starts_at_zero():
    kernel = Kernel()
    assert kernel.now == 0.0


def test_events_fire_in_time_order():
    kernel = Kernel()
    fired = []
    kernel.call_at(2.0, lambda: fired.append("b"))
    kernel.call_at(1.0, lambda: fired.append("a"))
    kernel.call_at(3.0, lambda: fired.append("c"))
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    kernel = Kernel()
    fired = []
    for name in "abcde":
        kernel.call_at(1.0, lambda n=name: fired.append(n))
    kernel.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_sequence():
    kernel = Kernel()
    fired = []
    kernel.call_at(1.0, lambda: fired.append("low"), priority=5)
    kernel.call_at(1.0, lambda: fired.append("high"), priority=0)
    kernel.run()
    assert fired == ["high", "low"]


def test_call_later_is_relative_to_now():
    kernel = Kernel()
    times = []
    kernel.call_at(5.0, lambda: kernel.call_later(2.5, lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [7.5]


def test_scheduling_in_the_past_raises():
    kernel = Kernel()
    kernel.call_at(10.0, lambda: None)
    kernel.run()
    with pytest.raises(ClockError):
        kernel.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    kernel = Kernel()
    with pytest.raises(ClockError):
        kernel.call_later(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    kernel = Kernel()
    fired = []
    event = kernel.call_at(1.0, lambda: fired.append("x"))
    event.cancel()
    kernel.run()
    assert fired == []


def test_cancel_is_idempotent():
    kernel = Kernel()
    event = kernel.call_at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    kernel.run()


def test_run_until_time_bound_stops_early_and_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.call_at(1.0, lambda: fired.append(1))
    kernel.call_at(10.0, lambda: fired.append(10))
    kernel.run(until=5.0)
    assert fired == [1]
    assert kernel.now == 5.0
    kernel.run()
    assert fired == [1, 10]


def test_run_max_events_budget():
    kernel = Kernel()
    fired = []
    for i in range(10):
        kernel.call_at(float(i), lambda i=i: fired.append(i))
    kernel.run(max_events=3)
    assert fired == [0, 1, 2]


def test_run_until_predicate():
    kernel = Kernel()
    counter = {"n": 0}

    def bump():
        counter["n"] += 1
        if counter["n"] < 5:
            kernel.call_later(1.0, bump)

    kernel.call_later(1.0, bump)
    kernel.run_until(lambda: counter["n"] >= 3)
    assert counter["n"] == 3


def test_run_until_raises_on_drained_queue():
    kernel = Kernel()
    kernel.call_at(1.0, lambda: None)
    with pytest.raises(DeadlockError):
        kernel.run_until(lambda: False)


def test_run_until_raises_on_timeout():
    kernel = Kernel()

    def reschedule():
        kernel.call_later(100.0, reschedule)

    kernel.call_later(100.0, reschedule)
    with pytest.raises(DeadlockError):
        kernel.run_until(lambda: False, timeout=500.0)


def test_events_processed_counts():
    kernel = Kernel()
    for i in range(4):
        kernel.call_at(float(i), lambda: None)
    kernel.run()
    assert kernel.events_processed == 4


def test_pending_events_excludes_cancelled():
    kernel = Kernel()
    kernel.call_at(1.0, lambda: None)
    event = kernel.call_at(2.0, lambda: None)
    event.cancel()
    assert kernel.pending_events == 1


def test_nested_scheduling_during_event():
    kernel = Kernel()
    fired = []

    def outer():
        fired.append("outer")
        kernel.call_later(0.0, lambda: fired.append("inner"))

    kernel.call_at(1.0, outer)
    kernel.call_at(1.0, lambda: fired.append("sibling"))
    kernel.run()
    # inner is scheduled at t=1.0 but after sibling (later sequence number)
    assert fired == ["outer", "sibling", "inner"]


# -- held popped-but-unrun events must re-enter the dispatch merge --------
#
# The run loop holds events it popped but did not run: an event past the
# run(until=...) horizon (the stash) and the scheduler head that lost
# the merge to a ready event.  An event scheduled afterwards that sorts
# before a held one must still dispatch first — regression tests for a
# bug where the held event was served unconditionally, dispatching after
# it and rolling the clock backwards.


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_event_scheduled_between_runs_beats_horizon_stash(scheduler):
    kernel = Kernel(scheduler=scheduler)
    fired = []
    kernel.call_at(5.0, lambda: fired.append(("late", kernel.now)))
    kernel.run(until=3.0)
    assert kernel.now == 3.0
    kernel.call_at(4.0, lambda: fired.append(("early", kernel.now)))
    kernel.run()
    assert fired == [("early", 4.0), ("late", 5.0)]
    assert kernel.now == 5.0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_ready_event_scheduled_between_runs_beats_horizon_stash(scheduler):
    # The between-runs event lands on the ready deque (time == now,
    # default priority), not the scheduler — same ordering requirement.
    kernel = Kernel(scheduler=scheduler)
    fired = []
    kernel.call_at(5.0, lambda: fired.append(("late", kernel.now)))
    kernel.run(until=3.0)
    kernel.call_at(3.0, lambda: fired.append(("now", kernel.now)))
    kernel.run()
    assert fired == [("now", 3.0), ("late", 5.0)]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_callback_schedule_beats_held_scheduler_head(scheduler):
    # While the t=5 head is held by the merge (a ready event won), the
    # ready callback schedules t=1 work; it must run before the head.
    kernel = Kernel(scheduler=scheduler)
    fired = []

    def ready_callback():
        fired.append(("ready", kernel.now))
        kernel.call_later(1.0, lambda: fired.append(("timer", kernel.now)))

    kernel.call_at(5.0, lambda: fired.append(("head", kernel.now)))
    kernel.call_at(0.0, ready_callback)
    kernel.run()
    assert fired == [("ready", 0.0), ("timer", 1.0), ("head", 5.0)]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_clock_never_moves_backwards_across_horizon_runs(scheduler):
    kernel = Kernel(scheduler=scheduler)
    observed = []
    for when in (2.0, 4.0, 6.0, 8.0):
        kernel.call_at(when, lambda: observed.append(kernel.now))
    kernel.run(until=3.0)
    kernel.call_at(3.5, lambda: observed.append(kernel.now))
    kernel.run(until=5.0)
    kernel.call_at(5.5, lambda: observed.append(kernel.now))
    kernel.run()
    assert observed == sorted(observed)
    assert observed == [2.0, 3.5, 4.0, 5.5, 6.0, 8.0]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_cancelled_stash_and_undercutting_event_accounting(scheduler):
    # Cancel the stashed horizon event, then undercut it: it must not
    # fire, and counters stay consistent.
    kernel = Kernel(scheduler=scheduler)
    fired = []
    handle = kernel.call_at(5.0, lambda: fired.append("late"))
    kernel.run(until=3.0)
    handle.cancel()
    kernel.call_at(4.0, lambda: fired.append("early"))
    kernel.run()
    assert fired == ["early"]
    assert kernel.pending_events == 0
    assert kernel.events_processed == 1
    assert kernel.events_cancelled == 1
