"""Unit tests for RNG streams, timers, processes and tracing."""

import pytest

from repro.errors import ProcessError
from repro.sim.kernel import Kernel
from repro.sim.process import FunctionProcess, SimProcess
from repro.sim.rng import DeterministicRng
from repro.sim.timers import Timer, TimerWheel
from repro.sim.trace import Tracer


# -- RNG ---------------------------------------------------------------------


def test_same_seed_same_sequence():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_child_streams_are_independent_of_parent_draw_order():
    parent1 = DeterministicRng(7)
    parent2 = DeterministicRng(7)
    parent2.random()  # extra draw on one parent
    child1 = parent1.child("link")
    child2 = parent2.child("link")
    assert [child1.random() for _ in range(5)] == [child2.random() for _ in range(5)]


def test_child_streams_with_different_labels_differ():
    parent = DeterministicRng(7)
    a = parent.child("a")
    b = parent.child("b")
    assert a.random() != b.random()


def test_rng_draw_helpers():
    rng = DeterministicRng(3)
    assert 0 <= rng.randint(0, 10) <= 10
    assert rng.choice(["x"]) == "x"
    assert 1.0 <= rng.uniform(1.0, 2.0) <= 2.0
    assert rng.expovariate(10.0) > 0
    assert 0 <= rng.getrandbits(16) < 2 ** 16
    items = list(range(10))
    rng.shuffle(items)
    assert sorted(items) == list(range(10))
    assert len(rng.sample(range(10), 3)) == 3


# -- Timers --------------------------------------------------------------------


def test_one_shot_timer_fires_once():
    kernel = Kernel()
    fired = []
    timer = Timer(kernel, lambda: fired.append(kernel.now), delay=2.0)
    timer.start()
    kernel.run()
    assert fired == [2.0]


def test_timer_restart_resets_deadline():
    kernel = Kernel()
    fired = []
    timer = Timer(kernel, lambda: fired.append(kernel.now), delay=5.0)
    timer.start()
    kernel.call_at(3.0, timer.start)  # restart at t=3 -> fires at t=8
    kernel.run()
    assert fired == [8.0]


def test_timer_cancel_prevents_fire():
    kernel = Kernel()
    fired = []
    timer = Timer(kernel, lambda: fired.append(1), delay=1.0)
    timer.start()
    timer.cancel()
    kernel.run()
    assert fired == []
    assert not timer.armed


def test_periodic_timer_repeats():
    kernel = Kernel()
    fired = []

    timer = Timer(kernel, lambda: fired.append(kernel.now), delay=1.0, period=1.0)

    timer.start()
    kernel.run(until=4.5)
    assert fired == [1.0, 2.0, 3.0, 4.0]
    timer.cancel()


def test_timer_wheel_cancel_all():
    kernel = Kernel()
    fired = []
    wheel = TimerWheel(kernel, owner="d1")
    wheel.add("a", lambda: fired.append("a"), delay=1.0)
    wheel.add("b", lambda: fired.append("b"), delay=2.0)
    wheel.start("a")
    wheel.start("b")
    wheel.cancel_all()
    kernel.run()
    assert fired == []


def test_timer_wheel_replaces_same_name():
    kernel = Kernel()
    fired = []
    wheel = TimerWheel(kernel)
    wheel.add("t", lambda: fired.append("old"), delay=1.0)
    wheel.start("t")
    wheel.add("t", lambda: fired.append("new"), delay=2.0)
    wheel.start("t")
    kernel.run()
    assert fired == ["new"]


def test_timer_wheel_shutdown_rejects_new_timers():
    kernel = Kernel()
    wheel = TimerWheel(kernel, owner="x")
    wheel.shutdown()
    with pytest.raises(ProcessError):
        wheel.add("t", lambda: None, delay=1.0)


# -- Processes ------------------------------------------------------------------


def test_process_receives_messages_while_alive():
    kernel = Kernel()
    proc = FunctionProcess(kernel, "p1")
    proc.start()
    proc.deliver("p2", "hello")
    assert proc.inbox == [("p2", "hello")]


def test_crashed_process_drops_messages():
    kernel = Kernel()
    proc = FunctionProcess(kernel, "p1")
    proc.start()
    proc.crash()
    proc.deliver("p2", "hello")
    assert proc.inbox == []
    assert not proc.alive


def test_crash_cancels_timers():
    kernel = Kernel()
    fired = []
    proc = FunctionProcess(kernel, "p1")
    proc.start()
    proc.timers.add("hb", lambda: fired.append(1), delay=1.0)
    proc.timers.start("hb")
    proc.crash()
    kernel.run()
    assert fired == []


def test_recover_restores_delivery():
    kernel = Kernel()
    proc = FunctionProcess(kernel, "p1")
    proc.start()
    proc.crash()
    proc.recover()
    proc.deliver("p2", "back")
    assert proc.inbox == [("p2", "back")]


def test_recover_requires_crash_first():
    kernel = Kernel()
    proc = FunctionProcess(kernel, "p1")
    proc.start()
    with pytest.raises(ProcessError):
        proc.recover()


def test_recover_before_start_raises():
    kernel = Kernel()
    proc = FunctionProcess(kernel, "p1")
    with pytest.raises(ProcessError):
        proc.recover()


def test_after_callback_suppressed_when_crashed():
    kernel = Kernel()
    fired = []
    proc = FunctionProcess(kernel, "p1")
    proc.start()
    proc.after(1.0, lambda: fired.append(1))
    proc.crash()
    kernel.run()
    assert fired == []


def test_start_is_idempotent():
    kernel = Kernel()
    starts = []
    proc = FunctionProcess(kernel, "p1", on_start=lambda: starts.append(1))
    proc.start()
    proc.start()
    assert starts == [1]


# -- Tracer ----------------------------------------------------------------------


def test_tracer_records_and_queries():
    tracer = Tracer()
    tracer.record("a.x", n=1)
    tracer.record("a.y", n=2)
    tracer.record("b.z", n=3)
    assert tracer.count("a.x") == 1
    assert len(tracer.with_prefix("a.")) == 2
    assert tracer.of_kind("b.z")[0]["n"] == 3
    assert tracer.of_kind("b.z")[0].get("missing", "d") == "d"
    assert len(tracer) == 3
    tracer.clear()
    assert len(tracer) == 0


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    tracer.record("a", n=1)
    assert len(tracer) == 0


def test_tracer_keep_filter():
    tracer = Tracer(keep=lambda kind: kind.startswith("net"))
    tracer.record("net.send")
    tracer.record("kernel.event")
    assert len(tracer) == 1


def test_kernel_traces_events_when_enabled():
    tracer = Tracer()
    kernel = Kernel(tracer=tracer)
    kernel.call_at(1.0, lambda: None, label="tick")
    kernel.run()
    events = tracer.of_kind("kernel.event")
    assert len(events) == 1
    assert events[0]["label"] == "tick"
