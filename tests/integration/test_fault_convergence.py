"""Randomized fault-schedule convergence: the asynchronous-failure model.

Property: under ANY schedule of crashes, recoveries, partitions and
heals, once the network is healed and all daemons are up, the deployment
converges to a single view with consistent group tables, and secure
groups re-key and carry traffic again.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fault import FaultSchedule
from repro.net.fault import FaultInjector
from repro.spread.monitor import Monitor

from tests.secure.conftest import SecureHarness
from tests.spread.conftest import Cluster


def random_schedule(draw, daemon_names, duration=3.0):
    """Build a random-but-valid fault schedule via hypothesis draws."""
    schedule = FaultSchedule()
    crashed = set()
    action_count = draw(st.integers(min_value=1, max_value=6))
    t = 0.3
    for __ in range(action_count):
        t += draw(st.floats(min_value=0.1, max_value=0.6))
        kind = draw(st.sampled_from(["crash", "recover", "partition", "heal"]))
        if kind == "crash":
            candidates = [d for d in daemon_names if d not in crashed]
            if len(candidates) <= 1:
                continue  # keep at least one daemon up
            target = draw(st.sampled_from(candidates))
            crashed.add(target)
            schedule.crash(t, target)
        elif kind == "recover":
            if not crashed:
                continue
            target = draw(st.sampled_from(sorted(crashed)))
            crashed.discard(target)
            schedule.recover(t, target)
        elif kind == "partition":
            split = draw(st.integers(min_value=1, max_value=len(daemon_names) - 1))
            schedule.partition(
                t, [list(daemon_names[:split]), list(daemon_names[split:])]
            )
        else:
            schedule.heal(t)
    # Final repair: recover everyone, heal the network.
    final = t + 0.5
    for daemon in sorted(crashed):
        schedule.recover(final, daemon)
    schedule.heal(final + 0.1)
    return schedule


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_daemons_always_reconverge(data):
    cluster = Cluster(daemon_count=4, seed=61)
    cluster.settle()
    names = tuple(sorted(cluster.daemons))
    schedule = random_schedule(data.draw, names)
    injector = FaultInjector(
        cluster.kernel, cluster.network, dict(cluster.daemons)
    )
    injector.arm(schedule)
    cluster.run(6.0)  # let every action fire
    cluster.settle(timeout=60)
    monitor = Monitor(cluster.daemons, cluster.network)
    status = monitor.snapshot()
    assert status.converged, schedule.describe()
    assert status.alive_count == 4


@pytest.mark.parametrize("module", ["cliques", "ckd", "tgdh"])
@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_secure_group_recovers_from_random_faults(module, data):
    h = SecureHarness(seed=67)
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"], timeout=60)
    b.join("g", module=module)
    h.wait_view(["a", "b"], timeout=60)
    names = tuple(sorted(h.cluster.daemons))
    # Only partition/heal faults here: client connections do not survive
    # a daemon crash (by design), so crash scenarios are covered by the
    # dedicated integration test instead.
    schedule = FaultSchedule()
    t = 0.2
    for __ in range(data.draw(st.integers(min_value=1, max_value=4))):
        t += data.draw(st.floats(min_value=0.2, max_value=0.8))
        split = data.draw(st.integers(min_value=1, max_value=len(names) - 1))
        schedule.partition(t, [list(names[:split]), list(names[split:])])
        t += data.draw(st.floats(min_value=0.2, max_value=0.8))
        schedule.heal(t)
    injector = FaultInjector(h.kernel, h.network, dict(h.cluster.daemons))
    injector.arm(schedule)
    h.run(t + 1.0)
    h.wait_view(["a", "b"], timeout=120)
    a.send("g", b"after the chaos")
    h.run_until(lambda: b"after the chaos" in h.payloads_of("b"), timeout=60)
