"""End-to-end integration: the whole stack under combined stresses."""

import pytest

from repro.crypto.dh import DHParams
from repro.net.link import LinkModel
from repro.secure.daemon_model import secure_all_daemons
from repro.secure.events import SecureDataEvent, SecureMembershipEvent
from repro.secure.session import CryptoCostModel

from tests.secure.conftest import SecureHarness


def test_secure_group_survives_daemon_crash_and_recovery():
    """A daemon hosting a member crashes; the group re-keys without it,
    then the daemon recovers and the member can re-join securely."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    c.join("g")
    h.wait_view(["a", "b", "c"])
    h.cluster.daemons["d2"].crash()
    h.wait_view(["a", "b"], timeout=60)
    a.send("g", b"down to two")
    h.run_until(lambda: b"down to two" in h.payloads_of("b"))
    # Daemon recovers; a fresh member joins from it.
    h.cluster.daemons["d2"].recover()
    h.cluster.settle()
    d = h.member("d", "d2")
    d.join("g")
    h.wait_view(["a", "b", "d"], timeout=60)
    b.send("g", b"welcome back machine three")
    h.run_until(lambda: b"welcome back machine three" in h.payloads_of("d"))


def test_secure_group_over_lossy_network():
    """10% datagram loss: retransmission + the agreement layer must
    still converge and deliver protected data."""
    h = SecureHarness(seed=17)
    h.cluster.network.default_link = LinkModel(
        base_latency=0.0003, loss_rate=0.10
    )
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"], timeout=120)
    b.join("g")
    h.wait_view(["a", "b"], timeout=120)
    for i in range(5):
        a.send("g", f"lossy-{i}".encode())
    h.run_until(
        lambda: all(
            f"lossy-{i}".encode() in h.payloads_of("b") for i in range(5)
        ),
        timeout=120,
    )
    # FIFO per sender preserved despite losses.
    received = [p for p in h.payloads_of("b") if p.startswith(b"lossy-")]
    assert received == [f"lossy-{i}".encode() for i in range(5)]


def test_client_and_daemon_models_stacked():
    """Defense in depth: per-group keys (client model) on top of the
    daemon-group key (daemon model) at the same time."""
    h = SecureHarness(seed=23)
    layers = secure_all_daemons(
        h.cluster.daemons, params=DHParams.tiny_test(), seed=23
    )
    h.cluster.settle()
    h.run(1.0)
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"], timeout=60)
    b.join("g")
    h.wait_view(["a", "b"], timeout=60)
    a.send("g", b"doubly sealed")
    h.run_until(lambda: b"doubly sealed" in h.payloads_of("b"), timeout=60)
    assert all(layer.ready for layer in layers.values())


def test_many_groups_concurrently():
    """Several secure groups with different modules share the stack."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    groups = [("g0", "cliques"), ("g1", "ckd"), ("g2", "cliques"), ("g3", "ckd")]
    for group, module in groups:
        a.join(group, module=module)
        h.run(1.0)
        b.join(group, module=module)
    for group, __ in groups:
        h.wait_view(["a", "b"], group=group, timeout=60)
    for group, __ in groups:
        a.send(group, f"hello {group}".encode())
    h.run_until(
        lambda: all(
            f"hello {g}".encode() in h.payloads_of("b", g) for g, __ in groups
        ),
        timeout=60,
    )
    # Keys are independent across groups.
    fingerprints = {
        h.members["a"].sessions[g]._session_keys.fingerprint() for g, __ in groups
    }
    assert len(fingerprints) == len(groups)


def test_churn_soak():
    """A soak of joins/leaves/partitions; the group always re-converges
    with a fresh shared key and working data flow."""
    h = SecureHarness(seed=29)
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"], timeout=60)
    b.join("g")
    h.wait_view(["a", "b"], timeout=60)
    fingerprints = set()
    for round_index in range(3):
        name = f"temp{round_index}"
        temp = h.member(name, "d2")
        temp.join("g")
        h.wait_view(["a", "b", name], timeout=120)
        fingerprints.add(h.members["a"].sessions["g"]._session_keys.fingerprint())
        h.cluster.network.partition([["d0", "d1"], ["d2"]])
        h.wait_view(["a", "b"], timeout=120)
        h.cluster.network.heal()
        h.wait_view(["a", "b", name], timeout=120)
        temp.leave("g")
        h.wait_view(["a", "b"], timeout=120)
        temp.disconnect()
        h.run(0.1)
        fingerprints.add(h.members["a"].sessions["g"]._session_keys.fingerprint())
    a.send("g", b"survived the churn")
    h.run_until(lambda: b"survived the churn" in h.payloads_of("b"), timeout=60)
    assert len(fingerprints) >= 5  # keys kept rotating


def test_figure3_cost_model_integration():
    """With a crypto cost model attached, secure-view latency grows with
    the serial exponentiation count (sanity for the Figure 3 pipeline)."""
    h = SecureHarness(cost_model=CryptoCostModel(0.002))
    a = h.member("a", "d0")
    start = h.kernel.now
    a.join("g")
    h.wait_view(["a"])
    b = h.member("b", "d1")
    start = h.kernel.now
    b.join("g")
    h.wait_view(["a", "b"])
    two_member_join = h.kernel.now - start
    c = h.member("c", "d2")
    start = h.kernel.now
    c.join("g")
    h.wait_view(["a", "b", "c"])
    three_member_join = h.kernel.now - start
    # 3n model: joins get more expensive as the group grows.
    assert three_member_join > two_member_join


def test_secure_views_consistent_across_members():
    """Every member sees the same sequence of (members, fingerprint)
    secure views — the layer's equivalent of view synchrony."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    c.join("g")
    h.wait_view(["a", "b", "c"])
    c.leave("g")
    h.wait_view(["a", "b"])

    def history(member):
        return [
            (tuple(sorted(str(m) for m in e.members)), e.key_fingerprint)
            for e in h.members[member].queue
            if isinstance(e, SecureMembershipEvent)
        ]

    history_a = history("a")
    history_b = history("b")
    # b joined one view later; from then on the histories must agree.
    assert history_a[-len(history_b):] == history_b
