"""The shipped examples must keep working (each main() runs clean)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out  # every example prints a final ... OK line
