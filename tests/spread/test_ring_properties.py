"""Property-based tests for the ring engine and multi-way partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spread.messages import DataMessage, KIND_APP
from repro.spread.ring import RingPipeline, RingToken
from repro.types import ServiceType, ViewId

from tests.spread.conftest import Cluster

VIEW = ViewId(1, 1, "a")


def sequenced(global_seq, payload, service=ServiceType.AGREED):
    return DataMessage(
        sender_daemon="b", view_id=VIEW, seq=global_seq, lamport=global_seq,
        service=service, kind=KIND_APP, group="g", origin=None,
        origin_seq=global_seq, payload=payload,
    )


@settings(max_examples=50, deadline=None)
@given(order=st.permutations(list(range(10))))
def test_ring_delivery_order_invariant_under_arrival_order(order):
    """However sequenced broadcasts arrive, delivery is in global
    sequence order."""
    delivered = []
    pipeline = RingPipeline(
        VIEW, ("a", "b", "c"), "a", delivered.append,
        send=lambda d, p: None, schedule=lambda d, fn: None,
    )
    messages = [sequenced(i + 1, f"m{i + 1}") for i in range(10)]
    for index in order:
        pipeline.ingest(messages[index])
    assert [m.payload for m in delivered] == [f"m{i + 1}" for i in range(10)]


@settings(max_examples=30, deadline=None)
@given(
    order1=st.permutations(list(range(8))),
    order2=st.permutations(list(range(8))),
)
def test_two_ring_receivers_identical_sequences(order1, order2):
    out1, out2 = [], []
    p1 = RingPipeline(VIEW, ("a", "b", "c"), "a", out1.append,
                      send=lambda d, p: None, schedule=lambda d, fn: None)
    p2 = RingPipeline(VIEW, ("c", "b", "x"), "x", out2.append,
                      send=lambda d, p: None, schedule=lambda d, fn: None)
    messages = [sequenced(i + 1, f"m{i + 1}") for i in range(8)]
    for i in order1:
        p1.ingest(messages[i])
    for i in order2:
        p2.ingest(messages[i])
    assert [m.payload for m in out1] == [m.payload for m in out2]


@settings(max_examples=25, deadline=None)
@given(duplicates=st.lists(st.integers(0, 5), min_size=1, max_size=20))
def test_ring_duplicate_ingest_idempotent(duplicates):
    delivered = []
    pipeline = RingPipeline(
        VIEW, ("a", "b"), "a", delivered.append,
        send=lambda d, p: None, schedule=lambda d, fn: None,
    )
    messages = [sequenced(i + 1, f"m{i + 1}") for i in range(6)]
    for message in messages:
        pipeline.ingest(message)
    for index in duplicates:
        pipeline.ingest(messages[index])
    assert len(delivered) == 6


def test_ring_flush_with_gap_skips_lost_sequence():
    delivered = []
    pipeline = RingPipeline(
        VIEW, ("a", "b"), "a", delivered.append,
        send=lambda d, p: None, schedule=lambda d, fn: None,
    )
    pipeline.ingest(sequenced(1, "one"))
    pipeline.ingest(sequenced(3, "three"))  # 2 lost forever
    pipeline.flush_with([])
    assert [m.payload for m in delivered] == ["one", "three"]


# -- multi-way partitions over the full stack ----------------------------------------


def test_three_way_partition_and_full_merge():
    cluster = Cluster(daemon_count=5, seed=121)
    cluster.settle()
    cluster.network.partition([["d0", "d1"], ["d2", "d3"], ["d4"]])
    cluster.settle_components(["d0", "d1"], ["d2", "d3"], ["d4"], timeout=60)
    assert set(cluster.daemons["d0"].view_members) == {"d0", "d1"}
    assert set(cluster.daemons["d2"].view_members) == {"d2", "d3"}
    assert cluster.daemons["d4"].view_members == ("d4",)
    cluster.network.heal()
    cluster.settle(timeout=60)
    assert all(len(d.view_members) == 5 for d in cluster.alive_daemons())


def test_three_way_partition_with_ring_engine():
    cluster = Cluster(daemon_count=5, seed=123, ordering="ring")
    cluster.settle()
    cluster.network.partition([["d0"], ["d1", "d2"], ["d3", "d4"]])
    cluster.settle_components(["d0"], ["d1", "d2"], ["d3", "d4"], timeout=60)
    cluster.network.heal()
    cluster.settle(timeout=60)
    assert all(len(d.view_members) == 5 for d in cluster.alive_daemons())
