"""Sender-side coalescing (Packed envelopes) and batched delivery.

The invariant under test throughout: packing changes how many wire
datagrams and kernel events the data plane costs, never what clients
observe — payloads, order and multiplicity are identical to the
unpacked path.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpreadError
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.sim.trace import Tracer
from repro.spread.client import SpreadClient
from repro.spread.config import PACKING_ENV, SpreadConfig, _packing_default
from repro.spread.daemon import SpreadDaemon
from repro.spread.events import DataEvent
from repro.spread.messages import DataMessage, Hello, KIND_APP, Packed
from repro.types import ServiceType, ViewId

from tests.spread.conftest import Cluster

#: Latency-only link: no bandwidth, jitter or fault rates, so the
#: packed and unpacked runs consume the RNG identically and delivery
#: order can be compared byte for byte.
DETERMINISTIC_LINK = LinkModel(base_latency=0.0002)


def payloads_of(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


class _QuietCluster:
    """Minimal harness on a deterministic link for on/off A-B runs."""

    def __init__(self, packing: bool, seed: int = 5, daemon_count: int = 3,
                 **overrides):
        self.kernel = Kernel(seed=seed, tracer=Tracer(enabled=False))
        self.network = Network(self.kernel, default_link=DETERMINISTIC_LINK)
        names = tuple(f"d{i}" for i in range(daemon_count))
        self.config = SpreadConfig(daemons=names, packing=packing, **overrides)
        self.daemons = {}
        for name in names:
            daemon = SpreadDaemon(self.kernel, name, self.network, self.config)
            daemon.start()
            self.daemons[name] = daemon
        self.clients = []
        self.kernel.run_until(
            lambda: all(
                set(d.view_members) == set(names) for d in self.daemons.values()
            ),
            timeout=30,
        )
        for index, name in enumerate(names):
            client = SpreadClient(self.kernel, f"m{index}", self.daemons[name])
            client.connect()
            client.join("g")
            self.clients.append(client)
        self.kernel.run(until=self.kernel.now + 1.0)


def _flood(cluster: _QuietCluster, rounds: int = 3, burst: int = 5):
    clients = cluster.clients
    total = rounds * burst * len(clients)
    for round_index in range(rounds):
        for sender_index, client in enumerate(clients):
            for message_index in range(burst):
                client.multicast(
                    ServiceType.AGREED, "g",
                    f"{sender_index}:{round_index}:{message_index}".encode(),
                )
        cluster.kernel.run(until=cluster.kernel.now + 0.05)
    cluster.kernel.run_until(
        lambda: all(len(payloads_of(c)) == total for c in clients),
        timeout=60,
    )
    return [payloads_of(c) for c in clients]


# -- envelope units ----------------------------------------------------------------


def _message(seq: int, payload: bytes) -> DataMessage:
    return DataMessage(
        sender_daemon="d0",
        view_id=ViewId(epoch=1, counter=1, coordinator="d0"),
        seq=seq,
        lamport=seq,
        service=ServiceType.AGREED,
        kind=KIND_APP,
        group="g",
        origin=None,
        origin_seq=seq,
        payload=payload,
    )


def test_packed_wire_size_never_below_members():
    messages = tuple(_message(i + 1, bytes(8)) for i in range(4))
    envelope = Packed(sender="d0", view_id=messages[0].view_id,
                      messages=messages)
    assert envelope.wire_size() >= sum(m.wire_size() for m in messages)


@settings(max_examples=60, deadline=None)
@given(payloads=st.lists(st.binary(min_size=0, max_size=64),
                         min_size=1, max_size=16))
def test_pack_unpack_roundtrip_property(payloads):
    """Packing then unwrapping yields the same members in send order —
    including across the (pickle) serialization boundary."""
    messages = tuple(
        _message(i + 1, payload) for i, payload in enumerate(payloads)
    )
    envelope = Packed(sender="d0", view_id=messages[0].view_id,
                      messages=messages)
    assert envelope.messages == messages
    clone = pickle.loads(pickle.dumps(envelope))
    assert clone.messages == messages
    assert [m.payload for m in clone.messages] == payloads


# -- configuration -----------------------------------------------------------------


def test_pack_budget_validation():
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a",), pack_max_messages=0)
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a",), pack_max_bytes=0)
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a",), pack_delay=-0.1)


def test_packing_env_switch(monkeypatch):
    for value, expected in (
        ("1", True), ("on", True), ("TRUE", True), (" yes ", True),
        ("", False), ("0", False), ("off", False), ("no", False),
    ):
        monkeypatch.setenv(PACKING_ENV, value)
        assert _packing_default() is expected
        assert SpreadConfig(daemons=("a",)).packing is expected
    monkeypatch.delenv(PACKING_ENV)
    assert _packing_default() is False


# -- integration: equivalence and attribution --------------------------------------


def test_packed_flood_coalesces_and_matches_unpacked_order():
    unpacked = _QuietCluster(packing=False, seed=5)
    packed = _QuietCluster(packing=True, seed=5)
    baseline = _flood(unpacked)
    coalesced = _flood(packed)
    # Every client sees the exact payload sequence of the unpacked run.
    assert coalesced == baseline
    # And the wire actually coalesced: envelopes carried multiple
    # messages and the datagram count dropped.
    packed_messages = sum(d.packed_messages for d in packed.daemons.values())
    packed_datagrams = sum(
        d.packed_datagrams for d in packed.daemons.values()
    )
    assert packed_datagrams > 0
    assert packed_messages > packed_datagrams
    assert packed.network.datagrams_sent < unpacked.network.datagrams_sent


def test_single_message_flushes_unwrapped():
    cluster = _QuietCluster(packing=True, seed=6)
    client = cluster.clients[0]
    client.multicast(ServiceType.AGREED, "g", b"lone")
    cluster.kernel.run_until(
        lambda: b"lone" in payloads_of(cluster.clients[1]), timeout=30
    )
    # A buffer holding one message transmits the raw DataMessage — the
    # wire is byte-identical to the unpacked path, so no envelope counts.
    assert all(d.packed_datagrams == 0 for d in cluster.daemons.values())


def test_unreliable_bypasses_packing():
    cluster = _QuietCluster(packing=True, seed=7)
    client = cluster.clients[0]
    client.multicast(ServiceType.UNRELIABLE, "g", b"fire-and-forget")
    cluster.kernel.run_until(
        lambda: b"fire-and-forget" in payloads_of(cluster.clients[2]),
        timeout=30,
    )
    assert all(d.packed_datagrams == 0 for d in cluster.daemons.values())


def test_delivery_run_counters_attributed():
    cluster = _QuietCluster(packing=True, seed=8)
    _flood(cluster, rounds=2, burst=6)
    runs = sum(d.delivery_runs for d in cluster.daemons.values())
    delivered = sum(d.delivered_in_runs for d in cluster.daemons.values())
    longest = max(d.longest_run for d in cluster.daemons.values())
    assert runs > 0
    assert delivered >= runs
    assert longest >= 2  # bursts release as multi-message runs


def test_hello_never_advertises_unsent_sequences():
    """Regression: a coalescing daemon must transmit buffered data before
    any hello advertising those sequence numbers, or receivers discard
    the horizon extension and delivery stalls until the next heartbeat."""
    cluster = Cluster(daemon_count=3, seed=21, packing=True)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run(1.0)
    sent = []
    original_send = cluster.network.send

    def recording_send(source, destination, payload, size=None):
        sent.append((source, payload))
        return original_send(source, destination, payload, size)

    cluster.network.send = recording_send
    for i in range(8):
        a.multicast(ServiceType.AGREED, "g", b"m%d" % i)
    cluster.run_until(lambda: len(payloads_of(b)) == 8, timeout=30)
    max_data_seq = 0
    for source, payload in sent:
        if source != "d0":
            continue
        if isinstance(payload, Packed):
            max_data_seq = max(
                max_data_seq, max(m.seq for m in payload.messages)
            )
        elif isinstance(payload, DataMessage) and payload.seq:
            max_data_seq = max(max_data_seq, payload.seq)
        elif isinstance(payload, Hello):
            assert payload.sent_seq <= max_data_seq


def test_view_change_flushes_pack_buffers():
    """Messages buffered when a membership change commits must still
    reach every member of the old view exactly once."""
    cluster = _QuietCluster(packing=True, seed=9)
    sender = cluster.clients[0]
    for i in range(6):
        sender.multicast(ServiceType.AGREED, "g", b"pre%d" % i)
    # Crash a daemon in the same instant the burst is buffered.
    cluster.daemons["d2"].crash()
    cluster.kernel.run_until(
        lambda: all(
            len(payloads_of(c)) == 6 for c in cluster.clients[:2]
        ),
        timeout=60,
    )
    for client in cluster.clients[:2]:
        assert payloads_of(client) == [b"pre%d" % i for i in range(6)]
