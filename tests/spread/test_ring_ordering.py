"""The Totem-style token-ring ordering engine (ordering="ring")."""

import pytest

from repro.net.link import LinkModel
from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.ring import RingPipeline, RingToken
from repro.types import MembershipCause, ServiceType, ViewId

from tests.spread.conftest import Cluster


def ring_cluster(daemon_count=3, seed=81, **overrides):
    cluster = Cluster(daemon_count=daemon_count, seed=seed,
                      ordering="ring", **overrides)
    cluster.settle()
    return cluster


def members_of(client, group="g"):
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def payloads(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


# -- unit: the pipeline alone -----------------------------------------------------


def make_ring(me="a", members=("a", "b", "c"), start=0):
    delivered = []
    sent = []
    scheduled = []  # (delay, callback); unit tests fire them explicitly
    pipeline = RingPipeline(
        ViewId(1, 1, "a"), members, me, delivered.append,
        start_lamport=start,
        send=lambda dest, payload: sent.append((dest, payload)),
        schedule=lambda delay, fn: scheduled.append((delay, fn)),
    )
    pipeline.scheduled = scheduled
    return pipeline, delivered, sent


def test_singleton_ring_delivers_immediately():
    pipeline, delivered, sent = make_ring(members=("a",))
    pipeline.submit(ServiceType.AGREED, "app", "g", None, 1, "x")
    assert [m.payload for m in delivered] == ["x"]
    assert sent == []  # nobody to send to


def test_token_sequences_pending_messages():
    pipeline, delivered, sent = make_ring()
    pipeline.submit(ServiceType.AGREED, "app", "g", None, 1, "one")
    pipeline.submit(ServiceType.AGREED, "app", "g", None, 2, "two")
    assert delivered == []  # waiting for the token
    token = RingToken(ViewId(1, 1, "a"), round=1, seq=0,
                      aru={"a": 0, "b": 0, "c": 0}, rtr=())
    pipeline.on_token(token)
    assert [m.payload for m in delivered] == ["one", "two"]
    broadcasts = [p for dest, p in sent if dest is None]
    assert len(broadcasts) == 2
    tokens = [p for dest, p in sent if isinstance(p, RingToken)]
    assert tokens and tokens[-1].seq == 2


def test_duplicate_token_ignored():
    pipeline, delivered, sent = make_ring()
    token = RingToken(ViewId(1, 1, "a"), round=1, seq=0,
                      aru={"a": 0, "b": 0, "c": 0}, rtr=())
    pipeline.on_token(token)
    count = len(sent)
    pipeline.on_token(token)  # replayed
    assert len(sent) == count


def test_out_of_order_broadcasts_held_until_contiguous():
    pipeline, delivered, __ = make_ring()
    from repro.spread.messages import DataMessage

    def msg(global_seq, payload):
        return DataMessage(
            sender_daemon="b", view_id=ViewId(1, 1, "a"), seq=global_seq,
            lamport=global_seq, service=ServiceType.AGREED, kind="app",
            group="g", origin=None, origin_seq=1, payload=payload,
        )

    pipeline.ingest(msg(2, "second"))
    assert delivered == []
    pipeline.ingest(msg(1, "first"))
    assert [m.payload for m in delivered] == ["first", "second"]


def test_unstable_safe_message_blocks_successors():
    pipeline, delivered, __ = make_ring()
    from repro.spread.messages import DataMessage

    def msg(global_seq, payload, service):
        return DataMessage(
            sender_daemon="b", view_id=ViewId(1, 1, "a"), seq=global_seq,
            lamport=global_seq, service=service, kind="app",
            group="g", origin=None, origin_seq=1, payload=payload,
        )

    pipeline.ingest(msg(1, "safe-one", ServiceType.SAFE))
    pipeline.ingest(msg(2, "agreed-two", ServiceType.AGREED))
    assert delivered == []  # safe not yet stable; order preserved
    token = RingToken(ViewId(1, 1, "a"), round=1, seq=2,
                      aru={"a": 2, "b": 2, "c": 2}, rtr=())
    pipeline.on_token(token)
    assert [m.payload for m in delivered] == ["safe-one", "agreed-two"]


def test_token_carries_repair_requests():
    pipeline, delivered, sent = make_ring()
    from repro.spread.messages import DataMessage

    gap = DataMessage(
        sender_daemon="b", view_id=ViewId(1, 1, "a"), seq=2, lamport=2,
        service=ServiceType.AGREED, kind="app", group="g",
        origin=None, origin_seq=1, payload="later",
    )
    pipeline.ingest(gap)  # seq 1 missing
    token = RingToken(ViewId(1, 1, "a"), round=1, seq=2,
                      aru={"a": 0, "b": 2, "c": 0}, rtr=())
    pipeline.on_token(token)
    passed = [p for __, p in sent if isinstance(p, RingToken)][-1]
    assert 1 in passed.rtr


def test_holder_answers_repair_requests():
    pipeline, delivered, sent = make_ring(me="b")
    from repro.spread.messages import DataMessage

    have = DataMessage(
        sender_daemon="b", view_id=ViewId(1, 1, "a"), seq=1, lamport=1,
        service=ServiceType.AGREED, kind="app", group="g",
        origin=None, origin_seq=1, payload="mine",
    )
    pipeline.ingest(have)
    token = RingToken(ViewId(1, 1, "a"), round=2, seq=1,
                      aru={"a": 0, "b": 1, "c": 0}, rtr=(1,))
    pipeline.on_token(token)
    rebroadcast = [
        p for dest, p in sent
        if dest is None and getattr(p, "payload", None) == "mine"
    ]
    assert rebroadcast


# -- full stack over the ring --------------------------------------------------------


def test_ring_cluster_converges():
    cluster = ring_cluster()
    assert all(len(d.view_members) == 3 for d in cluster.alive_daemons())


def test_ring_agreed_total_order():
    cluster = ring_cluster()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(members_of(x) == expected for x in (a, b, c)),
                      timeout=60)
    for i in range(5):
        a.multicast(ServiceType.AGREED, "g", f"a{i}")
        b.multicast(ServiceType.AGREED, "g", f"b{i}")
        c.multicast(ServiceType.AGREED, "g", f"c{i}")
    cluster.run_until(
        lambda: all(len(payloads(x)) == 15 for x in (a, b, c)), timeout=60
    )
    assert payloads(a) == payloads(b) == payloads(c)


def test_ring_safe_delivery():
    cluster = ring_cluster()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"}, timeout=60)
    a.multicast(ServiceType.SAFE, "g", "stable")
    cluster.run_until(lambda: "stable" in payloads(b), timeout=60)
    assert "stable" in payloads(a)


def test_ring_survives_lossy_network():
    cluster = Cluster(daemon_count=3, seed=83, ordering="ring")
    cluster.network.default_link = LinkModel(base_latency=0.0003, loss_rate=0.08)
    cluster.settle(timeout=60)
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"}, timeout=120)
    for i in range(15):
        a.multicast(ServiceType.AGREED, "g", i)
    cluster.run_until(lambda: len(payloads(b)) == 15, timeout=240)
    assert payloads(b) == list(range(15))


def test_ring_partition_and_merge():
    cluster = ring_cluster()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"}, timeout=60)
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: members_of(a) == {"#a#d0"}, timeout=60)
    cluster.run_until(lambda: members_of(b) == {"#b#d1"}, timeout=60)
    cluster.network.heal()
    cluster.run_until(
        lambda: members_of(a) == {"#a#d0", "#b#d1"}
        and members_of(b) == {"#a#d0", "#b#d1"},
        timeout=60,
    )
    a.multicast(ServiceType.AGREED, "g", "post-merge")
    cluster.run_until(lambda: "post-merge" in payloads(b), timeout=60)


def test_ring_daemon_crash_recovery():
    cluster = ring_cluster()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"}, timeout=60)
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]), timeout=60)
    a.multicast(ServiceType.AGREED, "g", "without d2")
    cluster.run_until(lambda: "without d2" in payloads(b), timeout=60)
    cluster.daemons["d2"].recover()
    cluster.settle(timeout=60)
    b.multicast(ServiceType.AGREED, "g", "d2 is back")
    cluster.run_until(lambda: "d2 is back" in payloads(a), timeout=60)


def test_secure_group_over_ring():
    """The whole secure stack rides the ring engine unchanged."""
    from tests.secure.conftest import SecureHarness

    class RingHarness(SecureHarness):
        def __init__(self):
            from repro.crypto.dh import DHParams
            from repro.cliques.directory import KeyDirectory

            self.cluster = Cluster(daemon_count=3, seed=85, ordering="ring")
            self.cluster.settle()
            self.params = DHParams.tiny_test()
            self.directory = KeyDirectory()
            self.members = {}
            self.cost_model = None
            self._seed = 85

    h = RingHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"], timeout=60)
    b.join("g")
    h.wait_view(["a", "b"], timeout=60)
    a.send("g", b"sealed over the ring")
    h.run_until(lambda: b"sealed over the ring" in h.payloads_of("b"), timeout=60)
