"""Flush-layer hold paths: early markers and post-marker data, driven
through a stub Spread client for precise sequencing."""

import pytest

from repro.spread.events import (
    DataEvent,
    FlushRequestEvent,
    GroupViewId,
    MembershipEvent,
)
from repro.spread.flush import FlushClient, _FlushData, _FlushMarker
from repro.types import (
    DaemonId,
    GroupId,
    MembershipCause,
    ProcessId,
    ServiceType,
    ViewId,
)


class StubClient:
    """Captures sends; events are injected via the registered callback."""

    def __init__(self, me="#me#d0"):
        self.pid = ProcessId.parse(me)
        self.sent = []
        self._callbacks = []

    def on_event(self, callback):
        self._callbacks.append(callback)

    def inject(self, event):
        for callback in self._callbacks:
            callback(event)

    def join(self, group):
        self.sent.append(("join", group))

    def leave(self, group):
        self.sent.append(("leave", group))

    def disconnect(self):
        self.sent.append(("disconnect", None))

    def multicast(self, service, group, payload):
        self.sent.append(("multicast", group, payload))

    def unicast(self, service, target, payload):
        self.sent.append(("unicast", str(target), payload))


def membership(members, change=1, cause=MembershipCause.JOIN):
    return MembershipEvent(
        group=GroupId("g"),
        view_id=GroupViewId(ViewId(1, 1, "d0"), change),
        members=tuple(ProcessId.parse(m) for m in members),
        cause=cause,
    )


def data(sender, payload):
    return DataEvent(
        group=GroupId("g"),
        sender=ProcessId.parse(sender),
        service=ServiceType.AGREED,
        payload=payload,
        seq=1,
    )


def make_flush():
    raw = StubClient()
    flush = FlushClient(raw, auto_flush=True)
    flush.join("g")
    return raw, flush


def complete_view(raw, flush, members, change):
    event = membership(members, change=change)
    raw.inject(event)
    for member in members:
        raw.inject(data(member, _FlushMarker(event.view_id)))
    return event


def test_early_marker_counts_when_membership_arrives():
    """A peer's flush marker can be delivered before our own membership
    event lands (different daemons install at slightly different times);
    it must still count toward the pending view."""
    raw, flush = make_flush()
    view = membership(["#me#d0", "#peer#d1"], change=1)
    # The peer's marker arrives FIRST.
    raw.inject(data("#peer#d1", _FlushMarker(view.view_id)))
    raw.inject(view)  # now our membership event lands; we auto-flush-ok
    raw.inject(data("#me#d0", _FlushMarker(view.view_id)))
    delivered_views = [e for e in flush.queue if isinstance(e, MembershipEvent)]
    assert len(delivered_views) == 1  # completed using the early marker


def test_post_marker_data_held_until_view_delivered():
    """Data from a member that already flushed the pending view belongs
    to the next view and must not be delivered before it."""
    raw, flush = make_flush()
    complete_view(raw, flush, ["#me#d0"], change=1)
    # Next view is pending: peer joins.
    view2 = membership(["#me#d0", "#peer#d1"], change=2)
    raw.inject(view2)
    raw.inject(data("#peer#d1", _FlushMarker(view2.view_id)))
    # The peer has flushed and (believing the view installed) sends data.
    raw.inject(data("#peer#d1", _FlushData(b"from the new view")))
    payloads = [e.payload for e in flush.queue if isinstance(e, DataEvent)]
    assert b"from the new view" not in payloads  # held
    # Our marker completes the view; held data follows it.
    raw.inject(data("#me#d0", _FlushMarker(view2.view_id)))
    events = list(flush.queue)
    view_index = max(
        i for i, e in enumerate(events) if isinstance(e, MembershipEvent)
    )
    data_index = next(
        i for i, e in enumerate(events)
        if isinstance(e, DataEvent) and e.payload == b"from the new view"
    )
    assert view_index < data_index


def test_pre_marker_data_delivered_in_old_view():
    raw, flush = make_flush()
    complete_view(raw, flush, ["#me#d0", "#peer#d1"], change=1)
    view2 = membership(["#me#d0", "#peer#d1", "#late#d2"], change=2)
    raw.inject(view2)
    # Peer sends data BEFORE its marker: old-view traffic, deliver now.
    raw.inject(data("#peer#d1", _FlushData(b"old view tail")))
    payloads = [e.payload for e in flush.queue if isinstance(e, DataEvent)]
    assert b"old view tail" in payloads


def test_superseded_pending_view_restarts_flush():
    raw, flush = make_flush()
    complete_view(raw, flush, ["#me#d0"], change=1)
    view2 = membership(["#me#d0", "#p1#d1"], change=2)
    raw.inject(view2)
    # Before view2 completes, view3 supersedes it.
    view3 = membership(["#me#d0", "#p1#d1", "#p2#d2"], change=3)
    raw.inject(view3)
    requests = [e for e in flush.queue if isinstance(e, FlushRequestEvent)]
    assert len(requests) == 3  # one per membership event seen
    # Completing view3 (not view2) installs it.
    for member in ("#me#d0", "#p1#d1", "#p2#d2"):
        raw.inject(data(member, _FlushMarker(view3.view_id)))
    views = [e for e in flush.queue if isinstance(e, MembershipEvent)]
    assert len(views[-1].members) == 3


def test_stale_marker_for_superseded_view_ignored():
    raw, flush = make_flush()
    complete_view(raw, flush, ["#me#d0"], change=1)
    view2 = membership(["#me#d0", "#p1#d1"], change=2)
    view3 = membership(["#me#d0", "#p1#d1"], change=3)
    raw.inject(view2)
    raw.inject(view3)
    # Markers for the dead view2 must not complete view3.
    raw.inject(data("#me#d0", _FlushMarker(view2.view_id)))
    raw.inject(data("#p1#d1", _FlushMarker(view2.view_id)))
    views = [e for e in flush.queue if isinstance(e, MembershipEvent)]
    assert len(views) == 1  # still only the singleton view
