"""Large-message fragmentation (SP_scat behaviour)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IllegalMessageError, IllegalServiceError, SpreadError
from repro.spread.config import SpreadConfig
from repro.spread.events import DataEvent
from repro.spread.fragments import MessageFragment, Reassembler, split_payload
from repro.types import ServiceType

from tests.spread.conftest import Cluster


# -- pure units --------------------------------------------------------------------


def test_split_exact_multiple():
    fragments = split_payload(b"abcdef", 2, fragment_id=1)
    assert [f.chunk for f in fragments] == [b"ab", b"cd", b"ef"]
    assert all(f.total == 3 for f in fragments)


def test_split_with_remainder():
    fragments = split_payload(b"abcdefg", 3, fragment_id=1)
    assert [f.chunk for f in fragments] == [b"abc", b"def", b"g"]


def test_split_empty_payload_single_fragment():
    fragments = split_payload(b"", 10, fragment_id=1)
    assert len(fragments) == 1
    assert fragments[0].chunk == b""


def test_split_rejects_bad_size():
    with pytest.raises(IllegalMessageError):
        split_payload(b"x", 0, fragment_id=1)


def test_reassembler_in_order():
    reassembler = Reassembler()
    fragments = split_payload(b"hello world", 4, fragment_id=7)
    result = None
    for fragment in fragments:
        result = reassembler.accept("#a#d0", fragment)
    assert result == b"hello world"
    assert reassembler.pending_count() == 0


def test_reassembler_interleaved_senders():
    reassembler = Reassembler()
    a_parts = split_payload(b"from-a!", 4, fragment_id=1)
    b_parts = split_payload(b"from-b?", 4, fragment_id=1)
    assert reassembler.accept("#a#d0", a_parts[0]) is None
    assert reassembler.accept("#b#d0", b_parts[0]) is None
    assert reassembler.accept("#a#d0", a_parts[1]) == b"from-a!"
    assert reassembler.accept("#b#d0", b_parts[1]) == b"from-b?"


def test_reassembler_rejects_malformed():
    reassembler = Reassembler()
    with pytest.raises(IllegalMessageError):
        reassembler.accept("#a#d0", MessageFragment(1, 5, 3, b"x"))


def test_reassembler_drop_sender():
    reassembler = Reassembler()
    parts = split_payload(b"abcdef", 2, fragment_id=1)
    reassembler.accept("#a#d0", parts[0])
    reassembler.drop_sender("#a#d0")
    assert reassembler.pending_count() == 0


@settings(max_examples=40, deadline=None)
@given(payload=st.binary(min_size=0, max_size=500),
       size=st.integers(min_value=1, max_value=64))
def test_split_reassemble_roundtrip(payload, size):
    reassembler = Reassembler()
    result = None
    for fragment in split_payload(payload, size, fragment_id=3):
        result = reassembler.accept("#x#d0", fragment)
    assert result == payload


# -- adversarial hardening ---------------------------------------------------------


def test_duplicate_fragment_is_idempotent_and_traced():
    from repro.sim.trace import Tracer

    tracer = Tracer()
    reassembler = Reassembler(tracer=tracer)
    parts = split_payload(b"abcdef", 2, fragment_id=1)
    assert reassembler.accept("#a#d0", parts[0]) is None
    assert reassembler.accept("#a#d0", parts[0]) is None  # re-delivery
    assert reassembler.duplicates_ignored == 1
    duplicates = tracer.of_kind("fragments.duplicate")
    assert len(duplicates) == 1
    assert duplicates[0]["sender"] == "#a#d0"
    assert duplicates[0]["index"] == 0
    # The message still completes normally afterwards.
    assert reassembler.accept("#a#d0", parts[1]) is None
    assert reassembler.accept("#a#d0", parts[2]) == b"abcdef"


def test_superseded_fragment_dropped_not_reopened():
    from repro.sim.trace import Tracer

    tracer = Tracer()
    reassembler = Reassembler(tracer=tracer)
    parts = split_payload(b"abcd", 2, fragment_id=3)
    for fragment in parts:
        reassembler.accept("#a#d0", fragment)
    # A straggler duplicate of the now-completed id must not reopen a
    # buffer that can never complete again.
    assert reassembler.accept("#a#d0", parts[0]) is None
    assert reassembler.pending_count() == 0
    assert reassembler.stale_dropped == 1
    stale = tracer.of_kind("fragments.stale_drop")
    assert len(stale) == 1
    assert stale[0]["fragment_id"] == 3
    assert stale[0]["completed_upto"] == 3
    # Fragments of an *older* id are equally superseded.
    old = split_payload(b"zz", 2, fragment_id=2)
    assert reassembler.accept("#a#d0", old[0]) is None
    assert reassembler.stale_dropped == 2


def test_conflicting_re_delivery_raises():
    reassembler = Reassembler()
    reassembler.accept("#a#d0", MessageFragment(1, 0, 2, b"aa"))
    with pytest.raises(IllegalMessageError, match="conflicting re-delivery"):
        reassembler.accept("#a#d0", MessageFragment(1, 0, 2, b"XX"))


def test_fragment_total_change_mid_message_raises():
    reassembler = Reassembler()
    reassembler.accept("#a#d0", MessageFragment(1, 0, 3, b"aa"))
    with pytest.raises(IllegalMessageError, match="total changed"):
        reassembler.accept("#a#d0", MessageFragment(1, 1, 2, b"bb"))


def test_drop_sender_resets_completed_watermark():
    """A departed sender's name may be reused by a fresh connection whose
    fragment ids restart at 1 — the watermark must not outlive them."""
    reassembler = Reassembler()
    for fragment in split_payload(b"abcd", 2, fragment_id=5):
        reassembler.accept("#a#d0", fragment)
    reassembler.drop_sender("#a#d0")
    result = None
    for fragment in split_payload(b"wxyz", 2, fragment_id=1):
        result = reassembler.accept("#a#d0", fragment)
    assert result == b"wxyz"


# -- zero-copy behaviour -----------------------------------------------------------


def test_split_payload_returns_memoryview_slices_without_copying():
    payload = b"abcdefgh" * 16
    fragments = split_payload(payload, 32, fragment_id=1)
    backing = None
    for fragment in fragments:
        assert isinstance(fragment.chunk, memoryview)
        if backing is None:
            backing = fragment.chunk.obj
        # Every chunk is a window onto the same buffer, not a copy.
        assert fragment.chunk.obj is backing
    assert b"".join(bytes(f.chunk) for f in fragments) == payload


def test_reassembler_bytes_copied_counts_payload_once():
    payload = bytes(range(256)) * 8  # 2048 bytes
    reassembler = Reassembler()
    result = None
    for fragment in split_payload(payload, 256, fragment_id=1):
        result = reassembler.accept("#a#d0", fragment)
    assert result == payload
    # Each payload byte lands in the preallocated buffer exactly once.
    assert reassembler.bytes_copied == len(payload)


def test_reassembler_accepts_out_of_order_final_first():
    payload = b"0123456789abcdef!"
    fragments = split_payload(payload, 4, fragment_id=2)
    reassembler = Reassembler()
    result = None
    for fragment in [fragments[-1]] + fragments[:-1]:
        result = reassembler.accept("#a#d0", fragment)
    assert result == payload


def test_fragment_pickle_roundtrip_materialises_bytes():
    import pickle

    fragment = split_payload(b"abcdef" * 10, 16, fragment_id=9)[1]
    assert isinstance(fragment.chunk, memoryview)
    clone = pickle.loads(pickle.dumps(fragment))
    assert isinstance(clone.chunk, bytes)
    assert clone.chunk == bytes(fragment.chunk)
    assert (clone.fragment_id, clone.index, clone.total) == (
        fragment.fragment_id, fragment.index, fragment.total)


def test_drop_sender_leaves_other_senders_partials():
    reassembler = Reassembler()
    a_parts = split_payload(b"abcdef", 2, fragment_id=1)
    b_parts = split_payload(b"uvwxyz", 2, fragment_id=1)
    reassembler.accept("#a#d0", a_parts[0])
    reassembler.accept("#b#d1", b_parts[0])
    reassembler.drop_sender("#a#d0")
    assert reassembler.pending_count() == 1
    reassembler.accept("#b#d1", b_parts[1])
    assert reassembler.accept("#b#d1", b_parts[2]) == b"uvwxyz"


def test_inconsistent_fragment_size_raises():
    reassembler = Reassembler()
    reassembler.accept("#a#d0", MessageFragment(1, 0, 3, b"aaaa"))
    with pytest.raises(IllegalMessageError, match="size inconsistent"):
        reassembler.accept("#a#d0", MessageFragment(1, 1, 3, b"bb"))


# -- config --------------------------------------------------------------------------


def test_config_rejects_bad_max_message_size():
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a",), max_message_size=0)


# -- full stack -------------------------------------------------------------------------


def big_payloads(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
        and isinstance(e.payload, bytes)
    ]


def test_large_message_transparently_fragmented():
    cluster = Cluster(daemon_count=3, seed=93, max_message_size=1024)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run(1.0)
    blob = bytes(range(256)) * 40  # 10240 bytes -> 10 fragments
    a.multicast(ServiceType.AGREED, "g", blob)
    cluster.run_until(lambda: blob in big_payloads(b), timeout=60)
    # Delivered exactly once, fully reassembled.
    assert big_payloads(b).count(blob) == 1


def test_multiple_large_messages_keep_order():
    cluster = Cluster(daemon_count=3, seed=94, max_message_size=512)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run(1.0)
    blobs = [bytes([i]) * 2000 for i in range(4)]
    for blob in blobs:
        a.multicast(ServiceType.FIFO, "g", blob)
    cluster.run_until(lambda: len(big_payloads(b)) == 4, timeout=60)
    assert big_payloads(b) == blobs


def test_small_messages_not_fragmented():
    cluster = Cluster(daemon_count=3, seed=95, max_message_size=1024)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run(1.0)
    a.multicast(ServiceType.AGREED, "g", b"small")
    cluster.run_until(lambda: b"small" in big_payloads(b), timeout=60)


def test_unreliable_large_message_rejected():
    cluster = Cluster(daemon_count=3, seed=96, max_message_size=64)
    cluster.settle()
    a = cluster.client("a", "d0")
    a.join("g")
    cluster.run(0.5)
    with pytest.raises(IllegalServiceError):
        a.multicast(ServiceType.UNRELIABLE, "g", b"x" * 1000)
