"""The deployment monitor (spmonitor equivalent)."""

import pytest

from repro.spread.monitor import Monitor
from repro.types import ServiceType

from tests.spread.conftest import Cluster


def make_monitor(cluster):
    return Monitor(cluster.daemons, cluster.network)


def test_snapshot_converged_cluster(cluster):
    monitor = make_monitor(cluster)
    status = monitor.snapshot()
    assert status.converged
    assert status.alive_count == 3
    assert len(status.views) == 1
    assert not status.partitioned
    assert status.delivery_ratio > 0.9


def test_snapshot_reflects_crash(cluster):
    monitor = make_monitor(cluster)
    cluster.daemons["d1"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d2"]))
    status = monitor.snapshot()
    assert status.alive_count == 2
    assert status.converged  # the survivors re-converged
    dead = next(d for d in status.daemons if d.name == "d1")
    assert not dead.alive and not dead.operational


def test_snapshot_reflects_partition(cluster):
    monitor = make_monitor(cluster)
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.settle_components(["d0"], ["d1", "d2"])
    status = monitor.snapshot()
    assert status.partitioned
    assert len(status.views) == 2
    assert not status.converged  # two views exist


def test_group_members_visible(cluster):
    monitor = make_monitor(cluster)
    a = cluster.client("a", "d0")
    a.join("g")
    cluster.run(1.0)
    status = monitor.snapshot()
    assert status.group_members("g") == ("#a#d0",)
    assert status.group_members("nope") == ()


def test_client_and_group_counts(cluster):
    monitor = make_monitor(cluster)
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d0")
    a.join("g1")
    b.join("g2")
    cluster.run(1.0)
    status = monitor.snapshot()
    d0 = next(d for d in status.daemons if d.name == "d0")
    assert d0.client_count == 2
    assert d0.group_count == 2


def test_history_and_trends(cluster):
    monitor = make_monitor(cluster)
    monitor.snapshot()
    a = cluster.client("a", "d0")
    a.join("g")
    for i in range(5):
        a.multicast(ServiceType.AGREED, "g", i)
    cluster.run(1.0)
    monitor.snapshot()
    datagrams, sent_bytes = monitor.traffic_since_first_snapshot()
    assert datagrams > 0 and sent_bytes > 0


def test_views_installed_trend(cluster):
    monitor = make_monitor(cluster)
    monitor.snapshot()
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    monitor.snapshot()
    assert monitor.views_installed_since_first_snapshot() >= 2  # d0+d1


def test_history_limit():
    cluster = Cluster()
    cluster.settle()
    monitor = Monitor(cluster.daemons, cluster.network, history_limit=3)
    for __ in range(10):
        monitor.snapshot()
    assert len(monitor.history) == 3


def test_describe_renders(cluster):
    monitor = make_monitor(cluster)
    text = monitor.snapshot().describe()
    assert "deployment:" in text
    assert "d0" in text and "d1" in text and "d2" in text
