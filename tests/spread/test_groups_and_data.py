"""Process groups, data multicast, ordering guarantees across clients."""

import pytest

from repro.spread.events import DataEvent, MembershipEvent, SelfLeaveEvent
from repro.types import MembershipCause, ServiceType

from tests.spread.conftest import Cluster


def members_of(client, group="g"):
    """Latest regular membership view a client received for the group
    (transitional signals are advisory and skipped)."""
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent)
        and str(e.group) == group
        and e.cause != MembershipCause.TRANSITIONAL
    ]
    return {str(m) for m in views[-1].members} if views else set()


def data_payloads(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


# -- join / leave ----------------------------------------------------------------


def test_join_delivers_membership_event(cluster):
    a = cluster.client("a", "d0")
    a.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    event = a.membership_events()[-1]
    assert event.cause == MembershipCause.JOIN


def test_two_clients_same_daemon_see_each_other(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d0")
    a.join("g")
    b.join("g")
    cluster.run_until(
        lambda: members_of(a) == {"#a#d0", "#b#d0"}
        and members_of(b) == {"#a#d0", "#b#d0"}
    )


def test_clients_across_daemons_see_each_other(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(
        lambda: all(members_of(x) == expected for x in (a, b, c))
    )


def test_leave_notifies_remaining_and_self(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    b.leave("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    assert a.membership_events()[-1].cause == MembershipCause.LEAVE
    cluster.run_until(
        lambda: any(isinstance(e, SelfLeaveEvent) for e in b.queue)
    )


def test_disconnect_removes_from_all_groups(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    for group in ("g", "h"):
        a.join(group)
        b.join(group)
    cluster.run_until(
        lambda: members_of(a, "g") == {"#a#d0", "#b#d1"}
        and members_of(a, "h") == {"#a#d0", "#b#d1"}
    )
    b.disconnect()
    cluster.run_until(
        lambda: members_of(a, "g") == {"#a#d0"} and members_of(a, "h") == {"#a#d0"}
    )
    causes = {
        e.cause for e in a.membership_events()
        if e.left and str(e.group) in ("g", "h")
    }
    assert causes == {MembershipCause.DISCONNECT}


def test_client_crash_treated_as_disconnect(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    b.crash()
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})


def test_daemon_crash_removes_its_clients_from_groups(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d2")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d2"})
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    assert a.membership_events()[-1].cause == MembershipCause.NETWORK


# -- data -------------------------------------------------------------------------


def test_multicast_reaches_all_members(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.AGREED, "g", "hello")
    cluster.run_until(lambda: "hello" in data_payloads(b))
    assert "hello" in data_payloads(a)  # self delivery


def test_self_discard(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.AGREED | ServiceType.SELF_DISCARD, "g", "m")
    cluster.run_until(lambda: "m" in data_payloads(b))
    assert "m" not in data_payloads(a)


def test_non_member_does_not_receive(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    outsider = cluster.client("x", "d2")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.AGREED, "g", "secret")
    cluster.run_until(lambda: "secret" in data_payloads(b))
    assert data_payloads(outsider) == []


def test_open_group_non_member_can_send(cluster):
    """EVS allows open groups: non-members may send to a group."""
    a = cluster.client("a", "d0")
    outsider = cluster.client("x", "d2")
    a.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    outsider.multicast(ServiceType.AGREED, "g", "from-outside")
    cluster.run_until(lambda: "from-outside" in data_payloads(a))


def test_unicast_private_message(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.unicast(ServiceType.FIFO, b.pid, "psst")
    cluster.run_until(
        lambda: any(
            isinstance(e, DataEvent) and e.payload == "psst" for e in b.queue
        )
    )
    # Not delivered to anyone else.
    assert all(e.payload != "psst" for e in a.data_events())


def test_fifo_order_per_sender(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    for i in range(20):
        a.multicast(ServiceType.FIFO, "g", i)
    cluster.run_until(lambda: len(data_payloads(b)) == 20)
    assert data_payloads(b) == list(range(20))


def test_agreed_total_order_across_senders(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(members_of(x) == expected for x in (a, b, c)))
    for i in range(5):
        a.multicast(ServiceType.AGREED, "g", f"a{i}")
        b.multicast(ServiceType.AGREED, "g", f"b{i}")
        c.multicast(ServiceType.AGREED, "g", f"c{i}")
    cluster.run_until(
        lambda: all(len(data_payloads(x)) == 15 for x in (a, b, c)),
    )
    assert data_payloads(a) == data_payloads(b) == data_payloads(c)


def test_safe_delivery(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.SAFE, "g", "stable")
    cluster.run_until(lambda: "stable" in data_payloads(b))
    assert "stable" in data_payloads(a)


def test_unreliable_delivery_on_clean_network(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.UNRELIABLE, "g", "maybe")
    cluster.run_until(lambda: "maybe" in data_payloads(b))


def test_causal_order_chain(cluster):
    """b sends 'reply' only after seeing 'ask': no member may see them
    reversed."""
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(members_of(x) == expected for x in (a, b, c)))

    def maybe_reply(event):
        if isinstance(event, DataEvent) and event.payload == "ask":
            b.multicast(ServiceType.CAUSAL, "g", "reply")

    b.on_event(maybe_reply)
    a.multicast(ServiceType.CAUSAL, "g", "ask")
    cluster.run_until(lambda: "reply" in data_payloads(c))
    payloads = data_payloads(c)
    assert payloads.index("ask") < payloads.index("reply")


# -- lossy network -----------------------------------------------------------------


def test_reliable_delivery_over_lossy_links():
    from repro.net.link import LinkModel

    cluster = Cluster(daemon_count=3, seed=3)
    cluster.network.default_link = LinkModel(
        base_latency=0.0002, loss_rate=0.10
    )
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"}, timeout=30)
    for i in range(30):
        a.multicast(ServiceType.FIFO, "g", i)
    cluster.run_until(lambda: len(data_payloads(b)) == 30, timeout=60)
    assert data_payloads(b) == list(range(30))


# -- partitions and group views -------------------------------------------------------


def test_partition_splits_group_views(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    cluster.run_until(lambda: members_of(b) == {"#b#d1"})
    assert a.membership_events()[-1].cause == MembershipCause.NETWORK


def test_merge_rejoins_group_views(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    cluster.network.heal()
    cluster.run_until(
        lambda: members_of(a) == {"#a#d0", "#b#d1"}
        and members_of(b) == {"#a#d0", "#b#d1"}
    )
    last = a.membership_events()[-1]
    assert last.cause == MembershipCause.NETWORK
    assert {str(p) for p in last.joined} == {"#b#d1"}


def test_messages_do_not_cross_partition(cluster):
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    a.multicast(ServiceType.AGREED, "g", "lonely")
    cluster.run(1.0)
    assert "lonely" in data_payloads(a)
    assert "lonely" not in data_payloads(b)
