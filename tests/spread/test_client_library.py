"""SpreadClient library edge cases: connection lifecycle, errors."""

import pytest

from repro.errors import (
    ConnectionClosedError,
    DaemonDownError,
    NotMemberError,
    SpreadError,
)
from repro.spread.client import SpreadClient
from repro.types import ServiceType

from tests.spread.conftest import Cluster


def test_connect_returns_private_group_id(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    pid = client.connect()
    assert str(pid) == "#app#d0"
    assert client.connected


def test_connect_idempotent(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    first = client.connect()
    second = client.connect()
    assert first == second


def test_duplicate_private_name_rejected(cluster):
    SpreadClient(cluster.kernel, "app", cluster.daemons["d0"]).connect()
    with pytest.raises(SpreadError):
        SpreadClient(cluster.kernel, "app", cluster.daemons["d0"]).connect()


def test_same_name_on_different_daemons_ok(cluster):
    a = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    b = SpreadClient(cluster.kernel, "app", cluster.daemons["d1"])
    assert str(a.connect()) != str(b.connect())


def test_operations_require_connection(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    with pytest.raises(ConnectionClosedError):
        client.join("g")
    with pytest.raises(ConnectionClosedError):
        client.multicast(ServiceType.AGREED, "g", "x")


def test_leave_without_join_raises(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    with pytest.raises(NotMemberError):
        client.leave("never-joined")


def test_connect_to_dead_daemon_raises(cluster):
    cluster.daemons["d2"].crash()
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d2"])
    with pytest.raises(DaemonDownError):
        client.connect()


def test_daemon_crash_disconnects_clients(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    cluster.daemons["d0"].crash()
    assert not client.connected
    with pytest.raises(ConnectionClosedError):
        client.join("g")


def test_disconnect_then_operations_fail(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    client.disconnect()
    with pytest.raises(ConnectionClosedError):
        client.multicast(ServiceType.AGREED, "g", "x")


def test_disconnect_idempotent(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    client.disconnect()
    client.disconnect()


def test_reconnect_after_disconnect_with_new_name(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    client.disconnect()
    cluster.run(0.1)
    replacement = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    assert str(replacement.connect()) == "#app#d0"


def test_receive_and_drain(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    client.join("g")
    cluster.run(1.0)
    assert client.receive() is not None  # the membership event
    assert client.receive() is None
    client.join("h")
    cluster.run(1.0)
    assert len(client.drain()) == 1
    assert client.drain() == []


def test_send_seq_increases(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    client.join("g")
    cluster.run(0.5)
    first = client.multicast(ServiceType.AGREED, "g", "one")
    second = client.multicast(ServiceType.AGREED, "g", "two")
    assert second == first + 1


def test_events_not_delivered_after_crash(cluster):
    client = SpreadClient(cluster.kernel, "app", cluster.daemons["d0"])
    client.connect()
    client.join("g")
    cluster.run(0.5)
    client.crash()
    before = len(client.queue)
    other = SpreadClient(cluster.kernel, "other", cluster.daemons["d1"])
    other.connect()
    other.multicast(ServiceType.AGREED, "g", "unheard")
    cluster.run(1.0)
    assert len(client.queue) == before
