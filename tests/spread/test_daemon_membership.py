"""Daemon membership: bootstrap, crashes, recoveries, partitions, merges."""

import pytest

from tests.spread.conftest import Cluster


def test_bootstrap_converges_to_single_view():
    cluster = Cluster(daemon_count=3)
    cluster.settle()
    views = {d.view for d in cluster.alive_daemons()}
    assert len(views) == 1
    for daemon in cluster.alive_daemons():
        assert set(daemon.view_members) == {"d0", "d1", "d2"}


def test_bootstrap_five_daemons():
    cluster = Cluster(daemon_count=5)
    cluster.settle()
    assert all(len(d.view_members) == 5 for d in cluster.alive_daemons())


def test_single_daemon_cluster_trivially_converged():
    cluster = Cluster(daemon_count=1)
    cluster.settle(timeout=1.0)
    daemon = cluster.daemons["d0"]
    assert daemon.view_members == ("d0",)


def test_daemon_crash_removes_it_from_view():
    cluster = Cluster(daemon_count=3)
    cluster.settle()
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    for name in ("d0", "d1"):
        assert set(cluster.daemons[name].view_members) == {"d0", "d1"}


def test_daemon_recover_rejoins_view():
    cluster = Cluster(daemon_count=3)
    cluster.settle()
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    cluster.daemons["d2"].recover()
    cluster.settle()
    assert all(
        set(d.view_members) == {"d0", "d1", "d2"} for d in cluster.alive_daemons()
    )


def test_partition_forms_two_views():
    cluster = Cluster(daemon_count=4)
    cluster.settle()
    cluster.network.partition([["d0", "d1"], ["d2", "d3"]])
    cluster.settle_components(["d0", "d1"], ["d2", "d3"])
    assert set(cluster.daemons["d0"].view_members) == {"d0", "d1"}
    assert set(cluster.daemons["d2"].view_members) == {"d2", "d3"}
    assert cluster.daemons["d0"].view != cluster.daemons["d2"].view


def test_merge_after_heal():
    cluster = Cluster(daemon_count=4)
    cluster.settle()
    cluster.network.partition([["d0", "d1"], ["d2", "d3"]])
    cluster.settle_components(["d0", "d1"], ["d2", "d3"])
    cluster.network.heal()
    cluster.settle()
    views = {d.view for d in cluster.alive_daemons()}
    assert len(views) == 1
    assert all(len(d.view_members) == 4 for d in cluster.alive_daemons())


def test_singleton_partition():
    cluster = Cluster(daemon_count=3)
    cluster.settle()
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.settle_components(["d0"], ["d1", "d2"])
    assert cluster.daemons["d0"].view_members == ("d0",)


def test_cascading_partitions_converge():
    cluster = Cluster(daemon_count=4)
    cluster.settle()
    cluster.network.partition([["d0", "d1"], ["d2", "d3"]])
    cluster.run(0.06)  # mid-membership...
    cluster.network.partition([["d0"], ["d1"], ["d2", "d3"]])
    cluster.settle_components(["d0"], ["d1"], ["d2", "d3"])
    cluster.network.heal()
    cluster.settle()
    assert all(len(d.view_members) == 4 for d in cluster.alive_daemons())


def test_crash_during_membership_converges():
    cluster = Cluster(daemon_count=4)
    cluster.settle()
    cluster.daemons["d3"].crash()
    cluster.run(0.11)  # inside the gather triggered by the silence
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    assert set(cluster.daemons["d0"].view_members) == {"d0", "d1"}


def test_view_ids_increase_monotonically():
    cluster = Cluster(daemon_count=3)
    cluster.settle()
    first = cluster.daemons["d0"].view
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    second = cluster.daemons["d0"].view
    assert second > first
    cluster.daemons["d2"].recover()
    cluster.settle()
    third = cluster.daemons["d0"].view
    assert third > second


def test_all_daemons_install_same_view_sequence():
    cluster = Cluster(daemon_count=3)
    cluster.settle()
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    cluster.daemons["d2"].recover()
    cluster.settle()
    installs_d0 = [
        e for e in cluster.tracer.of_kind("daemon.install") if e["me"] == "d0"
    ]
    installs_d1 = [
        e for e in cluster.tracer.of_kind("daemon.install") if e["me"] == "d1"
    ]
    # d0 and d1 travelled together throughout: same view sequence.
    assert [e["view"] for e in installs_d0] == [e["view"] for e in installs_d1]


def test_recovered_daemon_has_fresh_incarnation():
    cluster = Cluster(daemon_count=2)
    cluster.settle()
    assert cluster.daemons["d1"].incarnation == 0
    cluster.daemons["d1"].crash()
    cluster.daemons["d1"].recover()
    assert cluster.daemons["d1"].incarnation == 1
    cluster.settle()
