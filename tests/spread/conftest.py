"""Shared fixtures for group communication tests: a small cluster."""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.net.link import LinkModel
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.sim.trace import Tracer
from repro.spread.client import SpreadClient
from repro.spread.config import SpreadConfig
from repro.spread.daemon import SpreadDaemon
from repro.spread.membership import STATE_OP


class Cluster:
    """A kernel + network + daemons test harness."""

    def __init__(self, daemon_count: int = 3, seed: int = 1, **config_overrides):
        self.tracer = Tracer()
        self.kernel = Kernel(seed=seed, tracer=self.tracer)
        self.network = Network(self.kernel, default_link=LinkModel.ethernet_100base_t())
        names = tuple(f"d{i}" for i in range(daemon_count))
        self.config = SpreadConfig(daemons=names, **config_overrides)
        self.daemons: Dict[str, SpreadDaemon] = {}
        for name in names:
            daemon = SpreadDaemon(self.kernel, name, self.network, self.config)
            daemon.start()
            self.daemons[name] = daemon
        self.clients: Dict[str, SpreadClient] = {}

    def run(self, duration: float) -> None:
        self.kernel.run(until=self.kernel.now + duration)

    def run_until(self, predicate, timeout: float = 10.0) -> None:
        self.kernel.run_until(predicate, timeout=timeout)

    # -- daemon state -------------------------------------------------------

    def alive_daemons(self) -> List[SpreadDaemon]:
        return [d for d in self.daemons.values() if d.alive]

    def converged(self, names=None) -> bool:
        """All (named) alive daemons share one view and are operational."""
        daemons = (
            [self.daemons[n] for n in names] if names else self.alive_daemons()
        )
        daemons = [d for d in daemons if d.alive]
        if not daemons:
            return True
        views = {d.view for d in daemons}
        if len(views) != 1:
            return False
        members = set(daemons[0].view_members)
        expected = {d.name for d in daemons}
        return members == expected and all(
            d.engine.state == STATE_OP for d in daemons
        )

    def settle(self, timeout: float = 10.0) -> None:
        """Run until all alive daemons converge into one view."""
        self.run_until(lambda: self.converged(), timeout=timeout)

    def settle_components(self, *components, timeout: float = 10.0) -> None:
        """Run until each named component converges separately."""
        self.run_until(
            lambda: all(self.converged(names) for names in components),
            timeout=timeout,
        )

    # -- clients ---------------------------------------------------------------

    def client(self, private_name: str, daemon_name: str) -> SpreadClient:
        client = SpreadClient(self.kernel, private_name, self.daemons[daemon_name])
        client.connect()
        self.clients[private_name] = client
        return client


@pytest.fixture
def cluster():
    c = Cluster()
    c.settle()
    return c


@pytest.fixture
def cluster5():
    c = Cluster(daemon_count=5)
    c.settle()
    return c
