"""Extended Virtual Synchrony semantics under partitions with traffic.

The EVS guarantee secure Spread depends on: daemons (and hence client
groups) that transition together between views deliver the same set of
messages, in the same agreed order, before installing the new view.
"""

import pytest

from repro.spread.events import DataEvent, MembershipEvent
from repro.types import ServiceType

from tests.spread.conftest import Cluster


def group_payloads(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


def members_of(client, group="g"):
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def test_same_set_same_order_for_comoving_daemons():
    """d0+d1 travel together through a partition cutting off d2; their
    clients deliver identical agreed sequences, including messages that
    were in flight when the partition hit."""
    cluster = Cluster(daemon_count=3, seed=41)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(members_of(x) == expected for x in (a, b, c)))
    # Burst of traffic from all three senders...
    for i in range(10):
        a.multicast(ServiceType.AGREED, "g", f"a{i}")
        b.multicast(ServiceType.AGREED, "g", f"b{i}")
        c.multicast(ServiceType.AGREED, "g", f"c{i}")
    # ...and a partition lands while much of it is still in flight.
    cluster.kernel.call_later(
        0.001, lambda: cluster.network.partition([["d0", "d1"], ["d2"]])
    )
    cluster.run_until(
        lambda: members_of(a) == {"#a#d0", "#b#d1"}
        and members_of(b) == {"#a#d0", "#b#d1"},
        timeout=30,
    )
    cluster.run(1.0)
    # The EVS contract for the surviving pair:
    assert group_payloads(a) == group_payloads(b)
    # Per-sender FIFO within the agreed sequence.
    for sender in ("a", "b", "c"):
        seqs = [p for p in group_payloads(a) if p.startswith(sender)]
        assert seqs == sorted(seqs, key=lambda s: int(s[1:]))


def test_comoving_daemons_identical_through_merge_cycle():
    cluster = Cluster(daemon_count=4, seed=43)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    for client in (a, b):
        client.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    for i in range(5):
        a.multicast(ServiceType.AGREED, "g", f"x{i}")
    cluster.kernel.call_later(
        0.0005, lambda: cluster.network.partition([["d0", "d1"], ["d2", "d3"]])
    )
    cluster.run(2.0)
    cluster.network.heal()
    cluster.settle()
    for i in range(5):
        b.multicast(ServiceType.AGREED, "g", f"y{i}")
    cluster.run_until(
        lambda: len(group_payloads(a)) == 10 and len(group_payloads(b)) == 10,
        timeout=30,
    )
    assert group_payloads(a) == group_payloads(b)


def test_sender_messages_not_lost_when_alone():
    """A sender partitioned into a singleton still self-delivers its own
    in-flight messages (it travels with itself)."""
    cluster = Cluster(daemon_count=3, seed=47)
    cluster.settle()
    a = cluster.client("a", "d0")
    a.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    b = cluster.client("b", "d1")
    b.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    for i in range(5):
        a.multicast(ServiceType.AGREED, "g", i)
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: members_of(a) == {"#a#d0"}, timeout=30)
    cluster.run(1.0)
    assert group_payloads(a) == [0, 1, 2, 3, 4]


def test_client_ops_queued_during_membership_transition():
    """Joins requested while the daemons are mid-membership are replayed
    in the new view rather than lost."""
    cluster = Cluster(daemon_count=3, seed=53)
    cluster.settle()
    a = cluster.client("a", "d0")
    a.join("g")
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    # Crash d2 and, while the survivors are reconfiguring, join + send.
    cluster.daemons["d2"].crash()
    cluster.run(0.11)  # inside the gather window
    b = cluster.client("b", "d1")
    b.join("g")
    a.multicast(ServiceType.AGREED, "g", "queued?")
    cluster.run_until(
        lambda: members_of(a) == {"#a#d0", "#b#d1"}
        and "queued?" in group_payloads(a),
        timeout=30,
    )
    cluster.run_until(
        lambda: members_of(b) == {"#a#d0", "#b#d1"}, timeout=30
    )
    # b either received the raced message (ordered after its join) or
    # joined after it in the agreed order — both are valid EVS outcomes;
    # what may NOT happen is losing the join or the message at a.
    assert "queued?" in group_payloads(a)
