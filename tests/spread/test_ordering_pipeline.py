"""Direct unit tests of the ViewPipeline (no daemons, no network)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spread.messages import DataMessage, KIND_APP
from repro.spread.ordering import ViewPipeline
from repro.types import ServiceType, ViewId

VIEW = ViewId(1, 1, "a")


def make_pipeline(me="a", members=("a", "b", "c"), collect=None):
    delivered = collect if collect is not None else []
    pipeline = ViewPipeline(VIEW, members, me, delivered.append)
    return pipeline, delivered


def msg(sender, seq, lamport, service=ServiceType.FIFO, payload=None):
    return DataMessage(
        sender_daemon=sender,
        view_id=VIEW,
        seq=seq,
        lamport=lamport,
        service=service,
        kind=KIND_APP,
        group="g",
        origin=None,
        origin_seq=seq,
        payload=payload if payload is not None else f"{sender}{seq}",
    )


# -- sending ----------------------------------------------------------------------


def test_next_message_stamps_increasing_seq_and_lamport():
    pipeline, __ = make_pipeline()
    m1 = pipeline.next_message(ServiceType.FIFO, KIND_APP, "g", None, 1, "x")
    m2 = pipeline.next_message(ServiceType.FIFO, KIND_APP, "g", None, 2, "y")
    assert m2.seq == m1.seq + 1
    assert m2.lamport > m1.lamport


def test_own_fifo_messages_self_delivered():
    pipeline, delivered = make_pipeline()
    pipeline.next_message(ServiceType.FIFO, KIND_APP, "g", None, 1, "x")
    assert [m.payload for m in delivered] == ["x"]


def test_sent_buffer_retains_messages_for_retransmit():
    pipeline, __ = make_pipeline()
    m = pipeline.next_message(ServiceType.FIFO, KIND_APP, "g", None, 1, "x")
    assert pipeline.retransmit([m.seq]) == [m]
    assert pipeline.retransmit([99]) == []


# -- FIFO delivery ---------------------------------------------------------------------


def test_fifo_in_order_delivery():
    pipeline, delivered = make_pipeline()
    for seq in (1, 2, 3):
        pipeline.ingest(msg("b", seq, seq), now=0.0)
    assert [m.payload for m in delivered] == ["b1", "b2", "b3"]


def test_fifo_holds_gap_then_releases():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("b", 2, 2), now=0.0)
    assert delivered == []
    pipeline.ingest(msg("b", 1, 1), now=0.0)
    assert [m.payload for m in delivered] == ["b1", "b2"]


def test_duplicate_ingest_ignored():
    pipeline, delivered = make_pipeline()
    message = msg("b", 1, 1)
    pipeline.ingest(message, now=0.0)
    pipeline.ingest(message, now=0.0)
    assert len(delivered) == 1


def test_stale_view_message_ignored():
    pipeline, delivered = make_pipeline()
    stale = DataMessage(
        sender_daemon="b",
        view_id=ViewId(0, 9, "z"),
        seq=1,
        lamport=1,
        service=ServiceType.FIFO,
        kind=KIND_APP,
        group="g",
        origin=None,
        origin_seq=1,
        payload="stale",
    )
    pipeline.ingest(stale, now=0.0)
    assert delivered == []


def test_unknown_sender_ignored():
    pipeline, delivered = make_pipeline(members=("a", "b"))
    pipeline.ingest(msg("zz", 1, 1), now=0.0)
    assert delivered == []


# -- AGREED total order --------------------------------------------------------------------


def test_agreed_held_until_all_horizons_pass():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("b", 1, 5, ServiceType.AGREED), now=0.0)
    assert delivered == []  # c's horizon unknown
    pipeline.note_hello("c", lamport=6, all_received=0, sent_seq=0)
    assert [m.payload for m in delivered] == ["b1"]


def test_agreed_order_by_timestamp_across_senders():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("c", 1, 7, ServiceType.AGREED), now=0.0)
    pipeline.ingest(msg("b", 1, 3, ServiceType.AGREED), now=0.0)
    pipeline.note_hello("b", lamport=10, all_received=0, sent_seq=1)
    pipeline.note_hello("c", lamport=10, all_received=0, sent_seq=1)
    assert [m.payload for m in delivered] == ["b1", "c1"]


def test_agreed_ties_broken_by_sender_name():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("c", 1, 5, ServiceType.AGREED), now=0.0)
    pipeline.ingest(msg("b", 1, 5, ServiceType.AGREED), now=0.0)
    pipeline.note_hello("b", lamport=9, all_received=0, sent_seq=1)
    pipeline.note_hello("c", lamport=9, all_received=0, sent_seq=1)
    assert [m.payload for m in delivered] == ["b1", "c1"]


def test_hello_with_unseen_sent_seq_does_not_advance_horizon():
    """A heartbeat advertising messages we have not ingested must not
    unlock the total order (an in-flight message could order earlier)."""
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("b", 1, 5, ServiceType.AGREED), now=0.0)
    # c says it sent seq 1 (which we don't have) with clock 9.
    pipeline.note_hello("c", lamport=9, all_received=0, sent_seq=1)
    assert delivered == []
    # The missing message arrives with an earlier timestamp: order holds.
    pipeline.ingest(msg("c", 1, 4, ServiceType.AGREED), now=0.0)
    pipeline.note_hello("b", lamport=9, all_received=0, sent_seq=1)
    pipeline.note_hello("c", lamport=9, all_received=0, sent_seq=1)
    assert [m.payload for m in delivered] == ["c1", "b1"]


def test_hello_tail_gap_detected_for_nack():
    pipeline, __ = make_pipeline()
    pipeline.note_hello("b", lamport=5, all_received=0, sent_seq=3)
    gaps = pipeline.gaps_older_than(now=10.0, age=1.0)
    assert gaps == {"b": [1, 2, 3]}


def test_own_lamport_counts_as_own_horizon():
    """Our own clock vouches for our horizon: two-member agreed delivery
    must not need a self-hello."""
    pipeline, delivered = make_pipeline(members=("a", "b"))
    pipeline.ingest(msg("b", 1, 5, ServiceType.AGREED), now=0.0)
    # our lamport was max'ed to 5 by the ingest; next send is 6 > 5... but
    # release requires horizon >= ts, ours is max(0, lamport=5) == 5.
    assert [m.payload for m in delivered] == ["b1"]


# -- SAFE delivery ------------------------------------------------------------------------


def test_safe_waits_for_all_received_acks():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("b", 1, 5, ServiceType.SAFE), now=0.0)
    pipeline.note_hello("c", lamport=9, all_received=0, sent_seq=0)
    assert delivered == []  # ordered horizon ok, but no stability ack
    pipeline.note_hello("b", lamport=9, all_received=6, sent_seq=1)
    pipeline.note_hello("c", lamport=10, all_received=6, sent_seq=0)
    assert [m.payload for m in delivered] == ["b1"]


def test_my_all_received_is_min_across_peers():
    pipeline, __ = make_pipeline()
    pipeline.ingest(msg("b", 1, 5, ServiceType.FIFO), now=0.0)
    # c never spoke: horizon 0.
    assert pipeline.my_all_received() == 0
    pipeline.note_hello("c", lamport=7, all_received=0, sent_seq=0)
    assert pipeline.my_all_received() == 5


# -- NACK / gap bookkeeping -----------------------------------------------------------------


def test_gap_detection_and_backoff():
    pipeline, __ = make_pipeline()
    pipeline.ingest(msg("b", 3, 3), now=1.0)
    gaps = pipeline.gaps_older_than(now=1.05, age=0.03)
    assert gaps == {"b": [1, 2]}
    # Immediately re-checking yields nothing (backed off).
    assert pipeline.gaps_older_than(now=1.06, age=0.03) == {}


def test_gap_cleared_when_filled():
    pipeline, __ = make_pipeline()
    pipeline.ingest(msg("b", 2, 2), now=1.0)
    pipeline.ingest(msg("b", 1, 1), now=1.1)
    assert pipeline.gaps_older_than(now=5.0, age=0.01) == {}


# -- cut & flush --------------------------------------------------------------------------


def test_cut_reports_unstable():
    """The cut carries everything not yet acked by all members — the
    delivered-but-unstable (b, 1) included, because a co-moving peer may
    have missed it and can only recover it through the complement."""
    pipeline, __ = make_pipeline()
    pipeline.ingest(msg("b", 1, 1), now=0.0)  # delivered (fifo)
    pipeline.ingest(msg("b", 3, 3), now=0.0)  # held (gap)
    pipeline.ingest(msg("c", 1, 5, ServiceType.AGREED), now=0.0)  # held (order)
    unstable, delivered_ts, fifo = pipeline.cut()
    keys = {(m.sender_daemon, m.seq) for m in unstable}
    assert keys == {("b", 1), ("b", 3), ("c", 1)}
    assert fifo["b"] == 1


def test_cut_garbage_collects_stable_messages():
    """Once every member has acked past a delivered message's timestamp
    (the SAFE horizon), the cut drops it: it is ingested everywhere and
    can never be needed for a flush complement."""
    pipeline, __ = make_pipeline()
    pipeline.ingest(msg("b", 1, 1), now=0.0)  # delivered (fifo)
    pipeline.ingest(msg("b", 3, 3), now=0.0)  # held (gap)
    pipeline.ingest(msg("c", 1, 5, ServiceType.AGREED), now=0.0)  # held (order)
    pipeline.note_hello("b", lamport=3, all_received=1, sent_seq=3)
    pipeline.note_hello("c", lamport=5, all_received=1, sent_seq=1)
    unstable, __, __ = pipeline.cut()
    keys = {(m.sender_daemon, m.seq) for m in unstable}
    assert keys == {("b", 3), ("c", 1)}  # stable (b, 1) dropped


def test_flush_with_union_delivers_same_set():
    """Two pipelines with different receipt patterns, flushed with the
    same union, deliver identical message sets."""
    collect1, collect2 = [], []
    p1 = ViewPipeline(VIEW, ("a", "b", "c"), "a", collect1.append)
    p2 = ViewPipeline(VIEW, ("a", "b", "c"), "b", collect2.append)
    messages = [
        msg("b", 1, 2, ServiceType.AGREED),
        msg("c", 1, 3, ServiceType.AGREED),
        msg("b", 2, 4, ServiceType.FIFO),
    ]
    p1.ingest(messages[0], now=0.0)
    p2.ingest(messages[1], now=0.0)
    p2.ingest(messages[2], now=0.0)
    union = {m.key(): m for pipeline in (p1, p2) for m in pipeline.cut()[0]}
    union_list = [union[k] for k in sorted(union)]
    p1.flush_with(union_list, synced_members=["a", "b"])
    p2.flush_with(union_list, synced_members=["a", "b"])
    set1 = {(m.sender_daemon, m.seq) for m in collect1}
    set2 = {(m.sender_daemon, m.seq) for m in collect2}
    assert set1 == set2 == {("b", 1), ("c", 1), ("b", 2)}
    # Total-order messages appear in the same relative order.
    agreed1 = [m.payload for m in collect1 if m.service & ServiceType.AGREED]
    agreed2 = [m.payload for m in collect2 if m.service & ServiceType.AGREED]
    assert agreed1 == agreed2


def test_flush_stops_at_gap_for_unsynced_sender():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("c", 2, 5), now=0.0)  # gap at seq 1, c not synced
    pipeline.flush_with([], synced_members=["a", "b"])
    assert all(m.sender_daemon != "c" for m in delivered)


def test_flush_skips_gap_for_synced_sender():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(msg("b", 2, 5), now=0.0)  # gap at 1, but b synced:
    pipeline.flush_with([], synced_members=["a", "b", "c"])
    assert [m.payload for m in delivered] == ["b2"]


# -- property-based -----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    order=st.permutations(list(range(12))),
)
def test_fifo_delivery_invariant_under_any_arrival_order(order):
    """However messages arrive, per-sender FIFO delivery order holds."""
    pipeline, delivered = make_pipeline(members=("a", "b", "c"))
    all_messages = [msg("b", i + 1, i + 1) for i in range(6)] + [
        msg("c", i + 1, i + 10) for i in range(6)
    ]
    for index in order:
        pipeline.ingest(all_messages[index], now=0.0)
    b_seqs = [m.seq for m in delivered if m.sender_daemon == "b"]
    c_seqs = [m.seq for m in delivered if m.sender_daemon == "c"]
    assert b_seqs == sorted(b_seqs) == list(range(1, 7))
    assert c_seqs == sorted(c_seqs) == list(range(1, 7))


@settings(max_examples=40, deadline=None)
@given(order=st.permutations(list(range(8))), data=st.data())
def test_agreed_total_order_invariant(order, data):
    """Two receivers with different arrival orders deliver AGREED
    messages in the same sequence once horizons pass."""
    msgs = [
        msg("b", i + 1, 2 * i + 1, ServiceType.AGREED) for i in range(4)
    ] + [msg("c", i + 1, 2 * i + 2, ServiceType.AGREED) for i in range(4)]
    order2 = data.draw(st.permutations(list(range(8))))
    out1, out2 = [], []
    p1 = ViewPipeline(VIEW, ("a", "b", "c"), "a", out1.append)
    p2 = ViewPipeline(VIEW, ("x", "b", "c"), "x", out2.append)
    for i in order:
        p1.ingest(msgs[i], now=0.0)
    for i in order2:
        p2.ingest(msgs[i], now=0.0)
    for p in (p1, p2):
        p.note_hello("b", lamport=100, all_received=100, sent_seq=4)
        p.note_hello("c", lamport=100, all_received=100, sent_seq=4)
    assert [m.payload for m in out1] == [m.payload for m in out2]
    assert len(out1) == 8


# -- ingest batching (packed-envelope release deferral) ----------------------------


def test_ingest_batch_defers_ordered_release_until_end():
    pipeline, delivered = make_pipeline()
    pipeline.note_hello("c", lamport=100, all_received=100, sent_seq=0)
    pipeline.begin_ingest_batch()
    pipeline.ingest(msg("b", 1, 1, ServiceType.AGREED), now=0.0)
    pipeline.ingest(msg("b", 2, 2, ServiceType.AGREED), now=0.0)
    pipeline.note_hello("b", lamport=100, all_received=100, sent_seq=2)
    # Everything is releasable, but the batch holds the heap drain.
    assert delivered == []
    pipeline.end_ingest_batch()
    assert [m.payload for m in delivered] == ["b1", "b2"]


def test_ingest_batch_keeps_fifo_fast_path():
    pipeline, delivered = make_pipeline()
    pipeline.begin_ingest_batch()
    pipeline.ingest(msg("b", 1, 1), now=0.0)
    # FIFO needs no ordering horizon: the fast path is not deferred.
    assert [m.payload for m in delivered] == ["b1"]
    pipeline.end_ingest_batch()


def test_ingest_batch_delivery_order_matches_per_ingest():
    messages = [
        msg("b", i + 1, 2 * i + 1, ServiceType.AGREED) for i in range(4)
    ] + [msg("c", i + 1, 2 * i + 2, ServiceType.AGREED) for i in range(4)]
    plain_out, batched_out = [], []
    plain = ViewPipeline(VIEW, ("a", "b", "c"), "a", plain_out.append)
    batched = ViewPipeline(VIEW, ("a", "b", "c"), "a", batched_out.append)
    for message in messages:
        plain.ingest(message, now=0.0)
    batched.begin_ingest_batch()
    for message in messages:
        batched.ingest(message, now=0.0)
    batched.end_ingest_batch()
    for pipeline in (plain, batched):
        pipeline.note_hello("b", lamport=100, all_received=100, sent_seq=4)
        pipeline.note_hello("c", lamport=100, all_received=100, sent_seq=4)
    assert [m.payload for m in batched_out] == [m.payload for m in plain_out]
    assert len(batched_out) == 8


def test_nested_ingest_batches_release_once_at_depth_zero():
    pipeline, delivered = make_pipeline()
    pipeline.note_hello("c", lamport=100, all_received=100, sent_seq=0)
    pipeline.begin_ingest_batch()
    pipeline.begin_ingest_batch()
    pipeline.ingest(msg("b", 1, 1, ServiceType.AGREED), now=0.0)
    pipeline.note_hello("b", lamport=100, all_received=100, sent_seq=1)
    pipeline.end_ingest_batch()
    assert delivered == []  # still one level deep
    pipeline.end_ingest_batch()
    assert [m.payload for m in delivered] == ["b1"]
