"""Unit tests: GroupTable, SpreadConfig, app-facing event types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpreadError
from repro.spread.config import SpreadConfig
from repro.spread.events import DataEvent, GroupViewId, MembershipEvent
from repro.spread.groups import GroupTable, daemon_of
from repro.types import (
    DaemonId,
    GroupId,
    MembershipCause,
    ProcessId,
    ServiceType,
    ViewId,
)


# -- GroupTable ---------------------------------------------------------------------


def pid(name, daemon="d0"):
    return str(ProcessId(name, DaemonId(daemon)))


def test_join_and_members_sorted_by_daemon_then_name():
    table = GroupTable()
    table.join("g", pid("zed", "d0"))
    table.join("g", pid("amy", "d1"))
    table.join("g", pid("amy", "d0"))
    assert table.members_of("g") == (
        pid("amy", "d0"), pid("zed", "d0"), pid("amy", "d1")
    )


def test_join_idempotent():
    table = GroupTable()
    assert table.join("g", pid("a"))
    assert not table.join("g", pid("a"))
    assert len(table.members_of("g")) == 1


def test_leave_and_gc_empty_group():
    table = GroupTable()
    table.join("g", pid("a"))
    assert table.leave("g", pid("a"))
    assert table.members_of("g") == ()
    assert "g" not in table.groups()
    assert not table.leave("g", pid("a"))


def test_groups_of_process():
    table = GroupTable()
    table.join("g1", pid("a"))
    table.join("g2", pid("a"))
    table.join("g2", pid("b"))
    assert table.groups_of(pid("a")) == ("g1", "g2")
    assert table.groups_of(pid("b")) == ("g2",)


def test_remove_process_returns_affected_groups():
    table = GroupTable()
    table.join("g1", pid("a"))
    table.join("g2", pid("a"))
    table.join("g2", pid("b"))
    affected = table.remove_process(pid("a"))
    assert set(affected) == {"g1", "g2"}
    assert table.members_of("g2") == (pid("b"),)


def test_change_counter_monotonic_per_group():
    table = GroupTable()
    assert table.bump_change("g") == 1
    assert table.bump_change("g") == 2
    assert table.bump_change("h") == 1


def test_merged_prunes_dead_daemons():
    snapshot1 = {"g": (pid("a", "d0"), pid("b", "d1"))}
    snapshot2 = {"g": (pid("c", "d2"),), "h": (pid("d", "d2"),)}
    merged = GroupTable.merged([snapshot1, snapshot2], ["d0", "d2"])
    assert merged["g"] == (pid("a", "d0"), pid("c", "d2"))
    assert merged["h"] == (pid("d", "d2"),)


def test_merged_deduplicates_across_snapshots():
    snapshot = {"g": (pid("a", "d0"),)}
    merged = GroupTable.merged([snapshot, snapshot], ["d0"])
    assert merged["g"] == (pid("a", "d0"),)


def test_replace_resets_counters():
    table = GroupTable()
    table.join("g", pid("a"))
    table.bump_change("g")
    table.replace({"g": (pid("a"), pid("b"))})
    assert table.bump_change("g") == 1
    assert table.members_of("g") == (pid("a"), pid("b"))


def test_snapshot_is_immutable_copy():
    table = GroupTable()
    table.join("g", pid("a"))
    snapshot = table.snapshot()
    table.join("g", pid("b"))
    assert snapshot["g"] == (pid("a"),)


def test_daemon_of():
    assert daemon_of(pid("a", "d7")) == "d7"


@settings(max_examples=30, deadline=None)
@given(
    names=st.lists(
        st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5,
        unique=True,
    )
)
def test_join_leave_roundtrip_property(names):
    table = GroupTable()
    for name in names:
        table.join("g", pid(name))
    assert set(table.members_of("g")) == {pid(n) for n in names}
    for name in names:
        table.leave("g", pid(name))
    assert table.members_of("g") == ()


# -- SpreadConfig -----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=())
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a", "a"))
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a", ""))
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a",), hello_interval=-1)
    with pytest.raises(SpreadError):
        SpreadConfig(daemons=("a",), hello_interval=0.2, fail_timeout=0.1)


def test_config_for_daemons():
    config = SpreadConfig.for_daemons("x", "y", hello_interval=0.01)
    assert config.daemons == ("x", "y")
    assert config.hello_interval == 0.01


def test_config_index_of():
    config = SpreadConfig.for_daemons("x", "y")
    assert config.index_of("y") == 1
    with pytest.raises(SpreadError):
        config.index_of("z")


# -- identifier/event types ------------------------------------------------------------------


def test_process_id_roundtrip():
    original = ProcessId("alice", DaemonId("d1"))
    assert ProcessId.parse(str(original)) == original


def test_process_id_parse_rejects_garbage():
    with pytest.raises(ValueError):
        ProcessId.parse("no-hashes")
    with pytest.raises(ValueError):
        ProcessId.parse("#only#one#extra#")


def test_view_id_ordering():
    a = ViewId(1, 1, "d0")
    b = ViewId(1, 2, "d0")
    c = ViewId(2, 0, "d9")
    assert a < b < c


def test_group_view_id_ordering_and_str():
    v = ViewId(1, 1, "d0")
    a = GroupViewId(v, 1)
    b = GroupViewId(v, 2)
    assert a < b
    assert str(a).endswith("+1")


def test_service_type_predicates():
    assert ServiceType.AGREED.is_regular
    assert not ServiceType.MEMBERSHIP.is_membership == False
    assert (ServiceType.AGREED | ServiceType.MEMBERSHIP).is_membership
    assert ServiceType.SAFE.ordering_rank > ServiceType.FIFO.ordering_rank
    assert ServiceType.MEMBERSHIP.ordering_rank == -1


def test_membership_event_describe():
    event = MembershipEvent(
        group=GroupId("g"),
        view_id=GroupViewId(ViewId(1, 1, "d0"), 3),
        members=(ProcessId("a", DaemonId("d0")),),
        cause=MembershipCause.JOIN,
        joined=frozenset({ProcessId("a", DaemonId("d0"))}),
    )
    text = event.describe()
    assert "g@" in text and "cause=join" in text
    assert event.is_membership


def test_data_event_is_not_membership():
    event = DataEvent(
        group=GroupId("g"),
        sender=ProcessId("a", DaemonId("d0")),
        service=ServiceType.AGREED,
        payload=b"x",
        seq=1,
    )
    assert not event.is_membership
