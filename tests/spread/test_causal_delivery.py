"""True causal delivery (vector-based), distinct from AGREED."""

import pytest

from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.messages import DataMessage, KIND_APP
from repro.spread.ordering import ViewPipeline
from repro.types import ServiceType, ViewId

from tests.spread.conftest import Cluster

VIEW = ViewId(1, 1, "a")


def make_pipeline(me="a", members=("a", "b", "c")):
    delivered = []
    pipeline = ViewPipeline(VIEW, members, me, delivered.append)
    return pipeline, delivered


def causal_msg(sender, seq, lamport, vector=None, payload=None):
    return DataMessage(
        sender_daemon=sender,
        view_id=VIEW,
        seq=seq,
        lamport=lamport,
        service=ServiceType.CAUSAL,
        kind=KIND_APP,
        group="g",
        origin=None,
        origin_seq=seq,
        payload=payload if payload is not None else f"{sender}{seq}",
        causal_vector=vector,
    )


# -- unit ---------------------------------------------------------------------------


def test_causal_without_dependencies_delivers_immediately():
    """Unlike AGREED, causal needs no horizon from silent members."""
    pipeline, delivered = make_pipeline()
    pipeline.ingest(causal_msg("b", 1, 5), now=0.0)
    assert [m.payload for m in delivered] == ["b1"]  # no hello from c needed


def test_causal_waits_for_its_past():
    pipeline, delivered = make_pipeline()
    # c's message depends on having delivered b's message 1.
    pipeline.ingest(causal_msg("c", 1, 9, vector=(("b", 1),)), now=0.0)
    assert delivered == []
    pipeline.ingest(causal_msg("b", 1, 5), now=0.0)
    assert [m.payload for m in delivered] == ["b1", "c1"]


def test_causal_chain_through_three_members():
    pipeline, delivered = make_pipeline(me="x", members=("x", "a", "b", "c"))
    pipeline.ingest(causal_msg("c", 1, 9, vector=(("a", 1), ("b", 1))), now=0.0)
    pipeline.ingest(causal_msg("b", 1, 7, vector=(("a", 1),)), now=0.0)
    assert delivered == []
    pipeline.ingest(causal_msg("a", 1, 3), now=0.0)
    assert [m.payload for m in delivered] == ["a1", "b1", "c1"]


def test_causal_vector_for_departed_member_waived():
    pipeline, delivered = make_pipeline(me="a", members=("a", "b"))
    # Vector references daemon "z", which is not in this view (its
    # messages died with the previous membership): do not block forever.
    pipeline.ingest(causal_msg("b", 1, 5, vector=(("z", 4),)), now=0.0)
    assert [m.payload for m in delivered] == ["b1"]


def test_sender_stamps_vector_from_deliveries():
    pipeline, __ = make_pipeline(me="a")
    pipeline.ingest(causal_msg("b", 1, 5), now=0.0)  # delivered
    message = pipeline.next_message(
        ServiceType.CAUSAL, KIND_APP, "g", None, 1, "reply"
    )
    assert ("b", 1) in (message.causal_vector or ())


def test_fifo_and_causal_share_per_sender_order():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(causal_msg("b", 1, 5, vector=(("c", 1),)), now=0.0)
    fifo = DataMessage(
        sender_daemon="b", view_id=VIEW, seq=2, lamport=6,
        service=ServiceType.FIFO, kind=KIND_APP, group="g",
        origin=None, origin_seq=2, payload="b-fifo",
    )
    pipeline.ingest(fifo, now=0.0)
    # The FIFO message must not overtake b's held causal message.
    assert delivered == []
    pipeline.ingest(causal_msg("c", 1, 2), now=0.0)
    assert [m.payload for m in delivered] == ["c1", "b1", "b-fifo"]


def test_flush_forces_held_causal_out():
    pipeline, delivered = make_pipeline()
    pipeline.ingest(causal_msg("b", 1, 5, vector=(("c", 7),)), now=0.0)
    assert delivered == []
    pipeline.flush_with([], synced_members=["a", "b"])
    assert [m.payload for m in delivered] == ["b1"]


def test_cut_reports_held_causal_as_undelivered():
    pipeline, __ = make_pipeline()
    pipeline.ingest(causal_msg("b", 1, 5, vector=(("c", 7),)), now=0.0)
    undelivered, __, __ = pipeline.cut()
    assert [(m.sender_daemon, m.seq) for m in undelivered] == [("b", 1)]


# -- full stack -----------------------------------------------------------------------


def members_of(client, group="g"):
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def payloads(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


def test_causal_chain_order_end_to_end():
    cluster = Cluster(daemon_count=3, seed=101)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(members_of(x) == expected for x in (a, b, c)))

    def maybe_reply(event):
        if isinstance(event, DataEvent) and event.payload == "question":
            b.multicast(ServiceType.CAUSAL, "g", "answer")

    b.on_event(maybe_reply)
    a.multicast(ServiceType.CAUSAL, "g", "question")
    cluster.run_until(lambda: "answer" in payloads(c), timeout=60)
    order = payloads(c)
    assert order.index("question") < order.index("answer")


def test_causal_faster_than_agreed_under_silence():
    """The point of real causal: no waiting on horizons from members
    with nothing to say."""
    cluster = Cluster(daemon_count=3, seed=103)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    c = cluster.client("c", "d2")
    for client in (a, b, c):
        client.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(members_of(x) == expected for x in (a, b, c)))
    cluster.run(0.1)  # quiesce

    start = cluster.kernel.now
    a.multicast(ServiceType.CAUSAL, "g", "causal-ping")
    cluster.run_until(lambda: "causal-ping" in payloads(b), timeout=60)
    causal_latency = cluster.kernel.now - start

    start = cluster.kernel.now
    a.multicast(ServiceType.AGREED, "g", "agreed-ping")
    cluster.run_until(lambda: "agreed-ping" in payloads(b), timeout=60)
    agreed_latency = cluster.kernel.now - start

    # Causal needs one network hop; agreed additionally needs progress
    # evidence from the third daemon.
    assert causal_latency <= agreed_latency
