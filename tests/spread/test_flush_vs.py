"""The Flush layer: View Synchrony semantics."""

import pytest

from repro.errors import FlushError, SendBlockedError
from repro.spread.events import (
    DataEvent,
    FlushRequestEvent,
    MembershipEvent,
    SelfLeaveEvent,
)
from repro.spread.flush import FlushClient
from repro.types import MembershipCause

from tests.spread.conftest import Cluster


def make_flush_clients(cluster, *specs, auto_flush=True):
    clients = []
    for private_name, daemon in specs:
        raw = cluster.client(private_name, daemon)
        clients.append(FlushClient(raw, auto_flush=auto_flush))
    return clients


def vs_members(fc, group="g"):
    views = [
        e for e in fc.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def vs_payloads(fc, group="g"):
    return [
        e.payload for e in fc.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


def test_single_member_view_installs(cluster):
    (a,) = make_flush_clients(cluster, ("a", "d0"))
    a.join("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    assert a.current_members("g")


def test_two_member_flush_completes(cluster):
    a, b = make_flush_clients(cluster, ("a", "d0"), ("b", "d1"))
    a.join("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    b.join("g")
    expected = {"#a#d0", "#b#d1"}
    cluster.run_until(
        lambda: vs_members(a) == expected and vs_members(b) == expected
    )


def test_flush_request_precedes_view(cluster):
    a, = make_flush_clients(cluster, ("a", "d0"))
    a.join("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    order = [type(e).__name__ for e in a.queue]
    assert order.index("FlushRequestEvent") < order.index("MembershipEvent")


def test_manual_flush_blocks_until_ok(cluster):
    a, = make_flush_clients(cluster, ("a", "d0"), auto_flush=False)
    a.join("g")
    cluster.run_until(
        lambda: any(isinstance(e, FlushRequestEvent) for e in a.queue)
    )
    cluster.run(0.5)
    assert vs_members(a) == set()  # not delivered yet
    a.flush_ok("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})


def test_send_blocked_during_flush(cluster):
    a, = make_flush_clients(cluster, ("a", "d0"), auto_flush=False)
    a.join("g")
    cluster.run_until(
        lambda: any(isinstance(e, FlushRequestEvent) for e in a.queue)
    )
    with pytest.raises(SendBlockedError):
        a.multicast("g", "too-early")
    a.flush_ok("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    a.multicast("g", "now-fine")
    cluster.run_until(lambda: "now-fine" in vs_payloads(a))


def test_multicast_requires_join(cluster):
    a, = make_flush_clients(cluster, ("a", "d0"))
    with pytest.raises(FlushError):
        a.multicast("g", "x")


def test_flush_ok_without_pending_raises(cluster):
    a, = make_flush_clients(cluster, ("a", "d0"))
    a.join("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    with pytest.raises(FlushError):
        a.flush_ok("g")


def test_data_delivered_in_senders_view(cluster):
    a, b = make_flush_clients(cluster, ("a", "d0"), ("b", "d1"))
    a.join("g")
    b.join("g")
    expected = {"#a#d0", "#b#d1"}
    cluster.run_until(
        lambda: vs_members(a) == expected and vs_members(b) == expected
    )
    a.multicast("g", "msg-1")
    cluster.run_until(lambda: "msg-1" in vs_payloads(b))
    # b's last view at delivery time must equal a's view at send time.
    assert vs_members(b) == expected


def test_three_members_same_views_same_messages(cluster):
    a, b, c = make_flush_clients(
        cluster, ("a", "d0"), ("b", "d1"), ("c", "d2")
    )
    for fc in (a, b, c):
        fc.join("g")
    expected = {"#a#d0", "#b#d1", "#c#d2"}
    cluster.run_until(lambda: all(vs_members(x) == expected for x in (a, b, c)))
    a.multicast("g", "m1")
    b.multicast("g", "m2")
    cluster.run_until(
        lambda: all(len(vs_payloads(x)) == 2 for x in (a, b, c))
    )
    assert vs_payloads(a) == vs_payloads(b) == vs_payloads(c)


def test_leave_delivers_self_leave_and_new_view(cluster):
    a, b = make_flush_clients(cluster, ("a", "d0"), ("b", "d1"))
    a.join("g")
    b.join("g")
    expected = {"#a#d0", "#b#d1"}
    cluster.run_until(lambda: vs_members(a) == expected)
    b.leave("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    cluster.run_until(
        lambda: any(isinstance(e, SelfLeaveEvent) for e in b.queue)
    )


def test_partition_and_merge_through_flush(cluster):
    a, b = make_flush_clients(cluster, ("a", "d0"), ("b", "d1"))
    a.join("g")
    b.join("g")
    expected = {"#a#d0", "#b#d1"}
    cluster.run_until(lambda: vs_members(a) == expected)
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    cluster.run_until(lambda: vs_members(b) == {"#b#d1"})
    cluster.network.heal()
    cluster.run_until(
        lambda: vs_members(a) == expected and vs_members(b) == expected
    )
    last = [e for e in a.queue if isinstance(e, MembershipEvent)][-1]
    assert last.cause == MembershipCause.NETWORK


def test_unicast_not_blocked_by_flush(cluster):
    a, b = make_flush_clients(
        cluster, ("a", "d0"), ("b", "d1"), auto_flush=False
    )
    a.join("g")
    b.join("g")
    cluster.run_until(
        lambda: any(isinstance(e, FlushRequestEvent) for e in a.queue)
    )
    # Group sends are blocked, but private messages still flow.
    a.unicast(b.pid, "direct")
    cluster.run_until(
        lambda: any(
            isinstance(e, DataEvent) and e.payload == "direct" for e in b.queue
        )
    )


def test_cascading_membership_supersedes_pending_flush(cluster):
    a, b, c = make_flush_clients(
        cluster, ("a", "d0"), ("b", "d1"), ("c", "d2"), auto_flush=False
    )
    a.join("g")
    cluster.run_until(
        lambda: any(isinstance(e, FlushRequestEvent) for e in a.queue)
    )
    a.flush_ok("g")
    cluster.run_until(lambda: vs_members(a) == {"#a#d0"})
    # Two joins land close together: a may see a second flush request
    # before completing the first new view.
    b.join("g")
    c.join("g")
    final = {"#a#d0", "#b#d1", "#c#d2"}

    def pump(fc):
        def answer(event):
            if isinstance(event, FlushRequestEvent):
                fc.flush_ok(str(event.group))

        return answer

    for fc in (a, b, c):
        fc.on_event(pump(fc))
        # Answer any requests already queued.
        for event in list(fc.queue):
            if isinstance(event, FlushRequestEvent):
                try:
                    fc.flush_ok(str(event.group))
                except FlushError:
                    pass
    cluster.run_until(
        lambda: all(vs_members(x) == final for x in (a, b, c)), timeout=20
    )
    # Every client saw the same sequence of VS views for the group.
    def views(fc):
        return [
            tuple(sorted(str(m) for m in e.members))
            for e in fc.queue
            if isinstance(e, MembershipEvent)
        ]

    # Views common to all three (suffix) must agree on the final view.
    assert views(a)[-1] == views(b)[-1] == views(c)[-1]
