"""Slab-backed GroupTable mechanics.

Protocol-level group behaviour (joins through the agreed-order pipeline,
merges at view changes) is covered by ``test_groups_and_data.py``; these
tests target the slab layout itself — bisect insertion order, the
contiguous per-daemon ``members_on`` range, the pid reverse index, and
group-id recycling through the free list.
"""

from repro.spread.groups import GroupTable


def _pid(name: str, daemon: str) -> str:
    return f"#{name}#{daemon}"


def test_members_sorted_by_daemon_then_name():
    table = GroupTable()
    for pid in (_pid("z", "d2"), _pid("a", "d1"), _pid("m", "d1"),
                _pid("b", "d0")):
        assert table.join("g", pid)
    assert table.members_of("g") == (
        _pid("b", "d0"), _pid("a", "d1"), _pid("m", "d1"), _pid("z", "d2"),
    )


def test_duplicate_join_and_missing_leave_are_noops():
    table = GroupTable()
    assert table.join("g", _pid("a", "d0"))
    assert not table.join("g", _pid("a", "d0"))
    assert table.members_of("g") == (_pid("a", "d0"),)
    assert not table.leave("g", _pid("ghost", "d0"))
    assert not table.leave("nogroup", _pid("a", "d0"))


def test_members_on_is_exact_daemon_slice():
    table = GroupTable()
    expectations = {}
    for daemon in ("d0", "d1", "d2"):
        for name in ("a", "b", "c"):
            table.join("g", _pid(name, daemon))
            expectations.setdefault(daemon, []).append(_pid(name, daemon))
    for daemon, members in expectations.items():
        assert table.members_on("g", daemon) == tuple(members)
    assert table.members_on("g", "d9") == ()
    assert table.members_on("nogroup", "d0") == ()


def test_members_on_does_not_bleed_into_prefixed_daemon_names():
    # "d1" and "d10" share a prefix; the bisect range for d1 must stop
    # before d10's members.
    table = GroupTable()
    table.join("g", _pid("a", "d1"))
    table.join("g", _pid("b", "d10"))
    assert table.members_on("g", "d1") == (_pid("a", "d1"),)
    assert table.members_on("g", "d10") == (_pid("b", "d10"),)


def test_reverse_index_tracks_groups_of_process():
    table = GroupTable()
    pid = _pid("p", "d0")
    for group in ("beta", "alpha", "gamma"):
        table.join(group, pid)
    table.join("alpha", _pid("q", "d1"))
    assert table.groups_of(pid) == ("alpha", "beta", "gamma")
    affected = table.remove_process(pid)
    assert affected == ("alpha", "beta", "gamma")
    assert table.groups_of(pid) == ()
    # beta/gamma became empty and were collected; alpha survives.
    assert table.groups() == ("alpha",)
    assert table.remove_process(pid) == ()


def test_empty_groups_are_collected_and_gids_recycled():
    table = GroupTable()
    pid = _pid("p", "d0")
    table.join("old", pid)
    gid = table._gids["old"]
    table.leave("old", pid)
    assert table.groups() == ()
    # The freed slab id is reused by the next interned group.
    table.join("new", pid)
    assert table._gids["new"] == gid


def test_snapshot_sorted_and_independent_of_recycling():
    table = GroupTable()
    table.join("zeta", _pid("a", "d0"))
    table.join("alpha", _pid("b", "d1"))
    table.leave("zeta", _pid("a", "d0"))
    table.join("beta", _pid("c", "d0"))  # reuses zeta's slab id
    snapshot = table.snapshot()
    assert list(snapshot) == ["alpha", "beta"]
    assert snapshot["beta"] == (_pid("c", "d0"),)


def test_is_member_and_counts():
    table = GroupTable()
    table.join("g", _pid("a", "d0"))
    table.join("h", _pid("a", "d0"))
    assert table.is_member("g", _pid("a", "d0"))
    assert not table.is_member("g", _pid("b", "d0"))
    assert not table.is_member("nogroup", _pid("a", "d0"))
    assert table.group_count() == 2


def test_change_counter_lifecycle():
    table = GroupTable()
    pid = _pid("a", "d0")
    table.join("g", pid)
    assert table.bump_change("g") == 1
    assert table.bump_change("g") == 2
    # The counter SURVIVES empty-group collection: within one daemon
    # view it is the only thing keeping GroupViewId unique, so a group
    # that empties and re-forms must not reuse old view ids.
    table.leave("g", pid)
    table.join("g", pid)
    assert table.bump_change("g") == 3
    table.replace({"g": (pid,)})  # view installation restarts counters
    assert table.bump_change("g") == 1


def test_replace_rebuilds_slabs_and_reverse_index():
    table = GroupTable()
    table.join("stale", _pid("x", "d9"))
    merged = {
        "g": (_pid("b", "d1"), _pid("a", "d0")),
        "empty": (),
        "h": (_pid("a", "d0"),),
    }
    table.replace(merged)
    assert table.groups() == ("g", "h")
    assert table.members_of("g") == (_pid("a", "d0"), _pid("b", "d1"))
    assert table.groups_of(_pid("a", "d0")) == ("g", "h")
    assert table.groups_of(_pid("x", "d9")) == ()


def test_merged_prunes_dead_daemons_and_unions():
    snap_a = {"g": (_pid("a", "d0"), _pid("b", "d1"))}
    snap_b = {"g": (_pid("c", "d2"),), "h": (_pid("b", "d1"),)}
    merged = GroupTable.merged([snap_a, snap_b], surviving_daemons=["d0", "d1"])
    assert merged == {
        "g": (_pid("a", "d0"), _pid("b", "d1")),
        "h": (_pid("b", "d1"),),
    }


def test_empty_groups_do_not_survive_a_view_change():
    # The two view-change layers must agree on empty groups: merged()
    # never emits a group whose members were all on dead daemons, and
    # replace() drops empty member tuples — so a fully-dead group is
    # gone from groups()/snapshot()/group_count() after installation.
    snap_a = {"doomed": (_pid("a", "d9"), _pid("b", "d8")),
              "mixed": (_pid("c", "d9"), _pid("d", "d0"))}
    snap_b = {"doomed": (_pid("e", "d8"),)}
    merged = GroupTable.merged([snap_a, snap_b], surviving_daemons=["d0"])
    assert merged == {"mixed": (_pid("d", "d0"),)}
    table = GroupTable()
    table.join("doomed", _pid("a", "d9"))
    table.replace(merged)
    assert table.groups() == ("mixed",)
    assert table.group_count() == 1
    assert table.snapshot() == {"mixed": (_pid("d", "d0"),)}
    # And replace() agrees even when handed an explicit empty entry.
    table.replace({"mixed": (_pid("d", "d0"),), "doomed": ()})
    assert table.groups() == ("mixed",)


def test_large_group_stays_sorted_under_churn():
    table = GroupTable()
    pids = [_pid(f"m{index:04d}", f"d{index % 7}") for index in range(1500)]
    # Join in a scrambled order, leave a third, join some back.
    for pid in reversed(pids):
        table.join("big", pid)
    for pid in pids[::3]:
        table.leave("big", pid)
    for pid in pids[::6]:
        table.join("big", pid)
    members = table.members_of("big")
    slab = table._slabs[table._gids["big"]]
    assert list(members) == sorted(members, key=GroupTable._sort_key)
    assert slab.keys == [GroupTable._sort_key(m) for m in members]
    assert slab.member_set == set(members)
    total = sum(len(table.members_on("big", f"d{d}")) for d in range(7))
    assert total == len(members)
