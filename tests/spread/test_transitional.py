"""EVS transitional configuration events."""

import pytest

from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.flush import FlushClient
from repro.types import MembershipCause, ServiceType

from tests.spread.conftest import Cluster


def membership_events(client, group="g"):
    return [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]


def regular_members(client, group="g"):
    regular = [
        e for e in membership_events(client, group)
        if e.cause != MembershipCause.TRANSITIONAL
    ]
    return {str(m) for m in regular[-1].members} if regular else set()


def test_transitional_delivered_before_network_membership():
    cluster = Cluster(daemon_count=3, seed=111)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: regular_members(a) == {"#a#d0", "#b#d1"})
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: regular_members(a) == {"#a#d0"}, timeout=30)
    events = membership_events(a)
    causes = [e.cause for e in events]
    # The transitional signal precedes the regular NETWORK membership.
    assert MembershipCause.TRANSITIONAL in causes
    transitional_index = causes.index(MembershipCause.TRANSITIONAL)
    network_index = causes.index(MembershipCause.NETWORK)
    assert transitional_index < network_index
    # The transitional set is the co-moving subset: just us.
    transitional = events[transitional_index]
    assert {str(m) for m in transitional.members} == {"#a#d0"}


def test_no_transitional_for_voluntary_join():
    """Plain joins/leaves are not membership-protocol installs; no
    transitional signal is involved."""
    cluster = Cluster(daemon_count=3, seed=112)
    cluster.settle()
    a = cluster.client("a", "d0")
    a.join("g")
    b = cluster.client("b", "d1")
    b.join("g")
    cluster.run_until(lambda: regular_members(a) == {"#a#d0", "#b#d1"})
    causes = [e.cause for e in membership_events(a)]
    assert MembershipCause.TRANSITIONAL not in causes


def test_flush_layer_passes_transitional_without_flush_round():
    cluster = Cluster(daemon_count=3, seed=113)
    cluster.settle()
    raw_a = cluster.client("a", "d0")
    raw_b = cluster.client("b", "d1")
    fa = FlushClient(raw_a, auto_flush=True)
    fb = FlushClient(raw_b, auto_flush=True)
    fa.join("g")
    fb.join("g")

    def vs_members(fc):
        views = [
            e for e in fc.queue
            if isinstance(e, MembershipEvent)
            and e.cause != MembershipCause.TRANSITIONAL
        ]
        return {str(m) for m in views[-1].members} if views else set()

    cluster.run_until(lambda: vs_members(fa) == {"#a#d0", "#b#d1"}, timeout=30)
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: vs_members(fa) == {"#a#d0"}, timeout=30)
    transitional = [
        e for e in fa.queue
        if isinstance(e, MembershipEvent)
        and e.cause == MembershipCause.TRANSITIONAL
    ]
    assert transitional  # surfaced to the application through the layer


def test_secure_layer_ignores_transitional():
    """The secure session re-keys on regular memberships only; the
    transitional signal is advisory and must not trigger an agreement."""
    from tests.secure.conftest import SecureHarness
    from repro.secure.events import RekeyStartedEvent

    h = SecureHarness(seed=114)
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    rekeys_before = len([e for e in a.queue if isinstance(e, RekeyStartedEvent)])
    h.network.partition([["d0"], ["d1", "d2"]])
    h.run_until(lambda: h.secure_members_of("a") == {str(a.pid)}, timeout=60)
    rekeys_after = len([e for e in a.queue if isinstance(e, RekeyStartedEvent)])
    # Exactly one re-key for the partition (not two: the transitional
    # event did not start its own agreement).
    assert rekeys_after == rekeys_before + 1
    transitional = [
        e for e in a.queue
        if isinstance(e, MembershipEvent)
        and getattr(e, "cause", None) == MembershipCause.TRANSITIONAL
    ]
    assert transitional  # still visible to the application
