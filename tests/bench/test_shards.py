"""Deterministic shard-driver tests.

The driver's whole value is that process scheduling cannot perturb the
result: inboxes are injected sorted at epoch barriers, so the combined
digest is a pure function of (shards, epochs, workload params, seed,
delta).  Most tests run inline (single process, same protocol); one
spawns real worker processes to prove the digest is identical there.
"""

import pytest

from repro.bench.shards import DEFAULT_DELTA, _route, run_shards

_PARAMS = {"groups": 2, "members": 4}


def _inline(shards=2, epochs=2, seed=0, scheduler=None, params=_PARAMS):
    return run_shards(
        shards, epochs, workload="chatter", params=dict(params),
        processes=False, scheduler=scheduler, seed=seed,
    )


def test_inline_run_is_deterministic():
    first = _inline()
    second = _inline()
    assert first.digest == second.digest
    assert first.events_total == second.events_total
    assert first.cross_shard_messages == second.cross_shard_messages


def test_seed_changes_digest():
    # Enough epochs and a low gossip period that cross-shard messages
    # are actually received (the digest hashes received traffic, whose
    # send times come from the seeded kernel RNG).
    params = {"groups": 2, "members": 4, "gossip_every": 2}
    first = _inline(epochs=4, seed=0, params=params)
    second = _inline(epochs=4, seed=1, params=params)
    assert first.cross_shard_messages > 0
    assert first.digest != second.digest


def test_param_changes_digest():
    bigger = _inline(params={"groups": 3, "members": 4})
    assert bigger.digest != _inline().digest


def test_cross_shard_traffic_flows():
    result = _inline(shards=3, epochs=3)
    assert result.cross_shard_messages > 0
    assert result.events_total > 0
    assert len(result.per_shard) == 3
    for stats in result.per_shard:
        assert stats["events_processed"] > 0


def test_scheduler_choice_does_not_change_digest():
    heap = _inline(scheduler="heap")
    calendar = _inline(scheduler="calendar")
    assert heap.digest == calendar.digest
    assert heap.events_total == calendar.events_total


def test_route_is_a_ring():
    outboxes = [[(0.5, 0, 0, "a")], [(0.5, 1, 0, "b")], [(0.5, 2, 0, "c")]]
    inboxes = _route(outboxes, 3)
    assert inboxes[1] == [(0.5, 0, 0, "a")]
    assert inboxes[2] == [(0.5, 1, 0, "b")]
    assert inboxes[0] == [(0.5, 2, 0, "c")]


def test_single_shard_routes_to_itself():
    result = _inline(shards=1, epochs=2)
    assert result.shards == 1
    assert result.digest == _inline(shards=1, epochs=2).digest


def test_validation():
    with pytest.raises(ValueError):
        run_shards(0, 1, processes=False)
    with pytest.raises(ValueError):
        run_shards(1, 0, processes=False)
    with pytest.raises(ValueError):
        run_shards(1, 1, workload="nope", processes=False)


def test_result_metadata():
    result = _inline(epochs=3)
    assert result.epochs == 3
    assert result.delta == DEFAULT_DELTA
    assert result.processes is False
    assert result.events_per_s >= 0.0


def test_process_mode_matches_inline_digest():
    inline = _inline(shards=2, epochs=2)
    procs = run_shards(
        2, 2, workload="chatter", params=dict(_PARAMS),
        processes=True, seed=0,
    )
    assert procs.digest == inline.digest
    assert procs.events_total == inline.events_total
