"""Smoke tests for the scale bench (``repro.bench.scale``).

The full curves take minutes and gigabytes; these tests run each stage
at toy sizes and check shape, accounting, and the invariants the bench
is allowed to assert on CI (fingerprint identity above all).
"""

import json

from repro.bench.scale import (
    bench_equivalence,
    bench_group_curve,
    bench_schedulers,
    bench_shards,
)


def test_scheduler_ab_rows_have_both_sides():
    rows = bench_schedulers(pending_sizes=(256,), events=2000, reps=1)
    assert len(rows) == 1
    row = rows[0]
    assert row["pending"] == 256
    assert row["heap"]["events_per_s"] > 0
    assert row["calendar"]["events_per_s"] > 0
    assert row["calendar_speedup"] > 0
    # Calendar introspection only appears on the calendar side.
    assert "calendar_buckets" in row["calendar"]
    assert "calendar_buckets" not in row["heap"]
    # Each side dispatched exactly the timed budget (the population is
    # self-sustaining, so nothing runs dry).
    assert row["heap"]["events"] == 2000
    assert row["calendar"]["events"] == 2000


def test_group_curve_reports_rates():
    rows = bench_group_curve(sizes=(32, 64), daemons=4, budget_s=0.02)
    assert [row["members"] for row in rows] == [32, 64]
    for row in rows:
        assert row["join_members_per_s"] > 0
        assert row["is_member_per_s"] > 0
        assert row["fanout_members_per_s"] > 0
        assert row["is_member_probe"] is True


def test_shard_stage_inline():
    rows = bench_shards(
        shard_counts=(1, 2), epochs=2, groups=2, members=4,
        processes=False, scheduler="calendar",
    )
    assert [row["shards"] for row in rows] == [1, 2]
    for row in rows:
        assert row["events_processed"] > 0
        assert row["events_per_s"] > 0
        assert len(row["digest"]) == 64


def test_equivalence_stage_fingerprints_match(tmp_path):
    rows = bench_equivalence(
        seeds=(0,), module="tgdh", quick=True, dump_dir=str(tmp_path)
    )
    assert len(rows) == 1
    row = rows[0]
    assert row["identical"]
    assert row["heap_fingerprint"] == row["calendar_fingerprint"]
    # The calendar run dumped obs evidence for inspect --check.
    dump = tmp_path / "seed0-tgdh"
    assert (dump / "meta.json").exists()
    meta = json.loads((dump / "meta.json").read_text())
    assert meta["seed"] == 0
