"""Tier-1 smoke test for the fast-path perf harness.

Runs one quick-budget iteration of every measurement so a broken bench
(import error, renamed result key, division by zero on an empty sample)
fails in the ordinary test run rather than the first time someone asks
for performance numbers.
"""

from __future__ import annotations

import json

from repro.bench.fastpath import (
    PAYLOAD_BYTES,
    bench_disabled_trace_pair,
    run_microbench,
    write_report,
)

EXPECTED_RESULT_KEYS = {
    "blowfish_blocks_per_s",
    "blowfish_reference_blocks_per_s",
    "blowfish_block_speedup",
    "key_schedules_per_s",
    "seal_bytes_per_s",
    "unseal_bytes_per_s",
    "seal_msgs_per_s",
    "unseal_msgs_per_s",
    "baseline_seal_bytes_per_s",
    "baseline_unseal_bytes_per_s",
    "seal_speedup_vs_baseline",
    "unseal_speedup_vs_baseline",
    "hmac_bytes_per_s",
    "kernel_events_per_s",
    "cipher_cache_hits_per_s",
    "disabled_trace_seal_bytes_per_s",
    "disabled_trace_overhead_pct",
}

#: Overhead can legitimately be a small negative number (measurement
#: noise); every other result is a strictly positive rate or ratio.
SIGNED_RESULT_KEYS = {"disabled_trace_overhead_pct"}


def test_quick_microbench_document(tmp_path):
    document = run_microbench(quick=True)

    assert document["quick"] is True
    assert document["warmup_rounds"] == 1
    results = document["results"]
    assert set(results) == EXPECTED_RESULT_KEYS
    for name, value in results.items():
        if name not in SIGNED_RESULT_KEYS:
            assert value > 0, name

    # Even at smoke budgets the fast path must beat the seed code; a
    # ratio at or below 1 means the fast path silently fell back.
    assert results["seal_speedup_vs_baseline"] > 1.0
    assert results["unseal_speedup_vs_baseline"] > 1.0
    assert results["blowfish_block_speedup"] > 1.0

    assert document["cipher_cache"]["hits"] >= 0
    assert document["key_schedule_constructions"] > 0

    path = write_report(document, tmp_path / "BENCH_fastpath.json")
    loaded = json.loads(path.read_text())
    assert loaded["results"] == results


def test_disabled_trace_overhead_under_two_percent():
    """The hoisted ``if tracer.enabled:`` guard on hot record sites must
    cost under 2% of a seal.  Taking the best of three short attempts
    filters scheduler noise: the guard's true cost is a lower bound of
    the measurements, never an upper one."""
    payload = bytes((i * 31 + 7) & 0xFF for i in range(PAYLOAD_BYTES))
    overheads = []
    for __ in range(3):
        guarded, bare = bench_disabled_trace_pair(0.05, payload)
        overheads.append(bare["units_per_s"] / guarded["units_per_s"] - 1.0)
    assert min(overheads) < 0.02, overheads
