"""The benchmark harness library itself: models, formulas, runner,
reporting, workloads, report tool."""

import pytest

from repro.bench.expcount import (
    table2,
    table2_cliques_controller,
    table2_cliques_new_member,
    table3,
    table3_cliques,
    table4,
)
from repro.bench.platform_model import (
    PENTIUM_II_450,
    SUN_ULTRA2,
    PlatformModel,
    calibrate_local_machine,
)
from repro.bench.reporting import Table, series_block
from repro.bench.runner import BatchTimer
from repro.bench.testbed import ProtocolGroup
from repro.bench.workloads import (
    WorkloadEventKind,
    WorkloadSpec,
    generate_events,
)
from repro.sim.rng import DeterministicRng


# -- platform models -----------------------------------------------------------------


def test_paper_platform_costs():
    assert SUN_ULTRA2.exp_cost == 0.012
    assert PENTIUM_II_450.exp_cost == 0.0025


def test_time_for_is_linear():
    assert PENTIUM_II_450.time_for(45) == pytest.approx(0.1125)
    assert SUN_ULTRA2.time_for(0) == 0.0


def test_calibration_measures_something_sane():
    local = calibrate_local_machine(samples=5)
    # A 512-bit modexp takes between 1 microsecond and 1 second anywhere.
    assert 1e-6 < local.exp_cost < 1.0
    assert "pow" in local.name


# -- count formulas ------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 5, 10, 30])
def test_table2_totals_are_row_sums(n):
    for rows in table2(n).values():
        body = [count for name, count in rows if name != "Total"]
        total = dict(rows)["Total"]
        assert sum(body) == total


@pytest.mark.parametrize("n", [3, 5, 10, 30])
def test_table3_totals_are_row_sums(n):
    for rows in table3(n).values():
        body = [count for name, count in rows if name != "Total"]
        assert sum(body) == dict(rows)["Total"]


@pytest.mark.parametrize("n", [3, 5, 10, 30])
def test_table4_consistent_with_tables_2_and_3(n):
    t4 = table4(n)
    join_controller = dict(table2_cliques_controller(n))["Total"]
    join_member = dict(table2_cliques_new_member(n))["Total"]
    assert t4["Cliques"]["Join"] == join_controller + join_member
    assert t4["Cliques"]["Leave"] == dict(table3_cliques(n))["Total"]


# -- batch timer ------------------------------------------------------------------------


def test_batch_timer_averages():
    values = iter([1.0] * 50 + [3.0] * 50)
    timer = BatchTimer(batches=2, per_batch=50)
    result = timer.measure(lambda: next(values))
    assert result.mean == pytest.approx(2.0)
    assert result.batch_means == [1.0, 3.0]
    assert result.samples == 100
    assert "batches" in result.describe()


def test_batch_timer_validation():
    with pytest.raises(ValueError):
        BatchTimer(batches=0)
    with pytest.raises(ValueError):
        BatchTimer(per_batch=0)


def test_batch_timer_zero_stdev_single_batch():
    timer = BatchTimer(batches=1, per_batch=3)
    result = timer.measure(lambda: 0.5)
    assert result.stdev == 0.0


# -- reporting --------------------------------------------------------------------------------


def test_table_renders_aligned():
    table = Table("T", ["col-a", "b"])
    table.add(1, "xx")
    table.add(22, 0.5)
    text = table.render()
    assert "T" in text and "col-a" in text
    assert "0.5000" in text  # float formatting


def test_table_rejects_wrong_arity():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add(1)


def test_series_block():
    text = series_block("S", "x", [1, 2], {"y": [10, 20]}, unit="ms")
    assert "S" in text and "(unit: ms)" in text


# -- workloads -----------------------------------------------------------------------------------


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(duration=0)
    with pytest.raises(ValueError):
        WorkloadSpec(join_rate=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(min_members=5, max_members=2)


def test_generate_events_reproducible():
    spec = WorkloadSpec(duration=10.0)
    a = generate_events(spec, DeterministicRng(5))
    b = generate_events(spec, DeterministicRng(5))
    assert a == b


def test_generate_events_sorted_and_bounded():
    spec = WorkloadSpec(duration=10.0, partition_rate=0.2, heal_delay=1.0)
    events = generate_events(spec, DeterministicRng(6))
    times = [e.at for e in events]
    assert times == sorted(times)
    membership = [e for e in events if e.kind in (
        WorkloadEventKind.JOIN, WorkloadEventKind.LEAVE)]
    assert all(0 <= e.at < 10.0 for e in membership)
    partitions = [e for e in events if e.kind == WorkloadEventKind.PARTITION]
    heals = [e for e in events if e.kind == WorkloadEventKind.HEAL]
    assert len(partitions) == len(heals)


def test_zero_rates_mean_no_events():
    spec = WorkloadSpec(
        duration=5.0, join_rate=0, leave_rate=0, send_rate=0, partition_rate=0
    )
    assert generate_events(spec, DeterministicRng(1)) == []


# -- testbed drivers -----------------------------------------------------------------------------


def test_protocol_group_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        ProtocolGroup("quantum")


def test_protocol_group_grow_and_agree():
    group = ProtocolGroup("cliques")
    group.grow_to(4)
    assert len(group.members) == 4
    assert group.secrets_agree()


def test_protocol_group_key_controller_roles():
    cliques = ProtocolGroup("cliques")
    cliques.grow_to(3)
    assert cliques.key_controller == cliques.members[-1]  # newest
    ckd = ProtocolGroup("ckd")
    ckd.grow_to(3)
    assert ckd.key_controller == ckd.members[0]  # oldest


# -- report tool ------------------------------------------------------------------------------------


def test_report_tool_runs(capsys):
    from repro.bench.report import main

    assert main(["--skip-figure3"]) == 0
    out = capsys.readouterr().out
    assert "Tables 2-4" in out
    assert "Figure 4" in out
