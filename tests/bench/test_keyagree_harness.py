"""Tier-1 smoke tests for the key-agreement A/B harness and the
parallel sweep runner: one quick harness run plus one cell of each
sweep kind, so a broken bench fails in the ordinary test run."""

from __future__ import annotations

import json

import pytest

from repro.bench import keyagree
from repro.bench.sweep import make_cells, run_cell, run_sweep
from repro.sim.rng import stable_seed

EXPECTED_CELL_KEYS = {
    "protocol",
    "operation",
    "size",
    "iterations",
    "fast_median_s",
    "ref_median_s",
    "speedup",
    "counts_identical",
    "exp_counts",
}


def test_quick_harness_document(tmp_path):
    document = keyagree.run_harness(quick=True)

    assert document["quick"] is True
    assert document["modules"] == list(keyagree.MODULES)
    cells = document["cells"]
    assert {(c["protocol"], c["operation"]) for c in cells} == {
        (module, operation)
        for module in keyagree.MODULES
        for operation in ("join", "leave")
    }
    for cell in cells:
        assert set(cell) == EXPECTED_CELL_KEYS
        assert cell["fast_median_s"] > 0
        assert cell["ref_median_s"] > 0
        assert sum(cell["exp_counts"].values()) > 0

    # The invariance contract: identical counts on both backends, every
    # cell, even at smoke size.
    assert document["all_counts_identical"] is True
    # At least the shared-base CKD cells must beat the reference even at
    # smoke sizes; a harness-wide ratio <= 1 means the fast path fell back.
    assert any(c["speedup"] > 1.0 for c in cells)
    assert document["median_speedup_joinleave"] > 0
    assert document["fixed_base_cache"]["builds"] > 0

    path = keyagree.write_report(document, tmp_path / "BENCH_keyagree.json")
    loaded = json.loads(path.read_text())
    assert loaded["cells"] == cells


def test_harness_module_subset_and_validation(tmp_path):
    document = keyagree.run_harness(quick=True, modules=["tgdh"])
    assert document["modules"] == ["tgdh"]
    assert {c["protocol"] for c in document["cells"]} == {"tgdh"}
    with pytest.raises(ValueError):
        keyagree.run_harness(quick=True, modules=["gdh3"])


def test_quick_comparison_document(tmp_path):
    document = keyagree.run_comparison(quick=True)

    assert document["schema"] == keyagree.COMPARISON_SCHEMA
    assert document["all_counts_identical"] is True
    cells = document["cells"]
    assert {(c["protocol"], c["operation"]) for c in cells} == {
        (module, operation)
        for module in keyagree.MODULES
        for operation in ("join", "leave")
    }
    by_key = {
        (c["protocol"], c["operation"], c["size"]): c for c in cells
    }
    for cell in cells:
        assert cell["median_s"] > 0
        assert cell["serial_exps"] == sum(cell["exp_counts"].values())
    # The headline asymptotics, visible even at smoke sizes: doubling n
    # doubles-ish the Cliques join cost but adds a constant to TGDH's.
    sizes = document["sizes"]
    small, large = sizes[0], sizes[-1]
    cliques_growth = (
        by_key[("cliques", "join", large)]["serial_exps"]
        - by_key[("cliques", "join", small)]["serial_exps"]
    )
    tgdh_growth = (
        by_key[("tgdh", "join", large)]["serial_exps"]
        - by_key[("tgdh", "join", small)]["serial_exps"]
    )
    assert tgdh_growth < cliques_growth

    path = keyagree.write_comparison(document, tmp_path / "BENCH_tgdh.json")
    loaded = json.loads(path.read_text())
    assert loaded["cells"] == cells


def test_figure4_sweep_cell_is_deterministic():
    cell = {
        "kind": "figure4",
        "protocol": "cliques",
        "size": 6,
        "trial": 0,
        "seed": stable_seed(42, "figure4", "cliques", 6, 0),
    }
    first = run_cell(dict(cell))
    second = run_cell(dict(cell))
    assert first == second
    assert first["join_exps"] > 0
    assert first["ctrl_leave_exps"] > 0
    assert set(first["join_cpu_s"]) == set(first["ctrl_leave_cpu_s"])


def test_figure3_sweep_cell_times_join_and_leave():
    cell = {
        "kind": "figure3",
        "protocol": "cliques",
        "size": 3,
        "trial": 0,
        "seed": stable_seed(42, "figure3", "cliques", 3, 0),
    }
    result = run_cell(cell)
    assert result["join_virtual_s"] > 0
    assert result["leave_virtual_s"] > 0


def test_run_sweep_serial_smoke():
    document = run_sweep(
        figure3_sizes=(), figure4_sizes=(4,), trials=2, jobs=1, base_seed=7
    )
    assert len(document["cells"]) == 4  # 2 protocols x 2 trials
    assert document["figure4_trials_consistent"] is True


def test_run_sweep_parallel_matches_serial():
    serial = run_sweep(
        figure3_sizes=(), figure4_sizes=(4, 5), trials=1, jobs=1, base_seed=9
    )
    parallel = run_sweep(
        figure3_sizes=(), figure4_sizes=(4, 5), trials=1, jobs=2, base_seed=9
    )
    assert serial["cells"] == parallel["cells"]


def test_make_cells_seeds_are_stable_and_distinct():
    cells = make_cells((4,), (4, 8), trials=2, base_seed=42)
    again = make_cells((4,), (4, 8), trials=2, base_seed=42)
    assert cells == again  # stable across calls (and across processes)
    seeds = [c["seed"] for c in cells]
    assert len(set(seeds)) == len(seeds)
