"""TGDH context protocol: convergence to byte-identical secrets across
every Table 1 event shape, epoch guards, and stale-token rejection."""

import pytest

from repro.crypto.dh import DHParams
from repro.crypto.random_source import DeterministicSource
from repro.errors import ControllerError, TGDHError, TokenError
from repro.tgdh.context import TGDHContext
from repro.tgdh.tokens import TGDHTreeToken, TGDHUpdateToken

from tests.tgdh.conftest import TGDHTestGroup


def test_singleton_has_key_and_epoch():
    group = TGDHTestGroup()
    group.create("a")
    ctx = group.contexts["a"]
    assert ctx.has_key
    assert ctx.epoch == 1
    assert ctx.is_controller


def test_two_member_join_agrees():
    group = TGDHTestGroup()
    group.create("a")
    before = group.secret()
    group.join("b")
    assert group.secret() != before
    assert group.contexts["a"].secret() == group.contexts["b"].secret()


def test_sequential_joins_agree_and_rotate():
    group = TGDHTestGroup()
    group.create("m000")
    seen = {group.secret()}
    for i in range(1, 9):
        group.join(f"m{i:03d}")
        secret = group.secret()
        assert secret not in seen, "key reuse across epochs"
        seen.add(secret)


def test_single_join_converges_in_one_round():
    """A join needs only the sponsor's tree broadcast — no gossip."""
    group = TGDHTestGroup()
    group.grow_to(8)
    group.join("zz")
    assert group.rounds_last_event == 1


def test_single_leave_converges_in_one_round():
    group = TGDHTestGroup()
    group.grow_to(8)
    group.leave("m003")
    assert group.rounds_last_event == 1


def test_multi_leave_agrees():
    group = TGDHTestGroup()
    group.grow_to(8)
    before = group.secret()
    group.leave("m001", "m004", "m006")
    assert sorted(group.members) == ["m000", "m002", "m003", "m005", "m007"]
    assert group.secret() != before


def test_batch_merge_agrees():
    group = TGDHTestGroup()
    group.grow_to(5)
    before = group.secret()
    group.event(arrived=["x1", "x2", "x3"])
    assert len(group.members) == 8
    assert group.secret() != before


def test_compound_partition_merge_agrees():
    group = TGDHTestGroup()
    group.grow_to(6)
    group.event(departed=["m001", "m003"], arrived=["n1", "n2"])
    assert len(group.members) == 6
    group.secret()


def test_cascaded_events_back_to_back():
    group = TGDHTestGroup()
    group.grow_to(4)
    for round_ in range(6):
        group.join(f"j{round_}")
        group.leave(f"j{round_}")
    assert len(group.members) == 4
    group.secret()


def test_refresh_rotates_secret():
    group = TGDHTestGroup()
    group.grow_to(5)
    before = group.secret()
    sponsor = group.refresh()
    assert group.secret() != before
    assert sponsor == group.tree_of().rightmost_leaf()


def test_refresh_requires_controller():
    group = TGDHTestGroup()
    group.grow_to(3)
    controller = group.contexts[group.members[0]].controller
    bystander = next(n for n in group.members if n != controller)
    with pytest.raises(ControllerError):
        group.contexts[bystander].refresh()


def test_start_event_requires_sponsorship():
    group = TGDHTestGroup()
    group.grow_to(4)
    sponsor = group.contexts[group.members[0]].sponsor_for(["m001"], [])
    bystander = next(n for n in group.members if n not in (sponsor, "m001"))
    with pytest.raises(ControllerError):
        group.contexts[bystander].start_event(["m001"], {})


def test_departed_member_cannot_follow():
    """The departed member's state cannot absorb the new epoch: the tree
    no longer contains its leaf."""
    group = TGDHTestGroup()
    group.grow_to(4)
    departed_ctx = group.contexts["m002"]
    group.leave("m002")
    sponsor = group.tree_of().rightmost_leaf()
    token = TGDHTreeToken(
        group="g",
        sender=sponsor,
        epoch=departed_ctx.epoch + 1,
        members=tuple(group.members),
        tree=group.tree_of().serialize(),
    )
    with pytest.raises(TokenError):
        departed_ctx.process_tree(token)


def test_stale_epoch_tree_token_rejected():
    group = TGDHTestGroup()
    group.grow_to(4)
    ctx = group.contexts["m000"]
    stale = TGDHTreeToken(
        group="g",
        sender="m003",
        epoch=ctx.epoch,  # replay of the current epoch, not epoch+1
        members=tuple(group.members),
        tree=ctx.tree.serialize(),
    )
    with pytest.raises(TokenError):
        ctx.process_tree(stale)


def test_stale_epoch_update_token_rejected():
    group = TGDHTestGroup()
    group.grow_to(4)
    ctx = group.contexts["m000"]
    stale = TGDHUpdateToken(
        group="g", sender="m001", epoch=ctx.epoch - 1, members=(), blinded={}
    )
    with pytest.raises(TokenError):
        ctx.process_update(stale)


def test_wrong_group_token_rejected():
    group = TGDHTestGroup()
    group.grow_to(2)
    ctx = group.contexts["m000"]
    wrong = TGDHTreeToken(
        group="other",
        sender="m001",
        epoch=ctx.epoch + 1,
        members=tuple(group.members),
        tree=ctx.tree.serialize(),
    )
    with pytest.raises(TokenError):
        ctx.process_tree(wrong)


def test_update_for_unknown_node_rejected():
    group = TGDHTestGroup()
    group.grow_to(4)
    ctx = group.contexts["m000"]
    bogus = TGDHUpdateToken(
        group="g",
        sender="m001",
        epoch=ctx.epoch,
        members=tuple(group.members),
        blinded={"000000": 1234},
    )
    with pytest.raises(TokenError):
        ctx.process_update(bogus)


def test_reset_drops_all_state():
    group = TGDHTestGroup()
    group.grow_to(3)
    ctx = group.contexts["m000"]
    ctx.reset()
    assert ctx.group is None
    assert not ctx.has_key
    with pytest.raises(TGDHError):
        ctx.secret()


def test_double_create_rejected():
    ctx = TGDHContext("a", DHParams.small_test(), source=DeterministicSource(1))
    ctx.create_first("g")
    with pytest.raises(TGDHError):
        ctx.create_first("g")
    with pytest.raises(TGDHError):
        ctx.make_join_request("h")


def test_forward_secrecy_leaver_cannot_compute_new_key():
    """After a leave, every secret on the departed leaf's path changed:
    replaying the leaver's old path secrets against the new tree fails to
    produce the new group key."""
    group = TGDHTestGroup()
    group.grow_to(4)
    old_secret = group.secret()
    group.leave("m001")
    assert group.secret() != old_secret


def test_backward_secrecy_joiner_key_differs():
    """The sponsor refreshes its leaf share on every join, so the new
    member cannot compute any previous group key."""
    group = TGDHTestGroup()
    group.grow_to(3)
    old_secret = group.secret()
    group.join("late")
    assert group.contexts["late"].secret() != old_secret


def test_cross_process_determinism_same_seed():
    """Two independent runs with the same seeds produce byte-identical
    group secrets (the property the secure layer's key confirmation
    fingerprints rely on)."""

    def run():
        g = TGDHTestGroup(seed=23)
        g.grow_to(6)
        g.leave("m002")
        g.event(arrived=["x1", "x2"])
        return g.secret()

    assert run() == run()
