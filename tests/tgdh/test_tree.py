"""Key-tree structure: canonical rules, determinism, serialization."""

import pytest

from repro.errors import TGDHError
from repro.tgdh.tree import TGDHTree


def test_single_and_membership():
    tree = TGDHTree.single("a")
    assert tree.members() == ["a"]
    assert "a" in tree and "b" not in tree
    assert tree.height() == 0
    assert tree.rightmost_leaf() == "a"


def test_balanced_structure_left_heavy():
    tree = TGDHTree.balanced(["a", "b", "c"])
    assert tree.structure() == "((a,b),c)"
    assert tree.height() == 2
    tree = TGDHTree.balanced(["a", "b", "c", "d", "e"])
    assert tree.structure() == "(((a,b),c),(d,e))"


def test_node_ids_round_trip():
    tree = TGDHTree.balanced(["a", "b", "c", "d"])
    for member in tree.members():
        leaf = tree.leaf(member)
        assert tree.find(tree.node_id(leaf)) is leaf
    assert tree.find("") is tree.root
    assert tree.find("0000") is None  # past a leaf


def test_sequential_insertion_fills_levels():
    """Shallowest-leaf insertion keeps the tree complete: height is
    exactly ceil(log2 n) under sequential joins."""
    import math

    tree = TGDHTree.single("m00")
    for i in range(1, 33):
        tree.apply_event([], {f"m{i:02d}": None})
        n = i + 1
        assert tree.height() == math.ceil(math.log2(n)), tree.structure()


def test_join_sponsor_is_insertion_leaf_member():
    tree = TGDHTree.balanced(["a", "b", "c"])
    # Shallowest leaf is c (depth 1) -> c sponsors, joint node is (c,d).
    sponsor = tree.apply_event([], {"d": None})
    assert sponsor == "c"
    assert tree.structure() == "((a,b),(c,d))"


def test_leave_promotes_sibling_and_elects_its_rightmost():
    tree = TGDHTree.balanced(["a", "b", "c", "d"])
    sponsor = tree.apply_event(["d"], {})
    assert tree.structure() == "((a,b),c)"
    assert sponsor == "c"
    sponsor = tree.apply_event(["a"], {})
    assert tree.structure() == "(b,c)"
    assert sponsor == "b"


def test_batch_arrivals_attach_as_balanced_subtree():
    tree = TGDHTree.balanced(["a", "b", "c"])
    sponsor = tree.apply_event([], {"x": None, "z": None, "y": None})
    # Sorted arrivals, one balanced subtree at the insertion leaf (c).
    assert tree.structure() == "((a,b),(c,((x,y),z)))"
    assert sponsor == "c"


def test_compound_event_removals_before_arrivals():
    tree = TGDHTree.balanced(["a", "b", "c", "d"])
    sponsor = tree.apply_event(["b", "c"], {"e": None})
    assert sorted(tree.members()) == ["a", "d", "e"]
    assert sponsor in tree.members()


def test_empty_event_rejected():
    tree = TGDHTree.balanced(["a", "b"])
    with pytest.raises(TGDHError):
        tree.apply_event([], {})


def test_duplicate_member_rejected():
    tree = TGDHTree.balanced(["a", "b"])
    with pytest.raises(TGDHError):
        tree.apply_event([], {"a": None})


def test_removing_last_member_rejected():
    tree = TGDHTree.single("a")
    with pytest.raises(TGDHError):
        tree.remove_leaf("a")


def test_removal_invalidates_ancestor_blinded_keys():
    tree = TGDHTree.balanced(
        ["a", "b", "c", "d"], {"a": 11, "b": 12, "c": 13, "d": 14}
    )
    tree.root.blinded = 99
    tree.root.left.blinded = 98
    tree.root.right.blinded = 97
    tree.apply_event(["b"], {})
    # a's promoted path is stale; the untouched sibling subtree is not.
    assert tree.root.blinded is None
    assert tree.leaf("a").blinded == 11
    assert tree.root.right.blinded == 97


def test_serialize_round_trip_preserves_structure_and_keys():
    tree = TGDHTree.balanced(["a", "b", "c"], {"a": 5, "b": 6, "c": 7})
    tree.root.blinded = 42
    clone = tree.clone()
    assert clone.structure() == tree.structure()
    assert clone.root.blinded == 42
    assert clone.leaf("b").blinded == 6
    # Clone is independent.
    clone.leaf("b").blinded = 0
    assert tree.leaf("b").blinded == 6


def test_apply_event_is_deterministic_across_replicas():
    """Two replicas applying the same event stream stay identical."""
    events = [
        ((), ("a",)), ((), ("b", "c")), (("a",), ()), ((), ("d", "e", "f")),
        (("c", "e"), ("g",)),
    ]
    t1 = TGDHTree.single("root")
    t2 = TGDHTree.single("root")
    for departed, arrived in events:
        s1 = t1.apply_event(list(departed), {m: None for m in arrived})
        s2 = t2.apply_event(list(departed), {m: None for m in arrived})
        assert s1 == s2
        assert t1.structure() == t2.structure()
