"""TGDH exponentiation counts: the O(log n) claim, counter-verified.

The tree stays complete under sequential shallowest-leaf joins, so for a
group of size ``n`` the height is exactly ``h = ceil(log2 n)`` and the
measured per-member serial costs pin to closed forms:

* JOIN  — sponsor ``2h`` (h node keys + h blinded keys), joiner ``h+1``
  (announce + climb), every other member ``<= h``;
* LEAVE — sponsor ``2(h-1)``, every other member ``<= h``.

Contrast: a Cliques join costs the controller ``n+1`` and the joiner
``2n-1`` (Table 2); the crossover is already at n=8.  These tests are
the goldens behind ``BENCH_tgdh.json``.
"""

import math

import pytest

from tests.tgdh.conftest import TGDHTestGroup

SIZES = [4, 8, 16, 32, 64]


def grown(n: int) -> TGDHTestGroup:
    group = TGDHTestGroup()
    group.grow_to(n)
    return group


def windows(group: TGDHTestGroup, exclude=()):
    managers = {
        name: ctx.counter.window()
        for name, ctx in group.contexts.items()
        if name not in set(exclude)
    }
    return managers, {name: cm.__enter__() for name, cm in managers.items()}


def close(managers):
    for manager in managers.values():
        manager.__exit__(None, None, None)


# -- join ---------------------------------------------------------------------


@pytest.mark.parametrize("n", SIZES)
def test_join_sponsor_cost_is_2_log_n(n):
    group = grown(n - 1)
    managers, wins = windows(group)
    sponsor = group.join("zzz")
    close(managers)
    h = math.ceil(math.log2(n))
    assert wins[sponsor].total == 2 * h
    assert wins[sponsor].get("node_key") == h
    assert wins[sponsor].get("blind_key") == h


@pytest.mark.parametrize("n", SIZES)
def test_join_new_member_cost_is_log_n_plus_1(n):
    group = grown(n - 1)
    group.join("zzz")
    h = math.ceil(math.log2(n))
    counter = group.contexts["zzz"].counter
    assert counter.total == h + 1
    assert counter.get("blind_key") == 1
    assert counter.get("node_key") == h


@pytest.mark.parametrize("n", SIZES)
def test_join_no_member_exceeds_2_log_n(n):
    group = grown(n - 1)
    managers, wins = windows(group)
    group.join("zzz")
    close(managers)
    h = math.ceil(math.log2(n))
    assert max(w.total for w in wins.values()) <= 2 * h


# -- leave --------------------------------------------------------------------


@pytest.mark.parametrize("n", SIZES)
def test_leave_sponsor_cost_is_2_log_n_minus_2(n):
    group = grown(n)
    managers, wins = windows(group, exclude=["m001"])
    sponsor = group.leave("m001")
    close(managers)
    h = math.ceil(math.log2(n))
    assert wins[sponsor].total == 2 * (h - 1)


@pytest.mark.parametrize("n", SIZES)
def test_leave_no_member_exceeds_2_log_n(n):
    group = grown(n)
    managers, wins = windows(group, exclude=["m001"])
    group.leave("m001")
    close(managers)
    h = math.ceil(math.log2(n))
    assert max(w.total for w in wins.values()) <= 2 * h


# -- the scalability claim ----------------------------------------------------


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_tgdh_beats_cliques_linear_join_cost(n):
    """The paper-level claim: from n=8 on, the worst-paid TGDH member
    does strictly less serial work than the Cliques join controller
    (n+1, Table 2) — and the gap widens with n."""
    group = grown(n - 1)
    managers, wins = windows(group)
    group.join("zzz")
    close(managers)
    worst = max(
        max(w.total for w in wins.values()),
        group.contexts["zzz"].counter.total,
    )
    assert worst < n + 1


def test_join_cost_growth_is_logarithmic_not_linear():
    """Doubling n adds a constant (2 exps) to the sponsor cost instead
    of doubling it."""
    costs = {}
    for n in SIZES:
        group = grown(n - 1)
        managers, wins = windows(group)
        sponsor = group.join("zzz")
        close(managers)
        costs[n] = wins[sponsor].total
    deltas = [costs[b] - costs[a] for a, b in zip(SIZES, SIZES[1:])]
    assert all(delta == 2 for delta in deltas), costs
