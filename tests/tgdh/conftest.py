"""A driver harness running TGDH contexts to convergence over a
perfect broadcast bus (no network) — the unit-test counterpart of the
secure-session integration tests."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import pytest

from repro.crypto.dh import DHParams
from repro.crypto.random_source import DeterministicSource
from repro.sim.rng import stable_seed
from repro.tgdh.context import TGDHContext
from repro.tgdh.tokens import TGDHTreeToken, TGDHUpdateToken


class TGDHTestGroup:
    """All member contexts of one group, plus an in-order token bus."""

    def __init__(self, params: Optional[DHParams] = None, seed: int = 7):
        self.params = params if params is not None else DHParams.small_test()
        self.seed = seed
        self.contexts: Dict[str, TGDHContext] = {}
        self.group = "g"
        self.rounds_last_event = 0

    def _new_context(self, name: str) -> TGDHContext:
        ctx = TGDHContext(
            name,
            self.params,
            source=DeterministicSource(stable_seed(self.seed, name)),
        )
        self.contexts[name] = ctx
        return ctx

    @property
    def members(self) -> List[str]:
        return sorted(self.contexts)

    def create(self, name: str) -> None:
        self._new_context(name).create_first(self.group)

    def _converge(self, first_token: TGDHTreeToken) -> None:
        queue: List[object] = [first_token]
        rounds = 0
        while queue:
            rounds += 1
            assert rounds < 10 * (len(self.contexts) + 1), "no convergence"
            token = queue.pop(0)
            for name, ctx in self.contexts.items():
                if name == token.sender:
                    continue
                if isinstance(token, TGDHTreeToken):
                    out = ctx.process_tree(token)
                else:
                    out = ctx.process_update(token)
                if out is not None:
                    queue.append(out)
        self.rounds_last_event = rounds
        secrets = {ctx.secret() for ctx in self.contexts.values()}
        assert len(secrets) == 1, "members disagree on the group secret"

    def event(self, departed: Sequence[str] = (), arrived: Sequence[str] = ()):
        """Run one membership event end to end and assert convergence."""
        blinded: Dict[str, int] = {}
        for name in arrived:
            ctx = self._new_context(name)
            blinded[name] = ctx.make_join_request(self.group).blinded
        survivors = {
            n: c for n, c in self.contexts.items()
            if n not in set(arrived) and n not in set(departed)
        }
        sponsors = {c.sponsor_for(departed, arrived) for c in survivors.values()}
        assert len(sponsors) == 1, "sponsor election disagreed"
        sponsor = sponsors.pop()
        for name in departed:
            del self.contexts[name]
        token = self.contexts[sponsor].start_event(list(departed), blinded)
        self._converge(token)
        return sponsor

    def join(self, name: str) -> str:
        return self.event(arrived=[name])

    def leave(self, *names: str) -> str:
        return self.event(departed=list(names))

    def grow_to(self, size: int, prefix: str = "m") -> None:
        if not self.contexts:
            self.create(f"{prefix}000")
        index = len(self.contexts)
        while len(self.contexts) < size:
            self.join(f"{prefix}{index:03d}")
            index += 1

    def refresh(self) -> str:
        sponsor = next(iter(self.contexts.values())).controller
        token = self.contexts[sponsor].refresh()
        self._converge(token)
        return sponsor

    def secret(self) -> int:
        secrets = {ctx.secret() for ctx in self.contexts.values()}
        assert len(secrets) == 1
        return secrets.pop()

    def tree_of(self, name: Optional[str] = None):
        name = name if name is not None else self.members[0]
        return self.contexts[name].tree


@pytest.fixture
def group():
    return TGDHTestGroup()
