"""Periodic key refresh (Section 4.4 on a timer)."""

import pytest

from repro.secure.events import KeyOperation, SecureMembershipEvent

from tests.secure.conftest import SecureHarness


def refresh_views(member, group="g"):
    return [
        e for e in member.queue
        if isinstance(e, SecureMembershipEvent)
        and str(e.group) == group
        and e.operation == KeyOperation.REFRESH
    ]


def test_auto_refresh_rotates_keys_periodically():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    for name in ("a", "b"):
        h.members[name].sessions["g"].enable_auto_refresh(1.0)
    fingerprints = set()
    h.run(3.5)
    assert len(refresh_views(a)) >= 3
    assert len(refresh_views(b)) >= 3
    for event in refresh_views(a):
        fingerprints.add(event.key_fingerprint)
    assert len(fingerprints) == len(refresh_views(a))  # all keys distinct
    assert h.same_key(["a", "b"])


def test_auto_refresh_only_controller_triggers():
    """Both members arm the timer; exactly one refresh per period."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    a.sessions["g"].enable_auto_refresh(1.0)
    b.sessions["g"].enable_auto_refresh(1.0)
    h.run(2.5)
    # Two periods elapsed -> exactly two refresh views (not four).
    assert len(refresh_views(a)) == 2


def test_auto_refresh_rejects_bad_period():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g")
    h.wait_view(["a"])
    with pytest.raises(ValueError):
        a.sessions["g"].enable_auto_refresh(0)


def test_auto_refresh_survives_membership_change():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    for name in ("a", "b"):
        h.members[name].sessions["g"].enable_auto_refresh(1.0)
    h.run(1.5)
    c = h.member("c", "d2")
    c.join("g")
    h.wait_view(["a", "b", "c"])
    # The controller role moved to the newest member: it arms its own
    # timer, like every member does on joining.
    c.sessions["g"].enable_auto_refresh(1.0)
    before = len(refresh_views(a))
    h.run(2.5)
    assert len(refresh_views(a)) > before
    assert h.same_key(["a", "b", "c"])
