"""Full-stack harness: secure clients over flush/daemon/network/kernel."""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.cliques.directory import KeyDirectory
from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.random_source import DeterministicSource
from repro.secure.events import SecureDataEvent, SecureMembershipEvent
from repro.secure.session import CryptoCostModel, SecureClient
from repro.spread.flush import FlushClient
from repro.sim.rng import stable_seed

from tests.spread.conftest import Cluster


class SecureHarness:
    """A cluster plus secure members sharing one key directory."""

    def __init__(
        self,
        daemon_count: int = 3,
        seed: int = 11,
        params: Optional[DHParams] = None,
        cost_model: Optional[CryptoCostModel] = None,
    ):
        self.cluster = Cluster(daemon_count=daemon_count, seed=seed)
        self.cluster.settle()
        self.params = params if params is not None else DHParams.tiny_test()
        self.directory = KeyDirectory()
        self.members: Dict[str, SecureClient] = {}
        self.cost_model = cost_model
        self._seed = seed

    @property
    def kernel(self):
        return self.cluster.kernel

    @property
    def network(self):
        return self.cluster.network

    def member(self, name: str, daemon: str) -> SecureClient:
        raw = self.cluster.client(name, daemon)
        flush = FlushClient(raw, auto_flush=False)
        source = DeterministicSource(stable_seed(self._seed, name))
        keypair = DHKeyPair.generate(self.params, source)
        secure = SecureClient(
            flush=flush,
            params=self.params,
            long_term=keypair,
            directory=self.directory,
            random_source=source,
            cost_model=self.cost_model,
        )
        secure.publish_key()
        self.members[name] = secure
        return secure

    # -- predicates -----------------------------------------------------------

    def keyed(self, names: List[str], group: str = "g") -> bool:
        return all(self.members[n].has_key(group) for n in names)

    def same_key(self, names: List[str], group: str = "g") -> bool:
        fingerprints = set()
        for name in names:
            session = self.members[name].sessions.get(group)
            if session is None or not session.has_key:
                return False
            fingerprints.add(session._session_keys.fingerprint())
        return len(fingerprints) == 1

    def secure_members_of(self, name: str, group: str = "g") -> set:
        events = [
            e for e in self.members[name].queue
            if isinstance(e, SecureMembershipEvent) and str(e.group) == group
        ]
        if not events:
            return set()
        return {str(m) for m in events[-1].members}

    def payloads_of(self, name: str, group: str = "g") -> List[bytes]:
        return [
            e.payload for e in self.members[name].queue
            if isinstance(e, SecureDataEvent) and str(e.group) == group
        ]

    def run(self, duration: float) -> None:
        self.cluster.run(duration)

    def run_until(self, predicate, timeout: float = 20.0) -> None:
        self.cluster.run_until(predicate, timeout=timeout)

    def wait_view(self, names: List[str], group: str = "g", timeout: float = 20.0):
        """Wait until all named members have a confirmed secure view
        containing exactly those members, with equal keys."""
        expected = {str(self.members[n].pid) for n in names}

        def done():
            return all(
                self.secure_members_of(n, group) == expected for n in names
            ) and self.same_key(names, group)

        self.run_until(done, timeout=timeout)


@pytest.fixture
def harness():
    return SecureHarness()
