"""Cipher suite modularity: CTR mode, registry, per-group suite choice."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blowfish import BLOCK_SIZE, Blowfish
from repro.crypto.kdf import derive_keys
from repro.crypto.modes import ctr_decrypt, ctr_encrypt
from repro.crypto.random_source import DeterministicSource
from repro.errors import CipherError, ModuleNotFoundError_
from repro.secure.ciphers import (
    CipherSuite,
    cipher_suite_names,
    get_cipher_suite,
    register_cipher_suite,
)
from repro.secure.dataprotect import DataProtector

from tests.secure.conftest import SecureHarness


# -- CTR mode ----------------------------------------------------------------------


def test_ctr_roundtrip():
    cipher = Blowfish(b"ctr-key1")
    data = ctr_encrypt(cipher, b"stream me", DeterministicSource(1))
    assert ctr_decrypt(cipher, data) == b"stream me"


def test_ctr_no_padding_overhead():
    cipher = Blowfish(b"ctr-key1")
    plaintext = b"x" * 100
    data = ctr_encrypt(cipher, plaintext, DeterministicSource(1))
    assert len(data) == BLOCK_SIZE + 100  # nonce + exact length


def test_ctr_fresh_nonce_randomizes():
    cipher = Blowfish(b"ctr-key1")
    source = DeterministicSource(2)
    a = ctr_encrypt(cipher, b"same", source)
    b = ctr_encrypt(cipher, b"same", source)
    assert a != b


def test_ctr_explicit_nonce_deterministic():
    cipher = Blowfish(b"ctr-key1")
    nonce = b"\x01" * BLOCK_SIZE
    assert ctr_encrypt(cipher, b"m", nonce=nonce) == ctr_encrypt(
        cipher, b"m", nonce=nonce
    )


def test_ctr_bad_nonce_size():
    cipher = Blowfish(b"ctr-key1")
    with pytest.raises(CipherError):
        ctr_encrypt(cipher, b"m", nonce=b"short")


def test_ctr_decrypt_too_short():
    cipher = Blowfish(b"ctr-key1")
    with pytest.raises(CipherError):
        ctr_decrypt(cipher, b"tiny")


def test_ctr_counter_wraps_across_blocks():
    cipher = Blowfish(b"ctr-key1")
    nonce = (2 ** 64 - 1).to_bytes(BLOCK_SIZE, "big")  # forces wrap
    plaintext = b"z" * (3 * BLOCK_SIZE)
    data = ctr_encrypt(cipher, plaintext, nonce=nonce)
    assert ctr_decrypt(cipher, data) == plaintext


@settings(max_examples=30, deadline=None)
@given(message=st.binary(max_size=200), key=st.binary(min_size=8, max_size=32))
def test_ctr_roundtrip_property(message, key):
    cipher = Blowfish(key)
    data = ctr_encrypt(cipher, message, DeterministicSource(3))
    assert ctr_decrypt(cipher, data) == message


# -- registry ---------------------------------------------------------------------------


def test_registry_ships_both_suites():
    assert set(cipher_suite_names()) >= {"blowfish-cbc", "blowfish-ctr"}


def test_unknown_suite_raises():
    with pytest.raises(ModuleNotFoundError_):
        get_cipher_suite("rot13")


def test_register_custom_suite():
    xor = CipherSuite(
        "test-xor",
        lambda cipher, pt, rng: bytes(b ^ 0x42 for b in pt),
        lambda cipher, data: bytes(b ^ 0x42 for b in data),
    )
    register_cipher_suite(xor)
    assert "test-xor" in cipher_suite_names()
    suite = get_cipher_suite("test-xor")
    assert suite.decrypt(b"k" * 8, suite.encrypt(b"k" * 8, b"hi", None)) == b"hi"


# -- DataProtector with suites --------------------------------------------------------------


def test_protector_with_ctr_roundtrip():
    keys = derive_keys(4242, "g|v", 0)
    protector = DataProtector(keys, "g|v|0", cipher="blowfish-ctr")
    sealed = protector.seal("g", "#a#d0", b"via ctr", DeterministicSource(4))
    assert protector.unseal(sealed) == b"via ctr"


def test_cbc_and_ctr_protectors_incompatible():
    keys = derive_keys(4242, "g|v", 0)
    cbc = DataProtector(keys, "g|v|0", cipher="blowfish-cbc")
    ctr = DataProtector(keys, "g|v|0", cipher="blowfish-ctr")
    sealed = cbc.seal("g", "#a#d0", b"mode matters", DeterministicSource(5))
    # Same keys, same MAC: the tag verifies, but the plaintext differs
    # (CTR interprets the CBC bytes as a keystream xor) — which is why
    # the session folds the suite name into key derivation.
    assert ctr.unseal(sealed) != b"mode matters"


# -- end to end -----------------------------------------------------------------------------


def test_group_using_ctr_suite():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", cipher="blowfish-ctr")
    h.wait_view(["a"])
    b.join("g", cipher="blowfish-ctr")
    h.wait_view(["a", "b"])
    a.send("g", b"streamed secret")
    h.run_until(lambda: b"streamed secret" in h.payloads_of("b"))


def test_cipher_choice_changes_derived_keys():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g1", cipher="blowfish-cbc")
    h.wait_view(["a"], group="g1")
    a.join("g2", cipher="blowfish-ctr")
    h.wait_view(["a"], group="g2")
    # Same member, but the suite name feeds the KDF context.
    assert (
        a.sessions["g1"]._session_keys.encryption_key
        != a.sessions["g2"]._session_keys.encryption_key
    )


def test_mismatched_suites_never_confirm():
    """One member picks CBC, the other CTR: key fingerprints disagree and
    the view must not confirm (no garbage traffic)."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", cipher="blowfish-cbc")
    h.wait_view(["a"])
    b.join("g", cipher="blowfish-ctr")
    h.run(5.0)
    # The mismatch triggers fingerprint-mismatch restarts forever; the
    # group never reaches a confirmed two-member view.
    assert h.secure_members_of("a") != {str(a.pid), str(b.pid)} or not h.same_key(
        ["a", "b"]
    )
