"""Batched data protection: seal_many / unseal_many / send_many.

The batched entry points exist for the data-plane fast path (one header
build and one key-schedule lookup amortised over a burst) — their
outputs must be bit-identical to the per-message calls.
"""

from __future__ import annotations

import pytest

from repro.crypto.kdf import derive_keys
from repro.crypto.random_source import DeterministicSource
from repro.errors import IntegrityError, NoGroupKeyError, StaleKeyError
from repro.secure.dataprotect import DataProtector, seal_header

from tests.secure.conftest import SecureHarness


def make_protector(epoch="g|v|0"):
    keys = derive_keys(123456789, "g|v", 0)
    return DataProtector(keys, epoch)


PLAINTEXTS = [b"", b"a", b"attack at dawn", bytes(range(256))]


# -- units -------------------------------------------------------------------------


def test_seal_many_bit_identical_to_sequential_seal():
    batched = make_protector().seal_many(
        "g", "#a#d0", PLAINTEXTS, DeterministicSource(7)
    )
    sequential_protector = make_protector()
    source = DeterministicSource(7)
    sequential = [
        sequential_protector.seal("g", "#a#d0", plaintext, source)
        for plaintext in PLAINTEXTS
    ]
    assert batched == sequential


def test_unseal_many_roundtrip_preserves_order():
    protector = make_protector()
    sealed = protector.seal_many(
        "g", "#a#d0", PLAINTEXTS, DeterministicSource(7)
    )
    assert protector.unseal_many(sealed) == PLAINTEXTS


def test_unseal_many_rejects_wrong_epoch():
    sealed = make_protector().seal_many(
        "g", "#a#d0", PLAINTEXTS, DeterministicSource(7)
    )
    with pytest.raises(StaleKeyError):
        make_protector(epoch="g|v|1").unseal_many(sealed)


def test_unseal_many_rejects_tampered_member():
    protector = make_protector()
    sealed = protector.seal_many(
        "g", "#a#d0", PLAINTEXTS, DeterministicSource(7)
    )
    bad = sealed[2]
    sealed[2] = type(bad)(
        group=bad.group,
        epoch_label=bad.epoch_label,
        sender=bad.sender,
        ciphertext=bad.ciphertext[:-1] + bytes([bad.ciphertext[-1] ^ 1]),
        tag=bad.tag,
    )
    with pytest.raises(IntegrityError):
        protector.unseal_many(sealed)


def test_seal_header_is_the_sealed_message_header():
    protector = make_protector()
    sealed = protector.seal("g", "#a#d0", b"x", DeterministicSource(1))
    assert sealed.header() == seal_header("g", sealed.epoch_label, "#a#d0")


def test_seal_many_empty_batch():
    assert make_protector().seal_many(
        "g", "#a#d0", [], DeterministicSource(1)
    ) == []


# -- full stack --------------------------------------------------------------------


def test_send_many_delivers_all_in_order():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    burst = [b"msg-%d" % i for i in range(8)]
    a.send_many("g", burst)
    h.run_until(lambda: len(h.payloads_of("b")) >= len(burst))
    assert h.payloads_of("b") == burst
    # Sender receives its own copies in order too.
    h.run_until(lambda: len(h.payloads_of("a")) >= len(burst))
    assert h.payloads_of("a") == burst


def test_send_many_before_key_raises():
    h = SecureHarness()
    a = h.member("a", "d0")
    with pytest.raises(NoGroupKeyError):
        a.send_many("g", [b"x"])


def test_send_many_empty_burst_is_noop():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g")
    h.wait_view(["a"])
    a.send_many("g", [])
    h.run(0.2)
    assert h.payloads_of("a") == []
