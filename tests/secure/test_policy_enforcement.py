"""The policy seam: module selection and join admission (paper §1.2)."""

import pytest

from repro.errors import SecureGroupError
from repro.secure.policy import AllowAllPolicy

from tests.secure.conftest import SecureHarness


class DenyListPolicy(AllowAllPolicy):
    """A minimal custom policy: per-group deny lists + forced module."""

    def __init__(self, denied=(), forced_module=None):
        self.denied = set(denied)
        self.forced_module = forced_module

    def may_join(self, member, group):
        return (member, group) not in self.denied

    def module_for(self, group, requested):
        if self.forced_module is not None:
            return self.forced_module
        return super().module_for(group, requested)


def test_policy_denies_join():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.policy = DenyListPolicy(denied={(str(a.pid), "secret-club")})
    with pytest.raises(SecureGroupError):
        a.join("secret-club")
    # Other groups remain joinable.
    a.join("open-club")
    h.wait_view(["a"], group="open-club")


def test_policy_forces_module():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.policy = DenyListPolicy(forced_module="ckd")
    session = a.join("g", module="cliques")  # request overridden
    assert session.module.name == "ckd"


def test_default_policy_allows_and_respects_request():
    h = SecureHarness()
    a = h.member("a", "d0")
    session = a.join("g", module="ckd")
    assert session.module.name == "ckd"
