"""The policy seam: module selection, join admission (paper §1.2), and
the public key-agreement-module extension hook."""

import hashlib

import pytest

from repro.errors import (
    ModuleNotFoundError_,
    ModuleRegistrationError,
    ReproError,
    SecureGroupError,
)
from repro.secure.handlers.base import KeyAgreementModule
from repro.secure.policy import (
    AllowAllPolicy,
    default_registry,
    register_module,
    unregister_module,
)

from tests.secure.conftest import SecureHarness


class DenyListPolicy(AllowAllPolicy):
    """A minimal custom policy: per-group deny lists + forced module."""

    def __init__(self, denied=(), forced_module=None):
        self.denied = set(denied)
        self.forced_module = forced_module

    def may_join(self, member, group):
        return (member, group) not in self.denied

    def module_for(self, group, requested):
        if self.forced_module is not None:
            return self.forced_module
        return super().module_for(group, requested)


def test_policy_denies_join():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.policy = DenyListPolicy(denied={(str(a.pid), "secret-club")})
    with pytest.raises(SecureGroupError):
        a.join("secret-club")
    # Other groups remain joinable.
    a.join("open-club")
    h.wait_view(["a"], group="open-club")


def test_policy_forces_module():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.policy = DenyListPolicy(forced_module="ckd")
    session = a.join("g", module="cliques")  # request overridden
    assert session.module.name == "ckd"


def test_default_policy_allows_and_respects_request():
    h = SecureHarness()
    a = h.member("a", "d0")
    session = a.join("g", module="ckd")
    assert session.module.name == "ckd"


def test_tgdh_selectable_by_default():
    h = SecureHarness()
    a = h.member("a", "d0")
    session = a.join("g", module="tgdh")
    assert session.module.name == "tgdh"
    h.wait_view(["a"])
    assert a.has_key("g")


# -- unknown modules and the registration hook -------------------------------


def test_unknown_module_error_lists_registered_names():
    h = SecureHarness()
    a = h.member("a", "d0")
    with pytest.raises(ReproError) as excinfo:
        a.join("g", module="quantum")
    assert isinstance(excinfo.value, ModuleNotFoundError_)
    message = str(excinfo.value)
    for name in ("cliques", "ckd", "tgdh"):
        assert name in message


def test_default_registry_has_all_builtins():
    assert default_registry().names() == ["ckd", "cliques", "tgdh"]


def test_register_module_duplicate_name_guard():
    def factory(**kwargs):  # pragma: no cover - never constructed
        raise AssertionError

    register_module("thirdparty-dup", factory)
    try:
        with pytest.raises(ModuleRegistrationError):
            register_module("thirdparty-dup", factory)
        register_module("thirdparty-dup", factory, replace=True)
    finally:
        unregister_module("thirdparty-dup")
    with pytest.raises(ModuleRegistrationError):
        unregister_module("thirdparty-dup")


def test_register_module_cannot_shadow_builtin():
    with pytest.raises(ModuleRegistrationError):
        register_module("cliques", lambda **kwargs: None)
    with pytest.raises(ModuleRegistrationError):
        unregister_module("tgdh")


class HashChainModule(KeyAgreementModule):
    """A deliberately trivial third-party module: the "group secret" is a
    hash of the view composition.  (No security whatsoever — it exists to
    prove the extension hook drives an out-of-tree protocol through a
    whole session, confirmation machinery included.)"""

    name = "hashchain"

    def __init__(self, member, params, long_term=None, directory=None,
                 source=None, counter=None, **kwargs):
        self.member = member
        self._members = ()
        self._group = None
        self._ready = False

    @property
    def ready(self):
        return self._ready

    def secret(self):
        digest = hashlib.sha256(
            ("|".join((self._group,) + self._members)).encode()
        ).digest()
        return int.from_bytes(digest, "big")

    def _rekey(self, view):
        self._group = view.group
        self._members = view.members
        self._ready = True
        return []

    def on_view(self, view):
        return self._rekey(view)

    def on_restart(self, view):
        return self._rekey(view)

    def on_token(self, sender, token):
        return []

    def reset(self):
        self._ready = False
        self._group = None
        self._members = ()

    def refresh(self):
        return []

    @property
    def is_controller(self):
        return bool(self._members) and self._members[0] == self.member

    @property
    def has_state(self):
        return self._group is not None


def test_third_party_module_runs_a_session():
    register_module("hashchain", HashChainModule)
    try:
        h = SecureHarness()
        a = h.member("a", "d0")
        b = h.member("b", "d1")
        session = a.join("g", module="hashchain")
        assert session.module.name == "hashchain"
        h.wait_view(["a"])
        b.join("g", module="hashchain")
        h.wait_view(["a", "b"])
        assert h.same_key(["a", "b"])
        a.send("g", b"through a third-party module")
        h.run_until(
            lambda: b"through a third-party module" in h.payloads_of("b")
        )
    finally:
        unregister_module("hashchain")
