"""Secure group <-> non-member communication through the gateway."""

import pytest

from repro.crypto.dh import DHKeyPair
from repro.crypto.random_source import DeterministicSource
from repro.errors import SecureGroupError
from repro.secure.nonmember import (
    GroupGateway,
    OutsiderChannel,
    OutsiderDataEvent,
)
from repro.sim.rng import stable_seed

from tests.secure.conftest import SecureHarness


def build_group_with_gateways(h, names=("a", "b"), group="g"):
    members = []
    gateways = []
    for i, name in enumerate(names):
        member = h.member(name, f"d{i % 3}")
        member.join(group)
        members.append(member)
        h.wait_view(list(names[: i + 1]), group=group)
        gateways.append(GroupGateway(member, group))
    return members, gateways


def make_outsider(h, name, daemon, group="g"):
    raw = h.cluster.client(name, daemon)
    source = DeterministicSource(stable_seed(77, name))
    keypair = DHKeyPair.generate(h.params, source)
    outsider = OutsiderChannel(
        raw, group, h.params, keypair, h.directory, random_source=source
    )
    outsider.publish_key()
    return outsider


def test_outsider_message_reaches_all_members():
    h = SecureHarness()
    members, gateways = build_group_with_gateways(h)
    outsider = make_outsider(h, "x", "d2")
    outsider.open()
    h.run_until(lambda: outsider.connected, timeout=30)
    outsider.send(b"hello from outside")
    h.run_until(
        lambda: all(
            any(e.payload == b"hello from outside" for e in gw.events)
            for gw in gateways
        ),
        timeout=30,
    )
    for gateway in gateways:
        event = gateway.events[-1]
        assert event.outsider == str(outsider.me)


def test_outsider_never_sees_group_key_material():
    h = SecureHarness()
    members, gateways = build_group_with_gateways(h)
    outsider = make_outsider(h, "x", "d2")
    outsider.open()
    h.run_until(lambda: outsider.connected, timeout=30)
    group_fingerprint = members[0].sessions["g"]._session_keys.fingerprint()
    assert outsider._protector.keys.fingerprint() != group_fingerprint


def test_group_reply_to_outsider():
    h = SecureHarness()
    members, gateways = build_group_with_gateways(h)
    outsider = make_outsider(h, "x", "d2")
    outsider.open()
    h.run_until(lambda: outsider.connected, timeout=30)
    acting = next(g for g in gateways if g._is_acting_gateway())
    acting.reply(outsider.me, b"the group answers")
    h.run_until(lambda: b"the group answers" in outsider.received, timeout=30)


def test_reply_without_channel_raises():
    h = SecureHarness()
    members, gateways = build_group_with_gateways(h)
    with pytest.raises(SecureGroupError):
        gateways[0].reply("#ghost#d9", b"x")


def test_send_before_channel_raises():
    h = SecureHarness()
    build_group_with_gateways(h)
    outsider = make_outsider(h, "x", "d2")
    with pytest.raises(SecureGroupError):
        outsider.send(b"too early")


def test_only_one_member_acts_as_gateway():
    h = SecureHarness()
    members, gateways = build_group_with_gateways(h, names=("a", "b", "c"))
    outsider = make_outsider(h, "x", "d0")
    outsider.open()
    h.run_until(lambda: outsider.connected, timeout=30)
    acting = [g for g in gateways if g._channels]
    assert len(acting) == 1


def test_forged_outsider_data_dropped():
    """Data sealed under the wrong key must not be relayed."""
    from repro.secure.dataprotect import DataProtector
    from repro.crypto.kdf import derive_keys
    from repro.secure.nonmember import OutsiderData

    h = SecureHarness()
    members, gateways = build_group_with_gateways(h)
    outsider = make_outsider(h, "x", "d2")
    outsider.open()
    h.run_until(lambda: outsider.connected, timeout=30)
    # Forge: seal with an unrelated key but claim the outsider's name.
    bogus_keys = derive_keys(12345, "gateway|g", 0)
    forger = DataProtector(bogus_keys, f"gateway|g|{outsider.me}")
    sealed = forger.seal("g", outsider.me, b"forged", DeterministicSource(5))
    acting = next(g for g in gateways if g._channels)
    acting._on_outsider_data(
        OutsiderData(group="g", outsider=outsider.me, sealed=sealed)
    )
    h.run(2.0)
    for gateway in gateways:
        assert all(e.payload != b"forged" for e in gateway.events)


def test_two_outsiders_independent_channels():
    h = SecureHarness()
    members, gateways = build_group_with_gateways(h)
    x = make_outsider(h, "x", "d2")
    y = make_outsider(h, "y", "d2")
    x.open()
    y.open()
    h.run_until(lambda: x.connected and y.connected, timeout=30)
    assert x._protector.keys.fingerprint() != y._protector.keys.fingerprint()
    x.send(b"from x")
    y.send(b"from y")
    h.run_until(
        lambda: any(e.payload == b"from x" for e in gateways[0].events)
        and any(e.payload == b"from y" for e in gateways[0].events),
        timeout=30,
    )
    events = {
        (e.outsider, bytes(e.payload)) for e in gateways[0].events
    }
    assert (str(x.me), b"from x") in events
    assert (str(y.me), b"from y") in events
