"""Daemon-model security: daemon-group keys sealing inter-daemon data."""

import pytest

from repro.crypto.dh import DHParams
from repro.secure.daemon_model import (
    DaemonSealedData,
    DaemonSecurity,
    secure_all_daemons,
)
from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.messages import DataMessage
from repro.types import ServiceType

from tests.spread.conftest import Cluster


def make_secured_cluster(daemon_count=3, seed=21):
    cluster = Cluster(daemon_count=daemon_count, seed=seed)
    layers = secure_all_daemons(
        cluster.daemons, params=DHParams.tiny_test(), seed=seed
    )
    cluster.settle()
    return cluster, layers


def wait_all_keyed(cluster, layers, names=None):
    names = names if names is not None else list(layers)
    cluster.run_until(
        lambda: all(
            layers[n].ready and layers[n].view == cluster.daemons[n].view
            for n in names
            if cluster.daemons[n].alive
        ),
        timeout=30,
    )


def members_of(client, group="g"):
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def payloads(client, group="g"):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


def test_daemons_key_after_bootstrap():
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    views = {layers[n].view for n in layers}
    assert len(views) == 1
    fingerprints = {
        layers[n]._protector.keys.fingerprint() for n in layers
    }
    assert len(fingerprints) == 1  # one daemon-group key


def test_data_flows_through_sealed_channel():
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.AGREED, "g", "sealed hello")
    cluster.run_until(lambda: "sealed hello" in payloads(b))


def test_wire_carries_no_plaintext_data_messages():
    """With daemon security on, no raw DataMessage crosses the network."""
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    seen_raw = []
    original_send = cluster.network.send

    def spying_send(source, destination, payload, size=None):
        if isinstance(payload, DataMessage):
            seen_raw.append((source, destination))
        return original_send(source, destination, payload, size)

    cluster.network.send = spying_send
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    a.multicast(ServiceType.AGREED, "g", "top secret")
    cluster.run_until(lambda: "top secret" in payloads(b))
    assert seen_raw == []


def test_rekey_on_daemon_view_change():
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    old_fingerprint = layers["d0"]._protector.keys.fingerprint()
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    wait_all_keyed(cluster, layers, ["d0", "d1"])
    new_fingerprint = layers["d0"]._protector.keys.fingerprint()
    assert new_fingerprint != old_fingerprint
    assert layers["d0"]._protector.keys.fingerprint() == layers[
        "d1"
    ]._protector.keys.fingerprint()


def test_data_still_flows_after_partition_and_merge():
    cluster, layers = make_secured_cluster(daemon_count=3)
    wait_all_keyed(cluster, layers)
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(lambda: members_of(b) == {"#a#d0", "#b#d1"})
    cluster.network.partition([["d0"], ["d1", "d2"]])
    cluster.run_until(lambda: members_of(a) == {"#a#d0"})
    cluster.network.heal()
    cluster.run_until(lambda: members_of(a) == {"#a#d0", "#b#d1"})
    wait_all_keyed(cluster, layers)
    a.multicast(ServiceType.AGREED, "g", "after merge")
    cluster.run_until(lambda: "after merge" in payloads(b))


def test_recovered_daemon_rejoins_and_keys():
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]))
    cluster.daemons["d2"].recover()
    cluster.settle()
    wait_all_keyed(cluster, layers)
    fingerprints = {
        layers[n]._protector.keys.fingerprint() for n in ("d0", "d1", "d2")
    }
    assert len(fingerprints) == 1


def test_daemon_key_count_vs_client_model():
    """The paper's §5 argument: daemon-model key agreements track daemon
    view changes, not application group churn."""
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    keyed_before = layers["d0"].keys_established
    # Heavy application churn: many group joins/leaves.
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    for round_index in range(4):
        a.join(f"g{round_index}")
        b.join(f"g{round_index}")
        cluster.run_until(
            lambda r=round_index: members_of(b, f"g{r}")
            == {"#a#d0", "#b#d1"}
        )
    # Daemon keys did not budge.
    assert layers["d0"].keys_established == keyed_before


def test_stale_view_offer_ignored():
    cluster, layers = make_secured_cluster()
    wait_all_keyed(cluster, layers)
    from repro.types import ViewId

    security = layers["d1"]
    fingerprint = security._protector.keys.fingerprint()
    # Forge an offer for an ancient view: must be ignored.
    from repro.secure.daemon_model import DaemonKeyOffer
    from repro.secure.dataprotect import SealedMessage

    bogus = DaemonKeyOffer(
        view_id=ViewId(0, 0, "zz"),
        sealed=SealedMessage("__daemons__", "x", "zz", b"\x00" * 16, b"\x00" * 20),
    )
    handled, unsealed = security.intercept("d0", bogus)
    assert handled and unsealed is None
    assert security._protector.keys.fingerprint() == fingerprint


def test_secure_all_daemons_shares_directory():
    cluster, layers = make_secured_cluster()
    directories = {id(layers[n].directory) for n in layers}
    assert len(directories) == 1
