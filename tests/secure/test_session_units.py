"""SecureGroupSession unit tests against a stub flush layer.

The full-stack tests exercise happy paths; these pin the session's
internal machinery — envelope filtering, restart-request attempt
bumping, refresh announces, fingerprint-mismatch handling — without a
simulator in the loop.
"""

import pytest

from repro.cliques.directory import KeyDirectory
from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.random_source import DeterministicSource
from repro.errors import NoGroupKeyError, SendBlockedError
from repro.secure.cascade import (
    AgreementEnvelope,
    KeyConfirm,
    RefreshAnnounce,
    RestartRequest,
)
from repro.secure.events import (
    KeyOperation,
    RekeyStartedEvent,
    SecureMembershipEvent,
)
from repro.secure.handlers.cliques_handler import CliquesModule
from repro.secure.session import (
    STATE_AGREEING,
    STATE_CONFIRMED,
    SecureGroupSession,
)
from repro.spread.events import (
    DataEvent,
    GroupViewId,
    MembershipEvent,
)
from repro.types import (
    DaemonId,
    GroupId,
    MembershipCause,
    ProcessId,
    ServiceType,
    ViewId,
)


class FakeFlush:
    """Just enough of FlushClient for a session: records sends."""

    def __init__(self, me="#me#d0"):
        self._pid = ProcessId.parse(me)
        self.multicasts = []
        self.unicasts = []
        self.blocked = False

    @property
    def pid(self):
        return self._pid

    def multicast(self, group, payload, service=ServiceType.AGREED):
        if self.blocked:
            raise SendBlockedError("flushing")
        self.multicasts.append((group, payload))

    def unicast(self, target, payload, service=ServiceType.FIFO):
        if self.blocked:
            raise SendBlockedError("flushing")
        self.unicasts.append((str(target), payload))

    def flush_ok(self, group):
        pass


def pid(name, daemon="d0"):
    return ProcessId(name, DaemonId(daemon))


def make_session(me="#me#d0", peers=()):
    params = DHParams.tiny_test()
    directory = KeyDirectory()
    source = DeterministicSource(7)
    keypair = DHKeyPair.generate(params, source)
    flush = FakeFlush(me)
    events = []
    module = CliquesModule(
        member=me,
        params=params,
        long_term=keypair,
        directory=directory,
        source=source,
    )
    directory.register(me, keypair.public)
    for peer in peers:
        peer_pair = DHKeyPair.generate(params, DeterministicSource(hash(peer) & 0xFF))
        directory.register(peer, peer_pair.public)
    session = SecureGroupSession(
        group="g",
        module=module,
        flush=flush,
        emit=events.append,
        random_source=source,
        params=params,
        long_term=keypair,
        directory=directory,
    )
    return session, flush, events


def view_event(members, cause=MembershipCause.JOIN, joined=(), left=(), change=1):
    return MembershipEvent(
        group=GroupId("g"),
        view_id=GroupViewId(ViewId(1, 1, "d0"), change),
        members=tuple(ProcessId.parse(m) for m in members),
        cause=cause,
        joined=frozenset(ProcessId.parse(m) for m in joined),
        left=frozenset(ProcessId.parse(m) for m in left),
    )


def data_from(sender, payload):
    return DataEvent(
        group=GroupId("g"),
        sender=ProcessId.parse(sender),
        service=ServiceType.AGREED,
        payload=payload,
        seq=1,
    )


# -- singleton fast path ------------------------------------------------------------


def test_singleton_view_keys_and_confirms_immediately():
    session, flush, events = make_session()
    session.handle_event(view_event(["#me#d0"], joined=["#me#d0"]))
    # Module keyed synchronously; our own confirm was multicast.
    confirms = [p for __, p in flush.multicasts if isinstance(p, KeyConfirm)]
    assert len(confirms) == 1
    # Completion needs our own confirm back (it rides the group stream).
    session.handle_event(data_from("#me#d0", confirms[0]))
    assert session.state == STATE_CONFIRMED
    secure_views = [e for e in events if isinstance(e, SecureMembershipEvent)]
    assert len(secure_views) == 1
    assert secure_views[0].attempt == 0


def make_confirmed_singleton():
    session, flush, events = make_session()
    session.handle_event(view_event(["#me#d0"], joined=["#me#d0"]))
    confirm = next(p for __, p in flush.multicasts if isinstance(p, KeyConfirm))
    session.handle_event(data_from("#me#d0", confirm))
    return session, flush, events


# -- envelope filtering ---------------------------------------------------------------


def test_envelope_for_wrong_view_dropped():
    session, flush, events = make_confirmed_singleton()
    bogus_view = GroupViewId(ViewId(9, 9, "d9"), 9)
    envelope = AgreementEnvelope(bogus_view, 0, "not-a-token")
    before = len(flush.multicasts)
    session.handle_event(data_from("#other#d1", envelope))
    assert len(flush.multicasts) == before  # silently ignored


def test_envelope_for_wrong_attempt_dropped():
    session, flush, events = make_confirmed_singleton()
    envelope = AgreementEnvelope(session.view_key, 5, "not-a-token")
    before = len(flush.multicasts)
    session.handle_event(data_from("#other#d1", envelope))
    assert len(flush.multicasts) == before


def test_garbage_token_triggers_restart_request():
    session, flush, events = make_confirmed_singleton()
    session.state = STATE_AGREEING  # mid-agreement
    envelope = AgreementEnvelope(session.view_key, session.attempt, object())
    session.handle_event(data_from("#other#d1", envelope))
    restarts = [p for __, p in flush.multicasts if isinstance(p, RestartRequest)]
    assert restarts and restarts[-1].from_attempt == session.attempt


# -- restart requests --------------------------------------------------------------------


def test_restart_request_bumps_attempt_once():
    session, flush, events = make_confirmed_singleton()
    key = session.view_key
    session.handle_event(data_from("#other#d1", RestartRequest(key, 0)))
    assert session.attempt == 1
    # A second request for the already-superseded attempt is ignored.
    session.handle_event(data_from("#another#d2", RestartRequest(key, 0)))
    assert session.attempt == 1
    # A request for the current attempt bumps again.
    session.handle_event(data_from("#other#d1", RestartRequest(key, 1)))
    assert session.attempt == 2


def test_restart_request_for_other_view_ignored():
    session, flush, events = make_confirmed_singleton()
    other = GroupViewId(ViewId(8, 8, "d8"), 8)
    session.handle_event(data_from("#other#d1", RestartRequest(other, 0)))
    assert session.attempt == 0
    assert session.state == STATE_CONFIRMED


def test_restart_as_singleton_founder_rekeys():
    session, flush, events = make_confirmed_singleton()
    old = session._session_keys.fingerprint()
    session.handle_event(data_from("#x#d1", RestartRequest(session.view_key, 0)))
    # We are the only member and the anchor: restart re-keys at once.
    confirm = [p for __, p in flush.multicasts if isinstance(p, KeyConfirm)][-1]
    assert confirm.attempt == 1
    session.handle_event(data_from("#me#d0", confirm))
    assert session.state == STATE_CONFIRMED
    assert session._session_keys.fingerprint() != old


# -- refresh announce ------------------------------------------------------------------------


def test_refresh_announce_from_peer_bumps_attempt():
    session, flush, events = make_confirmed_singleton()
    session.handle_event(
        data_from("#peer#d1", RefreshAnnounce(session.view_key, 0))
    )
    assert session.attempt == 1
    assert session.state == STATE_AGREEING


def test_own_refresh_announce_ignored_on_reflection():
    session, flush, events = make_confirmed_singleton()
    session.handle_event(
        data_from("#me#d0", RefreshAnnounce(session.view_key, 0))
    )
    assert session.attempt == 0  # we bump before broadcasting, not after
    assert session.state == STATE_CONFIRMED


def test_stale_refresh_announce_ignored():
    session, flush, events = make_confirmed_singleton()
    session.handle_event(
        data_from("#peer#d1", RefreshAnnounce(session.view_key, 7))
    )
    assert session.attempt == 0


# -- key confirmation ---------------------------------------------------------------------------


def test_fingerprint_mismatch_triggers_restart():
    session, flush, events = make_session()
    session.handle_event(view_event(["#me#d0"], joined=["#me#d0"]))
    forged = KeyConfirm(session.view_key, 0, "deadbeef")
    session.handle_event(data_from("#me#d0", forged))
    restarts = [p for __, p in flush.multicasts if isinstance(p, RestartRequest)]
    assert restarts
    assert session.state != STATE_CONFIRMED


def test_confirm_for_wrong_attempt_ignored():
    session, flush, events = make_session()
    session.handle_event(view_event(["#me#d0"], joined=["#me#d0"]))
    stale = KeyConfirm(session.view_key, 3, "whatever")
    session.handle_event(data_from("#me#d0", stale))
    assert session.state == STATE_AGREEING


# -- send gating ---------------------------------------------------------------------------------


def test_send_blocked_while_agreeing():
    session, flush, events = make_session()
    session.handle_event(view_event(["#me#d0"], joined=["#me#d0"]))
    assert session.state == STATE_AGREEING
    with pytest.raises(NoGroupKeyError):
        session.send(b"early")


def test_blocked_flush_drops_control_messages_gracefully():
    session, flush, events = make_confirmed_singleton()
    flush.blocked = True
    # A restart while the next view is flushing: must not raise.
    session.handle_event(data_from("#x#d1", RestartRequest(session.view_key, 0)))
    assert session.attempt == 1


def test_rekey_started_event_on_every_view():
    session, flush, events = make_session()
    session.handle_event(view_event(["#me#d0"], joined=["#me#d0"]))
    started = [e for e in events if isinstance(e, RekeyStartedEvent)]
    assert len(started) == 1
    assert started[0].operation == KeyOperation.JOIN
