"""Adversarial scenarios: active attackers at the GCS level.

The paper's threat model (§1.1, §4): the network is untrusted, an
active attacker can inject, replay and corrupt messages; Cliques claims
key independence, key confirmation, PFS and resistance to known-key
attacks, with long-term keys authenticating the flows.  These tests play
the attacker by injecting forged traffic straight into the stack and
assert the system either rejects it or recovers through the restart
path — never by accepting a wrong key or plaintext.
"""

import pytest

from repro.cliques.tokens import AuthenticatedEntry, DownflowToken
from repro.crypto.kdf import derive_keys
from repro.crypto.random_source import DeterministicSource
from repro.secure.cascade import AgreementEnvelope, KeyConfirm
from repro.secure.dataprotect import DataProtector, SealedMessage
from repro.secure.events import SecureDataEvent
from repro.types import ServiceType

from tests.secure.conftest import SecureHarness


def build_pair(h, module="cliques"):
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    return a, b


def inject(h, outsider_name, daemon, group, payload):
    """Send arbitrary payload into the group from a raw connection (the
    attacker controls a machine on the LAN)."""
    attacker = h.cluster.client(outsider_name, daemon)
    attacker.multicast(ServiceType.AGREED, group, payload)
    return attacker


def test_forged_sealed_message_is_dropped():
    h = SecureHarness()
    a, b = build_pair(h)
    bogus_keys = derive_keys(666, "g|forged", 0)
    forger = DataProtector(bogus_keys, a.sessions["g"].epoch_label)
    sealed = forger.seal("g", str(a.pid), b"evil", DeterministicSource(1))
    inject(h, "mallory", "d2", "g", sealed)
    h.run(2.0)
    assert b"evil" not in h.payloads_of("a")
    assert b"evil" not in h.payloads_of("b")
    # The group remains healthy.
    a.send("g", b"still fine")
    h.run_until(lambda: b"still fine" in h.payloads_of("b"))


def test_replayed_sealed_message_from_old_epoch_dropped():
    h = SecureHarness()
    a, b = build_pair(h)
    a.send("g", b"first epoch secret")
    h.run_until(lambda: b"first epoch secret" in h.payloads_of("b"))
    # Capture the sealed message off b's raw queue (the attacker sniffs).
    captured = None
    for event in b.flush.client.queue:
        payload = getattr(event, "payload", None)
        inner = getattr(payload, "payload", None)
        if isinstance(inner, SealedMessage):
            captured = inner
    assert captured is not None
    # Re-key (third member joins), then replay the old ciphertext.
    c = h.member("c", "d2")
    c.join("g")
    h.wait_view(["a", "b", "c"])
    count_before = h.payloads_of("a").count(b"first epoch secret")
    inject(h, "mallory", "d2", "g", captured)
    h.run(2.0)
    assert h.payloads_of("a").count(b"first epoch secret") == count_before


def test_forged_key_confirm_cannot_complete_view():
    """An attacker spamming KeyConfirms with a fake fingerprint must not
    trick members into a bad view; mismatches force a restart and the
    group still converges on a correct common key."""
    h = SecureHarness()
    a, b = build_pair(h)
    session = a.sessions["g"]
    forged = KeyConfirm(session.view_key, session.attempt, "attacker00")
    inject(h, "mallory", "d2", "g", forged)
    h.run(3.0)
    # Whatever happened (ignored or restart), both members end up with
    # the same key and working traffic.
    h.wait_view(["a", "b"], timeout=60)
    a.send("g", b"after forged confirm")
    h.run_until(lambda: b"after forged confirm" in h.payloads_of("b"))


def test_forged_downflow_token_recovers_via_restart():
    """A garbage Cliques downflow injected mid-agreement triggers the
    restart path instead of corrupting anyone's state."""
    h = SecureHarness()
    a, b = build_pair(h)
    session = a.sessions["g"]
    bogus_token = DownflowToken(
        group="g",
        sender="#mallory#d2",
        epoch=99,
        members=(str(a.pid), str(b.pid)),
        entries={
            str(a.pid): AuthenticatedEntry(5, frozenset()),
            str(b.pid): AuthenticatedEntry(7, frozenset()),
        },
        operation="join",
    )
    envelope = AgreementEnvelope(session.view_key, session.attempt, bogus_token)
    inject(h, "mallory", "d2", "g", envelope)
    h.run(3.0)
    h.wait_view(["a", "b"], timeout=60)
    a.send("g", b"attack absorbed")
    h.run_until(lambda: b"attack absorbed" in h.payloads_of("b"))


def test_eavesdropper_sees_no_plaintext():
    """Everything a non-member observes on the wire during keying and
    traffic is free of the application plaintext."""
    h = SecureHarness()
    observed = []
    original_send = h.network.send

    def sniff(source, destination, payload, size=None):
        observed.append(payload)
        return original_send(source, destination, payload, size)

    h.network.send = sniff
    a, b = build_pair(h)
    secret_text = b"the eagle lands at midnight"
    a.send("g", secret_text)
    h.run_until(lambda: secret_text in h.payloads_of("b"))

    def contains_plaintext(obj, depth=0):
        if depth > 6:
            return False
        if isinstance(obj, (bytes, bytearray)):
            return secret_text in obj
        if isinstance(obj, str):
            return secret_text.decode() in obj
        if isinstance(obj, dict):
            return any(contains_plaintext(v, depth + 1) for v in obj.values())
        if isinstance(obj, (list, tuple, set, frozenset)):
            return any(contains_plaintext(v, depth + 1) for v in obj)
        if hasattr(obj, "__dict__"):
            return contains_plaintext(vars(obj), depth + 1)
        if hasattr(obj, "__dataclass_fields__"):
            return any(
                contains_plaintext(getattr(obj, f), depth + 1)
                for f in obj.__dataclass_fields__
            )
        return False

    assert not any(contains_plaintext(p) for p in observed)


def test_leaver_transcript_cannot_decrypt_future_traffic():
    """Key independence, end to end: everything the leaver ever held
    (its last session keys) fails against post-leave ciphertexts."""
    h = SecureHarness()
    a, b = build_pair(h)
    c = h.member("c", "d2")
    c.join("g")
    h.wait_view(["a", "b", "c"])
    leaver_keys = c.sessions["g"]._session_keys  # what c walks away with
    c.leave("g")
    h.wait_view(["a", "b"])
    a.send("g", b"post-leave plan")
    h.run_until(lambda: b"post-leave plan" in h.payloads_of("b"))
    # Grab the new ciphertext and try the leaver's old protector on it.
    captured = None
    for event in b.flush.client.queue:
        payload = getattr(event, "payload", None)
        inner = getattr(payload, "payload", None)
        if isinstance(inner, SealedMessage):
            captured = inner
    assert captured is not None
    old_protector = DataProtector(leaver_keys, captured.epoch_label)
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        old_protector.unseal(captured)


def test_tampered_ciphertext_rejected_and_group_survives():
    h = SecureHarness()
    a, b = build_pair(h)
    a.send("g", b"original")
    h.run_until(
        lambda: b"original" in h.payloads_of("b")
        and b"original" in h.payloads_of("a")
    )
    captured = None
    for event in b.flush.client.queue:
        payload = getattr(event, "payload", None)
        inner = getattr(payload, "payload", None)
        if isinstance(inner, SealedMessage):
            captured = inner
    tampered = SealedMessage(
        group=captured.group,
        epoch_label=captured.epoch_label,
        sender=captured.sender,
        ciphertext=bytes([captured.ciphertext[0] ^ 1]) + captured.ciphertext[1:],
        tag=captured.tag,
    )
    before = len(h.payloads_of("a"))
    inject(h, "mallory", "d2", "g", tampered)
    h.run(2.0)
    assert len(h.payloads_of("a")) == before
