"""Secure layer end-to-end: key agreement over the real stack, data
protection, membership changes, all three modules."""

import pytest

from repro.errors import ControllerError, NoGroupKeyError
from repro.secure.events import (
    KeyOperation,
    RekeyStartedEvent,
    SecureDataEvent,
    SecureMembershipEvent,
)

from tests.secure.conftest import SecureHarness


MODULES = ["cliques", "ckd", "tgdh"]


# -- basic keying -------------------------------------------------------------------


@pytest.mark.parametrize("module", MODULES)
def test_single_member_gets_key(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g", module=module)
    h.wait_view(["a"])
    assert a.has_key("g")


@pytest.mark.parametrize("module", MODULES)
def test_two_members_agree(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    assert h.same_key(["a", "b"])


@pytest.mark.parametrize("module", MODULES)
def test_three_members_across_daemons(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    c.join("g", module=module)
    h.wait_view(["a", "b", "c"])


@pytest.mark.parametrize("module", MODULES)
def test_join_changes_key(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g", module=module)
    h.wait_view(["a"])
    key_before = a.sessions["g"]._session_keys.fingerprint()
    b = h.member("b", "d1")
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    assert a.sessions["g"]._session_keys.fingerprint() != key_before


# -- secure data ---------------------------------------------------------------------


@pytest.mark.parametrize("module", MODULES)
def test_encrypted_data_delivered(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    a.send("g", b"attack at dawn")
    h.run_until(lambda: b"attack at dawn" in h.payloads_of("b"))
    # Sender also receives its own (decrypted) copy.
    h.run_until(lambda: b"attack at dawn" in h.payloads_of("a"))


def test_ciphertext_on_wire_differs_from_plaintext():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    a.send("g", b"supersecret-payload")
    # Inspect raw queued flush-layer traffic at the daemon level: the
    # plaintext must never appear in any wire message payload.
    h.run_until(lambda: b"supersecret-payload" in h.payloads_of("b"))
    for event in h.members["b"].flush.client.queue:
        raw = getattr(getattr(event, "payload", None), "ciphertext", None)
        if raw is not None:
            assert b"supersecret-payload" not in raw


def test_send_before_key_raises():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g")
    with pytest.raises(NoGroupKeyError):
        a.send("g", b"too early")


def test_send_to_unjoined_group_raises():
    h = SecureHarness()
    a = h.member("a", "d0")
    with pytest.raises(NoGroupKeyError):
        a.send("nope", b"x")


def test_non_member_cannot_decrypt():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    before = a.sessions["g"]._session_keys.fingerprint()
    b.leave("g")
    h.wait_view(["a"])
    # Key rotated after the leave: the leaver cannot decrypt new data.
    assert a.sessions["g"]._session_keys.fingerprint() != before
    a.send("g", b"post-leave secret")
    h.run(1.0)
    assert b"post-leave secret" not in h.payloads_of("b")


# -- leaves, disconnects --------------------------------------------------------------


@pytest.mark.parametrize("module", MODULES)
def test_voluntary_leave_rekeys_remaining(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    for m in (a, b, c):
        m.join("g", module=module)
        h.run(2.0)
    h.wait_view(["a", "b", "c"])
    c.leave("g")
    h.wait_view(["a", "b"])
    assert h.same_key(["a", "b"])


@pytest.mark.parametrize("module", MODULES)
def test_client_crash_rekeys_remaining(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    for m in (a, b, c):
        m.join("g", module=module)
        h.run(2.0)
    h.wait_view(["a", "b", "c"])
    h.cluster.clients["c"].crash()
    h.wait_view(["a", "b"])


def test_leave_event_operation_classified():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    b.leave("g")
    h.wait_view(["a"])
    final = [
        e for e in a.queue if isinstance(e, SecureMembershipEvent)
    ][-1]
    assert final.operation == KeyOperation.LEAVE


def test_rekey_started_events_emitted():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g")
    h.wait_view(["a"])
    assert any(isinstance(e, RekeyStartedEvent) for e in a.queue)


# -- partitions / merges ------------------------------------------------------------------


@pytest.mark.parametrize("module", MODULES)
def test_partition_rekeys_each_side(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    h.network.partition([["d0"], ["d1", "d2"]])
    h.run_until(lambda: h.secure_members_of("a") == {str(a.pid)})
    h.run_until(lambda: h.secure_members_of("b") == {str(b.pid)})
    assert a.has_key("g") and b.has_key("g")


@pytest.mark.parametrize("module", MODULES)
def test_merge_after_heal_rekeys_together(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    h.network.partition([["d0"], ["d1", "d2"]])
    h.run_until(lambda: h.secure_members_of("a") == {str(a.pid)})
    h.run_until(lambda: h.secure_members_of("b") == {str(b.pid)})
    h.network.heal()
    h.wait_view(["a", "b"])
    assert h.same_key(["a", "b"])
    final = [e for e in a.queue if isinstance(e, SecureMembershipEvent)][-1]
    assert final.operation in (KeyOperation.MERGE, KeyOperation.LEAVE_THEN_MERGE)


@pytest.mark.parametrize("module", MODULES)
def test_data_flows_after_merge(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    h.network.partition([["d0"], ["d1", "d2"]])
    h.run_until(lambda: h.secure_members_of("a") == {str(a.pid)})
    h.network.heal()
    h.wait_view(["a", "b"])
    a.send("g", b"after the storm")
    h.run_until(lambda: b"after the storm" in h.payloads_of("b"))


# -- refresh ------------------------------------------------------------------------------


@pytest.mark.parametrize("module", MODULES)
def test_controller_refresh_rotates_key(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    h.wait_view(["a", "b"])
    before = a.sessions["g"]._session_keys.fingerprint()
    # Find the controller and refresh from there.
    controller = a if a.sessions["g"].module.is_controller else b
    controller.refresh("g")
    h.run_until(
        lambda: h.same_key(["a", "b"])
        and a.sessions["g"]._session_keys.fingerprint() != before
    )


def test_non_controller_refresh_rejected():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    non_controller = a if not a.sessions["g"].module.is_controller else b
    with pytest.raises(ControllerError):
        non_controller.refresh("g")


# -- mixed modules in one system -------------------------------------------------------------


def test_different_groups_different_modules():
    """One group on Cliques, another on CKD, same clients — the paper's
    run-time module choice."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g1", module="cliques")
    h.wait_view(["a"], group="g1")
    b.join("g1", module="cliques")
    a.join("g2", module="ckd")
    h.run(2.0)
    b.join("g2", module="ckd")
    h.wait_view(["a", "b"], group="g1")
    h.wait_view(["a", "b"], group="g2")
    assert a.sessions["g1"].module.name == "cliques"
    assert a.sessions["g2"].module.name == "ckd"
    a.send("g1", b"via cliques")
    a.send("g2", b"via ckd")
    h.run_until(
        lambda: b"via cliques" in h.payloads_of("b", "g1")
        and b"via ckd" in h.payloads_of("b", "g2")
    )
