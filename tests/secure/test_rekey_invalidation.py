"""Rekey must retire the old epoch's cached cipher schedule.

The cipher-schedule cache makes steady-state sealing cheap; the safety
obligation it creates is that a rekey (view change) evicts the retired
epoch's schedule, so the shared cache never keeps serving key material
the group has abandoned.  ``SecureSession._begin_attempt`` calls
``DataProtector.invalidate`` for exactly this.
"""

from __future__ import annotations

from repro.crypto.blowfish import Blowfish
from repro.crypto.cipher_cache import default_cache
from repro.crypto.kdf import derive_keys
from repro.secure.dataprotect import DataProtector


def test_view_change_evicts_old_epoch_schedule(harness):
    a = harness.member("a", "d0")
    a.join("g")
    harness.wait_view(["a"])

    key_a = harness.members["a"].sessions["g"]._session_keys
    assert key_a.encryption_key in default_cache()

    b = harness.member("b", "d1")
    b.join("g")
    harness.wait_view(["a", "b"])

    key_ab = harness.members["a"].sessions["g"]._session_keys
    # New epoch, new key bytes, new cached schedule ...
    assert key_ab.encryption_key != key_a.encryption_key
    assert key_ab.encryption_key in default_cache()
    # ... and the retired epoch's schedule is gone from the cache.
    assert key_a.encryption_key not in default_cache()


def test_steady_state_traffic_derives_no_schedules(harness):
    a = harness.member("a", "d0")
    b = harness.member("b", "d1")
    a.join("g")
    b.join("g")
    harness.wait_view(["a", "b"])

    a.send("g", b"warmup")
    harness.run(2.0)
    before = Blowfish.constructions
    for i in range(10):
        a.send("g", b"steady %d" % i)
        harness.run(1.0)
    assert b"steady 9" in harness.payloads_of("b")
    # Ten sealed + delivered messages, zero new key schedules.
    assert Blowfish.constructions == before


def test_protector_invalidate_is_idempotent():
    keys = derive_keys(0x5EC07D, "inv-group", 1)
    protector = DataProtector(keys, "inv-group|v1|0")
    assert keys.encryption_key in default_cache()
    protector.invalidate()
    assert keys.encryption_key not in default_cache()
    protector.invalidate()  # second call is a no-op, not an error
    assert default_cache().get(keys.encryption_key) is not None  # rederivable
    default_cache().invalidate(keys.encryption_key)
