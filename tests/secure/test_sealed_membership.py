"""Sealed membership control: the daemon model with seal_control=True."""

import pytest

from repro.crypto.dh import DHParams
from repro.secure.daemon_model import DaemonSealedControl, secure_all_daemons
from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.messages import (
    GatherAnnounce,
    Hello,
    Install,
    Propose,
    SyncInfo,
)
from repro.types import ServiceType

from tests.spread.conftest import Cluster

CONTROL_TYPES = (Hello, GatherAnnounce, Propose, SyncInfo, Install)


def make_sealed_cluster(daemon_count=3, seed=71):
    cluster = Cluster(daemon_count=daemon_count, seed=seed)
    layers = secure_all_daemons(
        cluster.daemons,
        params=DHParams.tiny_test(),
        seed=seed,
        seal_control=True,
    )
    return cluster, layers


def members_of(client, group="g"):
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def test_cluster_converges_with_sealed_control():
    cluster, layers = make_sealed_cluster()
    cluster.settle(timeout=30)
    assert all(len(d.view_members) == 3 for d in cluster.alive_daemons())


def test_no_plaintext_control_on_the_wire():
    cluster, layers = make_sealed_cluster()
    seen_clear = []
    original_send = cluster.network.send

    def spy(source, destination, payload, size=None):
        if isinstance(payload, CONTROL_TYPES):
            seen_clear.append(type(payload).__name__)
        return original_send(source, destination, payload, size)

    cluster.network.send = spy
    cluster.settle(timeout=30)
    cluster.daemons["d2"].crash()
    cluster.run_until(lambda: cluster.converged(["d0", "d1"]), timeout=30)
    assert seen_clear == []


def test_sealed_control_messages_observed():
    cluster, layers = make_sealed_cluster()
    sealed_count = 0
    original_send = cluster.network.send

    def spy(source, destination, payload, size=None):
        nonlocal sealed_count
        if isinstance(payload, DaemonSealedControl):
            sealed_count += 1
        return original_send(source, destination, payload, size)

    cluster.network.send = spy
    cluster.settle(timeout=30)
    assert sealed_count > 0  # hellos and membership ran sealed


def test_full_function_with_sealed_control():
    cluster, layers = make_sealed_cluster()
    cluster.settle(timeout=30)
    cluster.run(1.0)
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run_until(
        lambda: members_of(b) == {"#a#d0", "#b#d1"}, timeout=30
    )
    a.multicast(ServiceType.AGREED, "g", "fully sealed stack")
    cluster.run_until(
        lambda: any(
            isinstance(e, DataEvent) and e.payload == "fully sealed stack"
            for e in b.queue
        ),
        timeout=30,
    )


def test_partition_merge_with_sealed_control():
    """Static pairwise channels work across components: the membership
    protocol can merge two partitions even though no shared view key
    exists between them."""
    cluster, layers = make_sealed_cluster(daemon_count=4)
    cluster.settle(timeout=30)
    cluster.network.partition([["d0", "d1"], ["d2", "d3"]])
    cluster.settle_components(["d0", "d1"], ["d2", "d3"], timeout=30)
    cluster.network.heal()
    cluster.settle(timeout=30)
    assert all(len(d.view_members) == 4 for d in cluster.alive_daemons())


def test_corrupt_sealed_control_dropped():
    cluster, layers = make_sealed_cluster()
    cluster.settle(timeout=30)
    from repro.secure.dataprotect import SealedMessage

    bogus = DaemonSealedControl(
        sender="d1",
        sealed=SealedMessage(
            "__daemon-control__", "daemon-control", "d1",
            b"\x00" * 16, b"\x00" * 20,
        ),
    )
    handled, unsealed = layers["d0"].intercept("d1", bogus)
    assert handled and unsealed is None
    rejects = cluster.tracer.of_kind("daemon_security.reject_control")
    assert rejects
