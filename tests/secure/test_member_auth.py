"""Intra-group member authentication: challenge-response over the stack."""

import pytest

from repro.errors import NoGroupKeyError
from repro.secure.member_auth import (
    MemberAuthChallenge,
    MemberAuthenticatedEvent,
    MemberAuthResponse,
    make_proof,
    response_key,
    verify_proof,
)
from repro.spread.events import GroupViewId
from repro.types import ViewId

from tests.secure.conftest import SecureHarness


# -- pure crypto units -------------------------------------------------------------


def make_challenge(nonce=b"n" * 16, attempt=0):
    return MemberAuthChallenge(
        group="g",
        view_key=GroupViewId(ViewId(1, 1, "d0"), 1),
        attempt=attempt,
        nonce=nonce,
        challenger="#a#d0",
        target="#b#d1",
    )


def make_response(challenge, proof, responder="#b#d1", nonce=None,
                  attempt=None):
    return MemberAuthResponse(
        group=challenge.group,
        view_key=challenge.view_key,
        attempt=challenge.attempt if attempt is None else attempt,
        nonce=challenge.nonce if nonce is None else nonce,
        responder=responder,
        proof=proof,
    )


def test_proof_roundtrip():
    challenge = make_challenge()
    key = response_key(12345, "g", challenge.view_key, 0, "abcd", "#a#d0", "#b#d1")
    proof = make_proof(key, challenge)
    assert verify_proof(key, challenge, make_response(challenge, proof))


def test_proof_rejects_wrong_key():
    challenge = make_challenge()
    key = response_key(12345, "g", challenge.view_key, 0, "abcd", "#a#d0", "#b#d1")
    bad_key = response_key(54321, "g", challenge.view_key, 0, "abcd", "#a#d0", "#b#d1")
    proof = make_proof(bad_key, challenge)
    assert not verify_proof(key, challenge, make_response(challenge, proof))


def test_proof_rejects_wrong_nonce():
    challenge = make_challenge()
    key = response_key(12345, "g", challenge.view_key, 0, "abcd", "#a#d0", "#b#d1")
    proof = make_proof(key, challenge)
    assert not verify_proof(
        key, challenge, make_response(challenge, proof, nonce=b"x" * 16)
    )


def test_proof_rejects_wrong_responder():
    challenge = make_challenge()
    key = response_key(12345, "g", challenge.view_key, 0, "abcd", "#a#d0", "#b#d1")
    proof = make_proof(key, challenge)
    assert not verify_proof(
        key, challenge, make_response(challenge, proof, responder="#m#d2")
    )


def test_proof_rejects_stale_attempt():
    challenge = make_challenge()
    key = response_key(12345, "g", challenge.view_key, 0, "abcd", "#a#d0", "#b#d1")
    proof = make_proof(key, challenge)
    assert not verify_proof(
        key, challenge, make_response(challenge, proof, attempt=1)
    )


def test_response_key_binds_fingerprint():
    challenge = make_challenge()
    a = response_key(12345, "g", challenge.view_key, 0, "aaaa", "#a#d0", "#b#d1")
    b = response_key(12345, "g", challenge.view_key, 0, "bbbb", "#a#d0", "#b#d1")
    assert a != b


# -- full stack ----------------------------------------------------------------------


def auth_events(member):
    return [e for e in member.queue if isinstance(e, MemberAuthenticatedEvent)]


def test_member_authentication_succeeds():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    a.authenticate("g", str(b.pid))
    h.run_until(lambda: auth_events(a))
    event = auth_events(a)[-1]
    assert event.authenticated
    assert event.peer == str(b.pid)


def test_mutual_authentication():
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    a.authenticate("g", str(b.pid))
    b.authenticate("g", str(a.pid))
    h.run_until(lambda: auth_events(a) and auth_events(b))
    assert auth_events(a)[-1].authenticated
    assert auth_events(b)[-1].authenticated


def test_authenticate_unknown_peer_rejected():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g")
    h.wait_view(["a"])
    with pytest.raises(NoGroupKeyError):
        a.authenticate("g", "#ghost#d9")


def test_authenticate_before_key_rejected():
    h = SecureHarness()
    a = h.member("a", "d0")
    a.join("g")
    with pytest.raises(NoGroupKeyError):
        a.authenticate("g", "#b#d1")


def test_stale_challenge_after_rekey_gets_no_response():
    """A challenge from the previous secure view must not be answered."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    h.wait_view(["a", "b"])
    session_a = a.sessions["g"]
    old_view, old_attempt = session_a.view_key, session_a.attempt
    # Re-key via a third member joining.
    c = h.member("c", "d2")
    c.join("g")
    h.wait_view(["a", "b", "c"])
    # Forge a challenge pinned to the old view.
    stale = MemberAuthChallenge(
        group="g",
        view_key=old_view,
        attempt=old_attempt,
        nonce=b"z" * 16,
        challenger=str(a.pid),
        target=str(b.pid),
    )
    session_a._pending_challenges[stale.nonce] = stale
    a.flush.unicast(b.pid, stale)
    h.run(2.0)
    assert not auth_events(a)  # no verdict: b refused to answer
