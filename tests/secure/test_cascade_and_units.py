"""Cascading events, the restart protocol, and secure-layer unit tests."""

import pytest

from repro.crypto.kdf import derive_keys
from repro.crypto.random_source import DeterministicSource
from repro.errors import IntegrityError, ModuleNotFoundError_, StaleKeyError
from repro.secure.cascade import (
    AgreementEnvelope,
    KeyConfirm,
    RestartRequest,
)
from repro.secure.dataprotect import DataProtector
from repro.secure.events import (
    KeyOperation,
    SecureMembershipEvent,
    classify_event,
)
from repro.secure.policy import AllowAllPolicy, ModuleRegistry, default_registry
from repro.spread.events import GroupViewId, MembershipEvent
from repro.types import (
    DaemonId,
    GroupId,
    MembershipCause,
    ProcessId,
    ViewId,
)

from tests.secure.conftest import SecureHarness


# -- Table 1 mapping ---------------------------------------------------------------


def _event(cause, joined=(), left=()):
    pid = lambda n: ProcessId(n, DaemonId("d0"))
    return MembershipEvent(
        group=GroupId("g"),
        view_id=GroupViewId(ViewId(1, 1, "d0"), 1),
        members=(pid("a"), pid("b")),
        cause=cause,
        joined=frozenset(pid(j) for j in joined),
        left=frozenset(pid(l) for l in left),
    )


def test_table1_join():
    assert classify_event(_event(MembershipCause.JOIN, joined=["x"])) == KeyOperation.JOIN


def test_table1_leave():
    assert classify_event(_event(MembershipCause.LEAVE, left=["x"])) == KeyOperation.LEAVE


def test_table1_disconnect_maps_to_leave():
    assert (
        classify_event(_event(MembershipCause.DISCONNECT, left=["x"]))
        == KeyOperation.LEAVE
    )


def test_table1_partition_maps_to_leave():
    assert (
        classify_event(_event(MembershipCause.NETWORK, left=["x"]))
        == KeyOperation.LEAVE
    )


def test_table1_merge():
    assert (
        classify_event(_event(MembershipCause.NETWORK, joined=["x"]))
        == KeyOperation.MERGE
    )


def test_table1_partition_plus_merge():
    assert (
        classify_event(_event(MembershipCause.NETWORK, joined=["x"], left=["y"]))
        == KeyOperation.LEAVE_THEN_MERGE
    )


# -- data protection units --------------------------------------------------------------


def make_protector(epoch="g|v|0"):
    keys = derive_keys(123456789, "g|v", 0)
    return DataProtector(keys, epoch)


def test_seal_unseal_roundtrip():
    protector = make_protector()
    sealed = protector.seal("g", "#a#d0", b"hello", DeterministicSource(1))
    assert protector.unseal(sealed) == b"hello"


def test_unseal_rejects_wrong_epoch():
    protector = make_protector()
    sealed = protector.seal("g", "#a#d0", b"hello", DeterministicSource(1))
    other = make_protector(epoch="g|v|1")
    with pytest.raises(StaleKeyError):
        other.unseal(sealed)


def test_unseal_rejects_tampered_ciphertext():
    protector = make_protector()
    sealed = protector.seal("g", "#a#d0", b"hello", DeterministicSource(1))
    tampered = type(sealed)(
        group=sealed.group,
        epoch_label=sealed.epoch_label,
        sender=sealed.sender,
        ciphertext=sealed.ciphertext[:-1] + bytes([sealed.ciphertext[-1] ^ 1]),
        tag=sealed.tag,
    )
    with pytest.raises(IntegrityError):
        protector.unseal(tampered)


def test_unseal_rejects_forged_sender():
    protector = make_protector()
    sealed = protector.seal("g", "#a#d0", b"hello", DeterministicSource(1))
    forged = type(sealed)(
        group=sealed.group,
        epoch_label=sealed.epoch_label,
        sender="#mallory#d0",
        ciphertext=sealed.ciphertext,
        tag=sealed.tag,
    )
    with pytest.raises(IntegrityError):
        protector.unseal(forged)


def test_sealed_wire_size():
    protector = make_protector()
    sealed = protector.seal("g", "#a#d0", b"hello", DeterministicSource(1))
    assert sealed.wire_size() > len(sealed.ciphertext)


# -- policy / registry --------------------------------------------------------------------


def test_registry_knows_all_builtin_modules():
    registry = default_registry()
    assert registry.names() == ["ckd", "cliques", "tgdh"]


def test_registry_unknown_module_raises():
    registry = ModuleRegistry()
    with pytest.raises(ModuleNotFoundError_):
        registry.create("quantum")


def test_policy_defaults_to_cliques():
    policy = AllowAllPolicy()
    assert policy.module_for("g", None) == "cliques"
    assert policy.module_for("g", "ckd") == "ckd"
    assert policy.may_join("#a#d0", "g")


# -- cascading scenarios over the full stack ---------------------------------------------------


@pytest.mark.parametrize("module", ["cliques", "ckd"])
def test_rapid_joins_converge(module):
    """Several members join in quick succession — agreements cascade and
    must still converge to one shared key."""
    h = SecureHarness()
    members = []
    for i, daemon in enumerate(["d0", "d1", "d2", "d0"]):
        m = h.member(f"m{i}", daemon)
        m.join("g", module=module)
        members.append(f"m{i}")
        h.run(0.02)  # overlap the agreements
    h.wait_view(members, timeout=60)
    assert h.same_key(members)


@pytest.mark.parametrize("module", ["cliques", "ckd"])
def test_join_leave_churn(module):
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    a.join("g", module=module)
    h.wait_view(["a"])
    b.join("g", module=module)
    c.join("g", module=module)
    h.run(0.05)
    h.wait_view(["a", "b", "c"], timeout=60)
    b.leave("g")
    c.leave("g")
    h.wait_view(["a"], timeout=60)
    assert a.has_key("g")


def test_partition_during_agreement_converges():
    """A partition lands while a join's key agreement is still running:
    both sides must recover and key their components."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    # Do NOT wait: partition immediately, mid-agreement.
    h.run(0.01)
    h.network.partition([["d0"], ["d1", "d2"]])
    h.run_until(lambda: h.secure_members_of("a") == {str(a.pid)}, timeout=60)
    h.run_until(lambda: h.secure_members_of("b") == {str(b.pid)}, timeout=60)
    h.network.heal()
    h.wait_view(["a", "b"], timeout=60)
    a.send("g", b"recovered")
    h.run_until(lambda: b"recovered" in h.payloads_of("b"), timeout=60)


def test_restart_attempt_recorded_in_secure_view():
    """When a cascade forces a restart, the delivered secure view carries
    attempt > 0 for at least one member."""
    h = SecureHarness()
    a = h.member("a", "d0")
    b = h.member("b", "d1")
    c = h.member("c", "d2")
    a.join("g")
    h.wait_view(["a"])
    b.join("g")
    c.join("g")  # cascades onto b's join
    h.wait_view(["a", "b", "c"], timeout=60)
    # The protocol converged either via clean incremental agreements or a
    # restart; both are valid.  Assert key equality (done by wait_view)
    # and that attempts are consistent across members for the final view.
    finals = set()
    for name in ("a", "b", "c"):
        events = [
            e for e in h.members[name].queue
            if isinstance(e, SecureMembershipEvent)
        ]
        finals.add((events[-1].attempt, events[-1].key_fingerprint))
    assert len(finals) == 1


def test_wire_sizes_of_control_messages():
    view = GroupViewId(ViewId(1, 1, "d0"), 1)
    assert AgreementEnvelope(view, 0, "x").wire_size() > 0
    assert RestartRequest(view, 0).wire_size() > 0
    assert KeyConfirm(view, 0, "ab").wire_size() > 0
