"""Cipher-schedule cache: reuse, LRU eviction, explicit invalidation.

The regression this guards: the seed's cipher suite derived a fresh
Blowfish key schedule (521 block encryptions) inside *every* encrypt and
decrypt call.  ``Blowfish.constructions`` counts schedules process-wide,
so these tests prove reuse by construction count, not by timing.
"""

from __future__ import annotations

import pytest

from repro.crypto.blowfish import Blowfish
from repro.crypto.cipher_cache import (
    CipherCache,
    default_cache,
    get_cached_cipher,
    invalidate_key,
)
from repro.crypto.random_source import DeterministicSource
from repro.secure.ciphers import get_cipher_suite


def key_of(index: int) -> bytes:
    return bytes((index + i) & 0xFF for i in range(16))


def test_hit_returns_same_instance_without_new_schedule():
    cache = CipherCache()
    before = Blowfish.constructions
    first = cache.get(key_of(1))
    assert Blowfish.constructions == before + 1
    again = cache.get(key_of(1))
    assert again is first
    assert Blowfish.constructions == before + 1  # no second schedule
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_distinct_keys_get_distinct_schedules():
    cache = CipherCache()
    a = cache.get(key_of(1))
    b = cache.get(key_of(2))
    assert a is not b
    block = b"\x11" * 8
    assert a.encrypt_block(block) != b.encrypt_block(block)


def test_lru_eviction_drops_least_recent():
    cache = CipherCache(maxsize=2)
    cache.get(key_of(1))
    cache.get(key_of(2))
    cache.get(key_of(1))  # key 1 is now most recent
    cache.get(key_of(3))  # evicts key 2
    assert key_of(1) in cache
    assert key_of(2) not in cache
    assert key_of(3) in cache
    assert cache.stats()["evictions"] == 1
    assert len(cache) == 2


def test_invalidate_removes_and_counts():
    cache = CipherCache()
    cache.get(key_of(7))
    assert cache.invalidate(key_of(7)) is True
    assert key_of(7) not in cache
    assert cache.invalidate(key_of(7)) is False  # already gone
    assert cache.stats()["invalidations"] == 1


def test_invalidated_key_rederives_fresh_schedule():
    cache = CipherCache()
    first = cache.get(key_of(9))
    cache.invalidate(key_of(9))
    before = Blowfish.constructions
    second = cache.get(key_of(9))
    assert second is not first
    assert Blowfish.constructions == before + 1


def test_clear_empties_cache():
    cache = CipherCache()
    cache.get(key_of(1))
    cache.get(key_of(2))
    cache.clear()
    assert len(cache) == 0


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        CipherCache(maxsize=0)


def test_module_level_cache_and_invalidation():
    key = key_of(42)
    invalidate_key(key)  # clean slate no matter what ran before
    cipher = get_cached_cipher(key)
    assert get_cached_cipher(key) is cipher
    assert key in default_cache()
    invalidate_key(key)
    assert key not in default_cache()


def test_cipher_suite_reuses_one_schedule_across_messages():
    """The seed's regression: suite.encrypt/decrypt derived a schedule
    per call.  Steady-state traffic must now cost zero new schedules."""
    suite = get_cipher_suite("blowfish-cbc")
    key = key_of(77)
    invalidate_key(key)
    rng = DeterministicSource(5)

    suite.encrypt(key, b"warm the cache", rng)  # one schedule derivation
    before = Blowfish.constructions
    hits_before = default_cache().hits
    for i in range(20):
        sealed = suite.encrypt(key, b"payload %d" % i, rng)
        assert suite.decrypt(key, sealed) == b"payload %d" % i
    assert Blowfish.constructions == before  # zero new schedules
    assert default_cache().hits >= hits_before + 40  # 20 seals + 20 opens
    invalidate_key(key)


def test_keyed_cipher_is_cached_instance():
    suite = get_cipher_suite("blowfish-cbc")
    key = key_of(90)
    invalidate_key(key)
    cipher = suite.keyed(key)
    assert suite.keyed(key) is cipher
    rng = DeterministicSource(6)
    sealed = suite.encrypt_with(cipher, b"direct", rng)
    assert suite.decrypt_with(cipher, sealed) == b"direct"
    invalidate_key(key)
