"""The data-plane fast path: word-level Blowfish, buffer modes, padding.

Three layers of defense around the optimized cipher core:

* **Published vectors** — Eric Young's ``set_key`` sweep (keys of 4..24
  bytes) pins the key schedule against the world, not against ourselves.
* **Captured KATs** — CBC/CTR outputs and an extended 25..56-byte key
  sweep recorded from the pre-optimization implementation, so the
  unrolled rewrite provably changed no bit of any output.
* **Oracle equivalence** — property tests against the slow reference
  implementation in :mod:`repro.crypto.reference`.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blowfish import BLOCK_SIZE, Blowfish
from repro.crypto.hmac_mac import HmacKey, hmac_digest
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_decrypt,
    ctr_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.reference import (
    ReferenceBlowfish,
    ReferenceSHA1,
    reference_cbc_decrypt,
    reference_cbc_encrypt,
    reference_ctr_xor,
    reference_hmac_digest,
)
from repro.crypto.sha1 import SHA1, sha1
from repro.errors import CipherError


class FixedSource:
    """Deterministic IV/nonce source for known-answer tests."""

    def __init__(self, token: bytes) -> None:
        self.token = token

    def token_bytes(self, count: int) -> bytes:
        return self.token[:count]


# -- Eric Young's set_key sweep (published vectors) ---------------------------

_SET_KEY_FULL = bytes.fromhex(
    "F0E1D2C3B4A5968778695A4B3C2D1E0F0011223344556677"
)
_SET_KEY_PLAINTEXT = bytes.fromhex("FEDCBA9876543210")

#: (key length, ciphertext) for keys that are prefixes of the 24-byte
#: set_key master key — from Eric Young's published vector file.
SET_KEY_VECTORS = [
    (4, "BE1E639408640F05"),
    (5, "B39E44481BDB1E6E"),
    (6, "9457AA83B1928C0D"),
    (7, "8BB77032F960629D"),
    (8, "E87A244E2CC85E82"),
    (9, "15750E7A4F4EC577"),
    (10, "122BA70B3AB64AE0"),
    (11, "3A833C9AFFC537F6"),
    (12, "9409DA87A90F6BF2"),
    (13, "884F80625060B8B4"),
    (14, "1F85031C19E11968"),
    (15, "79D9373A714CA34F"),
    (16, "93142887EE3BE15C"),
    (17, "03429E838CE2D14B"),
    (18, "A4299E27469FF67B"),
    (19, "AFD5AED1C1BC96A8"),
    (20, "10851C0E3858DA9F"),
    (21, "E6F51ED79B9DB21F"),
    (22, "64A6E14AFD36B46F"),
    (23, "80C7D7D45A5479AD"),
    (24, "05044B62FA52D080"),
]

#: Keys of 25..56 bytes (beyond the published file): byte ``i`` of the
#: key is ``(i * 7 + 3) & 0xFF``.  Captured from the pre-optimization
#: implementation, which itself matched the published 4..24 sweep.
EXTENDED_KEY_VECTORS = [
    (25, "F02C2CBC8C3B721A"),
    (26, "52880AA271D1B465"),
    (27, "CFEF6F26417C21F4"),
    (28, "2CC6542AF1DCBE15"),
    (29, "BAA39127F717A990"),
    (30, "72A4B5E93ACAA01E"),
    (31, "6AD3344906B80C7D"),
    (32, "3588A672FBA2EC4B"),
    (33, "81F5BAE9C50DE3BC"),
    (34, "4577E2759FB3FF0F"),
    (35, "B3E6CD82FEB6BD33"),
    (36, "FF0914BC9367C67B"),
    (37, "D0531DE655FD8A6F"),
    (38, "77941D96BD068571"),
    (39, "4DDF002112AC2B5C"),
    (40, "382EE21512A0C2ED"),
    (41, "A84100B963A05BBD"),
    (42, "D5E299AE30B9B552"),
    (43, "7EFA38411579BBF8"),
    (44, "8BE134CF2872EEB3"),
    (45, "431215182BF0EC8D"),
    (46, "5B703146C647A098"),
    (47, "C4107D2871B82515"),
    (48, "F7B34521CF003618"),
    (49, "3979846B65D0390D"),
    (50, "359BD0F01CFFEF13"),
    (51, "91F3D97637952724"),
    (52, "C88C0E7D8B5CA4FD"),
    (53, "F0B2875076E0A9D3"),
    (54, "D5D0ACC4767400BC"),
    (55, "83A8829DF07DB965"),
    (56, "83CBADE6A7845D32"),
]


@pytest.mark.parametrize("key_len,cipher_hex", SET_KEY_VECTORS)
def test_set_key_sweep_published(key_len, cipher_hex):
    cipher = Blowfish(_SET_KEY_FULL[:key_len])
    assert (
        cipher.encrypt_block(_SET_KEY_PLAINTEXT).hex().upper() == cipher_hex
    )


@pytest.mark.parametrize("key_len,cipher_hex", EXTENDED_KEY_VECTORS)
def test_set_key_sweep_extended(key_len, cipher_hex):
    key = bytes((i * 7 + 3) & 0xFF for i in range(key_len))
    cipher = Blowfish(key)
    assert (
        cipher.encrypt_block(_SET_KEY_PLAINTEXT).hex().upper() == cipher_hex
    )
    assert cipher.decrypt_block(bytes.fromhex(cipher_hex)) == _SET_KEY_PLAINTEXT


# -- captured mode KATs (pre-optimization outputs, bit-for-bit) ---------------

_KAT_KEY = b"pinned-cbc-key-16"[:16]
_KAT_MESSAGES = [
    b"",
    b"fastpath",
    b"The quick brown fox jumps over the lazy dog",
    bytes(range(64)),
]
_CBC_IV = bytes(range(8))
_CBC_EXPECTED = [
    "0001020304050607778e1e5b7ca03c0a",
    "00010203040506070e6f118ea4de689b13ae4e727f6650ab",
    "00010203040506070231bfd417da6e3ecb690216bdd4bebb"
    "c4c11649cff6c6c364aa20df84db84dc9ce4c93c49639192"
    "8c225804e4cdb2aa",
    "0001020304050607ff40ed5dcc98e356a3733bfcc22e6023"
    "13fa81abb64e2bfc0e12ce7a6be337d5394f8a91ba8df4e9"
    "2a86934a0af89fb1c7df3898ae24a7aeb19ce91b8769d9cf"
    "308212a915cb8602",
]
_CTR_NONCE = b"\xff" * 8
_CTR_EXPECTED = [
    "ffffffffffffffff",
    "ffffffffffffffffe87a359670e90e7c",
    "ffffffffffffffffda7323c271fd137794608f2fa3ef8d76"
    "90bd28aafddf9ae66df62ad5272c805c4187de908715a3b4"
    "c539f8",
    "ffffffffffffffff8e1a44e1048d7c13f749e756c095ed59"
    "e6c3429983bfe18106cf5fb85e43be3709c3dcdfc24afcb3"
    "897fb5cdf218d9a765afda7a5500d4bea23d08b598ed73ae",
]


@pytest.mark.parametrize(
    "message,expected", zip(_KAT_MESSAGES, _CBC_EXPECTED)
)
def test_cbc_known_answers(message, expected):
    cipher = Blowfish(_KAT_KEY)
    sealed = cbc_encrypt(cipher, message, FixedSource(_CBC_IV))
    assert sealed.hex() == expected
    assert cbc_decrypt(cipher, sealed) == message


@pytest.mark.parametrize(
    "message,expected", zip(_KAT_MESSAGES, _CTR_EXPECTED)
)
def test_ctr_known_answers(message, expected):
    cipher = Blowfish(_KAT_KEY)
    sealed = ctr_encrypt(cipher, message, FixedSource(_CTR_NONCE))
    assert sealed.hex() == expected
    assert ctr_decrypt(cipher, sealed) == message


# -- oracle equivalence -------------------------------------------------------

_EQUIV_KEY = b"equivalence-key!"
_FAST = Blowfish(_EQUIV_KEY)
_SLOW = ReferenceBlowfish(_EQUIV_KEY)


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=4, max_size=56))
def test_key_schedule_matches_reference(key):
    fast = Blowfish(key)
    slow = ReferenceBlowfish(key)
    block = b"\x5a" * BLOCK_SIZE
    assert fast.encrypt_block(block) == slow.encrypt_block(block)
    assert fast.decrypt_block(block) == slow.decrypt_block(block)


@settings(deadline=None)
@given(block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
def test_block_ops_match_reference(block):
    sealed = _FAST.encrypt_block(block)
    assert sealed == _SLOW.encrypt_block(block)
    assert _FAST.decrypt_block(sealed) == block


@settings(deadline=None)
@given(
    blocks=st.integers(min_value=0, max_value=9),
    data=st.data(),
)
def test_cbc_buffers_match_reference(blocks, data):
    padded = data.draw(
        st.binary(min_size=blocks * BLOCK_SIZE, max_size=blocks * BLOCK_SIZE)
    )
    iv = data.draw(st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
    sealed = _FAST.cbc_encrypt_blocks(padded, iv)
    assert sealed == reference_cbc_encrypt(_SLOW, padded, iv)
    assert _FAST.cbc_decrypt_blocks(sealed, iv) == reference_cbc_decrypt(
        _SLOW, sealed, iv
    )


@settings(deadline=None)
@given(
    data=st.binary(min_size=0, max_size=100),
    nonce=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
)
def test_ctr_matches_reference(data, nonce):
    assert _FAST.ctr_xor(data, nonce) == reference_ctr_xor(_SLOW, data, nonce)


def test_ctr_counter_wraps_past_2_64():
    nonce = b"\xff" * BLOCK_SIZE  # counter 2^64 - 1; next block wraps to 0
    data = bytes(24)
    assert _FAST.ctr_xor(data, nonce) == reference_ctr_xor(_SLOW, data, nonce)


# -- mode round-trips (random lengths, incl. 0 and exact multiples) ----------


@settings(deadline=None)
@given(message=st.binary(min_size=0, max_size=120))
def test_cbc_roundtrip(message):
    sealed = cbc_encrypt(_FAST, message, FixedSource(b"\x24" * BLOCK_SIZE))
    assert cbc_decrypt(_FAST, sealed) == message


@pytest.mark.parametrize("length", [0, BLOCK_SIZE, 4 * BLOCK_SIZE])
def test_cbc_roundtrip_exact_multiples(length):
    message = bytes(range(256))[:length]
    sealed = cbc_encrypt(_FAST, message, FixedSource(b"\x42" * BLOCK_SIZE))
    # Always-pad PKCS#7: a block-multiple message gains one full block.
    assert len(sealed) == BLOCK_SIZE + length + BLOCK_SIZE
    assert cbc_decrypt(_FAST, sealed) == message


@settings(deadline=None)
@given(message=st.binary(min_size=0, max_size=120))
def test_ctr_roundtrip(message):
    sealed = ctr_encrypt(_FAST, message, FixedSource(b"\x99" * BLOCK_SIZE))
    assert ctr_decrypt(_FAST, sealed) == message
    # CTR is length-preserving modulo the prepended nonce.
    assert len(sealed) == BLOCK_SIZE + len(message)


# -- PKCS#7 negative space ----------------------------------------------------


def test_unpad_rejects_truncated_buffer():
    padded = pkcs7_pad(b"some message")
    with pytest.raises(CipherError):
        pkcs7_unpad(padded[:-1])
    with pytest.raises(CipherError):
        pkcs7_unpad(b"")


def test_unpad_rejects_non_block_multiple():
    with pytest.raises(CipherError):
        pkcs7_unpad(b"x" * (BLOCK_SIZE + 3))


def test_unpad_rejects_corrupt_interior_pad_byte():
    padded = bytearray(pkcs7_pad(b"abc"))  # 5 bytes of \x05 padding
    padded[-3] ^= 0x01
    with pytest.raises(CipherError):
        pkcs7_unpad(bytes(padded))


def test_unpad_rejects_bad_length_byte():
    block = b"\x00" * (BLOCK_SIZE - 1)
    with pytest.raises(CipherError):
        pkcs7_unpad(block + b"\x00")  # zero length
    with pytest.raises(CipherError):
        pkcs7_unpad(block + bytes([BLOCK_SIZE + 1]))  # beyond block size


def test_unpad_rejections_are_indistinguishable():
    """Every in-block rejection raises the same message (oracle shape)."""
    messages = set()
    bad_inputs = [
        b"\x00" * BLOCK_SIZE,
        b"\x07" * 7 + b"\x09",
        pkcs7_pad(b"abc")[:-2] + b"\x00\x05",
    ]
    for bad in bad_inputs:
        with pytest.raises(CipherError) as excinfo:
            pkcs7_unpad(bad)
        messages.add(str(excinfo.value))
    assert len(messages) == 1


# -- SHA-1 / HMAC fast path ---------------------------------------------------


@settings(deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_sha1_matches_hashlib_and_reference(data):
    expected = hashlib.sha1(data).digest()
    assert sha1(data) == expected
    assert ReferenceSHA1(data).digest() == expected


def test_sha1_copy_preserves_midstate():
    base = SHA1(b"prefix-bytes-" * 10)
    fork = base.copy()
    fork.update(b"forked")
    base_digest = base.digest()
    assert fork.digest() == sha1(b"prefix-bytes-" * 10 + b"forked")
    # Copy-then-update never disturbs the original.
    assert base.digest() == base_digest == sha1(b"prefix-bytes-" * 10)


@settings(deadline=None)
@given(
    key=st.binary(min_size=1, max_size=80),
    message=st.binary(min_size=0, max_size=200),
)
def test_hmac_key_matches_one_shot_and_reference(key, message):
    prepared = HmacKey(key)
    expected = hmac_digest(key, message)
    assert prepared.digest(message) == expected
    assert reference_hmac_digest(key, message) == expected
    assert prepared.verify(message, expected)
    assert not prepared.verify(message + b"x", expected)
