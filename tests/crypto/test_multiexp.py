"""Multi-exponentiation batches: agreement with naive loops and
counter equivalence."""

from __future__ import annotations

import random

from repro.crypto import fixed_base
from repro.crypto.counters import ExpCounter
from repro.crypto.dh import DHParams
from repro.crypto.multiexp import (
    multi_exp,
    shared_base_powers,
    shared_exponent_powers,
)

P512 = DHParams.paper_512()


def test_shared_base_powers_match_pow():
    rng = random.Random(1)
    base = pow(P512.g, 0xACE, P512.p)
    exponents = [rng.randrange(0, P512.q) for _ in range(9)] + [0, 1, P512.q]
    assert shared_base_powers(base, exponents, P512.p) == [
        pow(base, e, P512.p) for e in exponents
    ]


def test_shared_base_powers_small_batch_and_empty():
    base = pow(P512.g, 3, P512.p)
    assert shared_base_powers(base, [], P512.p) == []
    assert shared_base_powers(base, [7], P512.p) == [pow(base, 7, P512.p)]


def test_shared_base_powers_identical_on_both_backends():
    rng = random.Random(2)
    base = pow(P512.g, 0xD00D, P512.p)
    exponents = [rng.randrange(0, P512.q) for _ in range(6)]
    with fixed_base.fast_backend(True):
        fast = shared_base_powers(base, exponents, P512.p)
    with fixed_base.fast_backend(False):
        ref = shared_base_powers(base, exponents, P512.p)
    assert fast == ref


def test_shared_base_powers_counter_matches_a_loop():
    base = pow(P512.g, 5, P512.p)
    exponents = [11, 22, 33, 44]
    batch_counter = ExpCounter()
    shared_base_powers(base, exponents, P512.p, batch_counter, "encrypt_session_key")
    loop_counter = ExpCounter()
    for _ in exponents:
        loop_counter.record("encrypt_session_key")
    assert batch_counter.snapshot() == loop_counter.snapshot()
    assert batch_counter.total == loop_counter.total


def test_shared_exponent_powers_match_pow():
    rng = random.Random(3)
    bases = [rng.randrange(2, P512.p) for _ in range(7)]
    exponent = rng.randrange(2, P512.q)
    counter = ExpCounter()
    result = shared_exponent_powers(bases, exponent, P512.p, counter, "update_share")
    assert result == [pow(b, exponent, P512.p) for b in bases]
    assert counter.snapshot() == {"update_share": len(bases)}


def test_shared_exponent_powers_reduce_out_of_range_bases():
    bases = [-3, P512.p + 9]
    assert shared_exponent_powers(bases, 17, P512.p) == [
        pow(b, 17, P512.p) for b in bases
    ]


def test_multi_exp_matches_naive_product():
    rng = random.Random(4)
    for count in (1, 2, 5):
        pairs = [
            (rng.randrange(2, P512.p), rng.randrange(0, P512.q))
            for _ in range(count)
        ]
        naive = 1
        for b, e in pairs:
            naive = naive * pow(b, e, P512.p) % P512.p
        assert multi_exp(pairs, P512.p) == naive


def test_multi_exp_edge_cases():
    assert multi_exp([], P512.p) == 1
    assert multi_exp([(5, 0), (1, 99)], P512.p) == 1
    assert multi_exp([(0, 3)], P512.p) == 0
    # Negative exponents fold in through pow's modular inverse.
    assert multi_exp([(7, -2), (7, 2)], P512.p) == 1
    assert multi_exp([(3, 5)], 1) == 0


def test_multi_exp_counts_only_when_labelled():
    counter = ExpCounter()
    multi_exp([(3, 5), (7, 9)], P512.p, counter)
    assert counter.total == 0
    multi_exp([(3, 5), (7, 9)], P512.p, counter, "verify")
    assert counter.snapshot() == {"verify": 2}
