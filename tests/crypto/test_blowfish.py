"""Blowfish: published vectors, round-trips, and structural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blowfish import (
    BLOCK_SIZE,
    MAX_KEY_BYTES,
    MIN_KEY_BYTES,
    TEST_VECTORS,
    Blowfish,
    pi_fraction_words,
    self_test,
)
from repro.errors import CipherError, KeyError_


def test_self_test_passes():
    self_test()


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", TEST_VECTORS)
def test_published_vectors_encrypt(key_hex, plain_hex, cipher_hex):
    cipher = Blowfish(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(plain_hex)).hex().upper() == cipher_hex


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", TEST_VECTORS)
def test_published_vectors_decrypt(key_hex, plain_hex, cipher_hex):
    cipher = Blowfish(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(cipher_hex)).hex().upper() == plain_hex


def test_pi_table_first_word_is_blowfish_p0():
    assert pi_fraction_words()[0] == 0x243F6A88
    assert pi_fraction_words()[1] == 0x85A308D3
    assert pi_fraction_words()[2] == 0x13198A2E
    assert pi_fraction_words()[3] == 0x03707344


def test_pi_table_length():
    assert len(pi_fraction_words()) == 18 + 4 * 256


def test_key_size_limits():
    with pytest.raises(KeyError_):
        Blowfish(b"abc")  # 3 bytes, below minimum
    with pytest.raises(KeyError_):
        Blowfish(b"x" * (MAX_KEY_BYTES + 1))
    Blowfish(b"x" * MIN_KEY_BYTES)
    Blowfish(b"x" * MAX_KEY_BYTES)


def test_wrong_block_size_raises():
    cipher = Blowfish(b"testkey1")
    with pytest.raises(CipherError):
        cipher.encrypt_block(b"short")
    with pytest.raises(CipherError):
        cipher.decrypt_block(b"toolongtoolong")


def test_different_keys_different_ciphertexts():
    block = b"\x00" * BLOCK_SIZE
    assert Blowfish(b"key-one1").encrypt_block(block) != Blowfish(
        b"key-two2"
    ).encrypt_block(block)


def test_encryption_is_deterministic_per_key():
    block = b"repromsg"
    a = Blowfish(b"samekey1").encrypt_block(block)
    b = Blowfish(b"samekey1").encrypt_block(block)
    assert a == b


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=MIN_KEY_BYTES, max_size=MAX_KEY_BYTES),
    block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
)
def test_roundtrip_property(key, block):
    cipher = Blowfish(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
def test_encrypt_never_identity_on_random_blocks(block):
    # Not a theorem of block ciphers, but overwhelmingly likely; a failure
    # here means the round function degenerated to a no-op.
    cipher = Blowfish(b"fixedkey")
    if block != cipher.encrypt_block(block):
        assert True
    else:  # pragma: no cover
        pytest.fail("encryption acted as identity")
