"""DH parameters, primality, exponentiation counters, KDF, bigint helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bigint import bytes_to_int, int_to_bytes, mod_exp, mod_inverse
from repro.crypto.counters import ExpCounter, global_counter
from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.kdf import derive_keys
from repro.crypto.primes import (
    SAFE_PRIME_512,
    SAFE_PRIME_512_Q,
    generate_safe_prime,
    is_probable_prime,
    is_safe_prime,
)
from repro.crypto.random_source import DeterministicSource, SystemSource
from repro.errors import ParameterError
from repro.sim.rng import DeterministicRng


# -- primes ---------------------------------------------------------------------


@pytest.mark.parametrize("prime", [2, 3, 5, 7, 97, 1019, 2039, 104729])
def test_known_primes(prime):
    assert is_probable_prime(prime)


@pytest.mark.parametrize("composite", [0, 1, 4, 9, 561, 41041, 104728])
def test_known_composites(composite):
    # 561 and 41041 are Carmichael numbers - Fermat liars, Miller-Rabin must
    # still reject them.
    assert not is_probable_prime(composite)


def test_embedded_512_bit_params_are_safe_prime():
    assert SAFE_PRIME_512.bit_length() == 512
    assert SAFE_PRIME_512 == 2 * SAFE_PRIME_512_Q + 1
    assert is_safe_prime(SAFE_PRIME_512)


def test_generate_small_safe_prime():
    p, q = generate_safe_prime(32, DeterministicRng(9))
    assert p == 2 * q + 1
    assert is_safe_prime(p)
    assert p.bit_length() == 32


def test_generate_safe_prime_rejects_tiny():
    with pytest.raises(ParameterError):
        generate_safe_prime(8, DeterministicRng(0))


# -- DH params -----------------------------------------------------------------


def test_paper_params_validate():
    params = DHParams.paper_512()
    params.validate()
    assert params.bits == 512


def test_rfc2409_params_validate():
    params = DHParams.rfc2409_group2()
    params.validate()
    assert params.bits == 1024


def test_tiny_test_params_validate():
    DHParams.tiny_test().validate()


def test_params_reject_non_safe_structure():
    with pytest.raises(ParameterError):
        DHParams(p=23, q=7, g=2)  # 23 != 2*7+1


def test_params_reject_bad_generator():
    with pytest.raises(ParameterError):
        DHParams(p=2039, q=1019, g=1)
    with pytest.raises(ParameterError):
        DHParams(p=2039, q=1019, g=2038)


def test_two_party_dh_agreement():
    params = DHParams.tiny_test()
    source = DeterministicSource(7)
    alice = DHKeyPair.generate(params, source)
    bob = DHKeyPair.generate(params, source)
    assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)


def test_shared_secret_rejects_degenerate_public():
    params = DHParams.tiny_test()
    pair = DHKeyPair.generate(params, DeterministicSource(1))
    with pytest.raises(ParameterError):
        pair.shared_secret(1)
    with pytest.raises(ParameterError):
        pair.shared_secret(params.p - 1)


def test_keypair_with_system_source():
    pair = DHKeyPair.generate(DHParams.tiny_test(), SystemSource())
    assert 1 < pair.public < pair.params.p


def test_keypair_generate_leaves_counters_untouched():
    # Long-term key creation is outside the paper's per-operation costs:
    # it routes through mod_exp (the single choke point) but uncounted.
    from repro.crypto.counters import global_counter

    counter = ExpCounter()
    before = global_counter().total
    DHKeyPair.generate(DHParams.tiny_test(), DeterministicSource(5), counter)
    assert counter.total == 0
    assert global_counter().total == before


def test_validate_leaves_counters_untouched():
    from repro.crypto.counters import global_counter

    before = global_counter().total
    DHParams.tiny_test().validate()
    assert global_counter().total == before


def test_random_exponent_in_range():
    params = DHParams.tiny_test()
    source = DeterministicSource(3)
    for _ in range(50):
        exponent = params.random_exponent(source)
        assert 2 <= exponent <= params.q - 1


# -- counters -------------------------------------------------------------------


def test_counter_records_labels():
    counter = ExpCounter()
    counter.record("a")
    counter.record("a")
    counter.record("b", count=3)
    assert counter.total == 5
    assert counter.get("a") == 2
    assert counter.get("b") == 3
    assert counter.get("missing") == 0


def test_counter_reset():
    counter = ExpCounter()
    counter.record("x")
    counter.reset()
    assert counter.total == 0
    assert counter.snapshot() == {}


def test_counter_merge():
    a = ExpCounter()
    b = ExpCounter()
    a.record("x")
    b.record("x")
    b.record("y")
    a.merge(b)
    assert a.total == 3
    assert a.get("x") == 2
    assert a.get("y") == 1


def test_counter_window_measures_delta():
    counter = ExpCounter()
    counter.record("before")
    with counter.window() as window:
        counter.record("inside")
        counter.record("inside")
    assert window.total == 2
    assert window.by_label == {"inside": 2}
    assert counter.total == 3


def test_mod_exp_counts_on_given_counter():
    counter = ExpCounter()
    result = mod_exp(2, 10, 1000, counter=counter, label="test")
    assert result == 24
    assert counter.get("test") == 1


def test_mod_exp_falls_back_to_global_counter():
    before = global_counter().total
    mod_exp(2, 2, 100)
    assert global_counter().total == before + 1


def test_mod_exp_rejects_bad_modulus():
    with pytest.raises(ParameterError):
        mod_exp(2, 2, 0)


def test_params_exp_counts():
    params = DHParams.tiny_test()
    counter = ExpCounter()
    params.exp(params.g, 5, counter, label="session_key")
    assert counter.get("session_key") == 1


# -- bigint helpers ---------------------------------------------------------------


def test_mod_inverse():
    assert mod_inverse(3, 7) == 5
    assert (3 * mod_inverse(3, 1019)) % 1019 == 1


def test_mod_inverse_not_coprime_raises():
    with pytest.raises(ParameterError):
        mod_inverse(6, 9)


def test_mod_inverse_bad_modulus():
    with pytest.raises(ParameterError):
        mod_inverse(3, 0)


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=0, max_value=2 ** 128))
def test_int_bytes_roundtrip(value):
    assert bytes_to_int(int_to_bytes(value)) == value


def test_int_to_bytes_fixed_length():
    assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"


def test_int_to_bytes_rejects_negative():
    with pytest.raises(ParameterError):
        int_to_bytes(-1)


# -- KDF -----------------------------------------------------------------------------


def test_kdf_deterministic():
    a = derive_keys(123456789, "group", 1)
    b = derive_keys(123456789, "group", 1)
    assert a == b


def test_kdf_separates_epochs():
    a = derive_keys(123456789, "group", 1)
    b = derive_keys(123456789, "group", 2)
    assert a.encryption_key != b.encryption_key
    assert a.mac_key != b.mac_key


def test_kdf_separates_groups():
    a = derive_keys(123456789, "group-a", 1)
    b = derive_keys(123456789, "group-b", 1)
    assert a.encryption_key != b.encryption_key


def test_kdf_separates_enc_and_mac():
    keys = derive_keys(42, "g", 0)
    assert keys.encryption_key != keys.mac_key[: len(keys.encryption_key)]


def test_kdf_key_sizes():
    keys = derive_keys(42, "g", 0)
    assert len(keys.encryption_key) == 16
    assert len(keys.mac_key) == 20


def test_kdf_fingerprint_stable_and_short():
    keys = derive_keys(42, "g", 0)
    assert keys.fingerprint() == derive_keys(42, "g", 0).fingerprint()
    assert len(keys.fingerprint()) == 8


@settings(max_examples=25, deadline=None)
@given(secret=st.integers(min_value=1, max_value=2 ** 512))
def test_kdf_distinct_secrets_distinct_keys(secret):
    a = derive_keys(secret, "g", 0)
    b = derive_keys(secret + 1, "g", 0)
    assert a.encryption_key != b.encryption_key


def test_rfc3526_group14_params_validate():
    params = DHParams.rfc3526_group14()
    params.validate()
    assert params.bits == 2048


def test_small_test_params_validate():
    params = DHParams.small_test()
    params.validate()
    assert params.bits == 64


def test_two_party_agreement_across_all_fixed_groups():
    for params in (
        DHParams.tiny_test(),
        DHParams.small_test(),
        DHParams.paper_512(),
    ):
        source = DeterministicSource(11)
        alice = DHKeyPair.generate(params, source)
        bob = DHKeyPair.generate(params, source)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
