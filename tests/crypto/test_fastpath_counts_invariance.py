"""The control-plane fast path must be invisible to the paper's tables.

Runs whole paper-512 join / controller-leave operations with the
fixed-base backend on and off and asserts byte-identical per-member
exponentiation counters, equal group secrets, and agreement with the
analytic Table 2-4 formulas — i.e. the tables regenerate identically
whichever backend computed them.
"""

from __future__ import annotations

import pytest

from repro.bench.expcount import table4
from repro.bench.testbed import ProtocolGroup
from repro.crypto import fixed_base
from repro.crypto.dh import DHParams

N = 5  # small enough for tier-1 speed, large enough to exercise batches


def _run_join(protocol: str):
    """Counters and secret of a join reaching N members at paper-512."""
    group = ProtocolGroup(protocol, params=DHParams.paper_512(), seed=11)
    group.grow_to(N - 1)
    controller = group.key_controller
    with group.counter_of(controller).window() as ctrl_win:
        joiner = group.join()
    snapshots = {
        name: group.counter_of(name).snapshot() for name in group.members
    }
    secret = group.contexts[group.members[0]].secret()
    assert group.secrets_agree()
    return ctrl_win.snapshot(), group.counter_of(joiner).snapshot(), snapshots, secret


def _run_controller_leave(protocol: str):
    group = ProtocolGroup(protocol, params=DHParams.paper_512(), seed=12)
    group.grow_to(N)
    leaver = group.key_controller
    performer = group.members[-2] if protocol == "cliques" else group.members[1]
    with group.counter_of(performer).window() as window:
        group.leave(leaver)
    assert group.secrets_agree()
    return window.snapshot(), {
        name: group.counter_of(name).snapshot() for name in group.members
    }


@pytest.mark.parametrize("protocol", ["cliques", "ckd"])
def test_join_counts_and_secret_identical_fast_on_off(protocol):
    with fixed_base.fast_backend(True):
        fast = _run_join(protocol)
    with fixed_base.fast_backend(False):
        ref = _run_join(protocol)
    assert fast == ref


@pytest.mark.parametrize("protocol", ["cliques", "ckd"])
def test_controller_leave_counts_identical_fast_on_off(protocol):
    with fixed_base.fast_backend(True):
        fast = _run_controller_leave(protocol)
    with fixed_base.fast_backend(False):
        ref = _run_controller_leave(protocol)
    assert fast == ref


@pytest.mark.parametrize("enabled", [True, False])
def test_totals_match_the_paper_formulas_on_both_backends(enabled):
    paper = table4(N)
    with fixed_base.fast_backend(enabled):
        for protocol, label in (("cliques", "Cliques"), ("ckd", "CKD")):
            ctrl, joiner, _, _ = _run_join(protocol)
            join_total = sum(ctrl.values()) + sum(joiner.values())
            assert join_total == paper[label]["Join"]
            leave_window, _ = _run_controller_leave(protocol)
            leave_total = sum(leave_window.values()) - leave_window.get(
                "controller_hello", 0
            )
            assert leave_total == paper[label]["Controller leaves"]
