"""SHA-1, HMAC, CBC mode and padding tests (verified against stdlib)."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blowfish import BLOCK_SIZE, Blowfish
from repro.crypto.hmac_mac import hmac_digest, hmac_verify
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.crypto.random_source import DeterministicSource
from repro.crypto.sha1 import SHA1, sha1
from repro.errors import CipherError


# -- SHA-1 ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "message",
    [b"", b"abc", b"a" * 55, b"a" * 56, b"a" * 63, b"a" * 64, b"a" * 65, b"x" * 1000],
)
def test_sha1_matches_hashlib(message):
    assert sha1(message) == hashlib.sha1(message).digest()


def test_sha1_known_answer():
    assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"


def test_sha1_incremental_equals_oneshot():
    h = SHA1()
    h.update(b"hello ")
    h.update(b"world")
    assert h.digest() == sha1(b"hello world")


def test_sha1_digest_does_not_consume():
    h = SHA1(b"data")
    first = h.digest()
    second = h.digest()
    assert first == second
    h.update(b"more")
    assert h.digest() == sha1(b"datamore")


@settings(max_examples=50, deadline=None)
@given(message=st.binary(max_size=300))
def test_sha1_property_matches_hashlib(message):
    assert sha1(message) == hashlib.sha1(message).digest()


@settings(max_examples=20, deadline=None)
@given(parts=st.lists(st.binary(max_size=100), max_size=6))
def test_sha1_chunking_invariance(parts):
    h = SHA1()
    for part in parts:
        h.update(part)
    assert h.digest() == sha1(b"".join(parts))


# -- HMAC -----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=1, max_size=120), message=st.binary(max_size=200))
def test_hmac_matches_stdlib(key, message):
    expected = stdlib_hmac.new(key, message, hashlib.sha1).digest()
    assert hmac_digest(key, message) == expected


def test_hmac_verify_accepts_good_tag():
    tag = hmac_digest(b"k", b"m")
    assert hmac_verify(b"k", b"m", tag)


def test_hmac_verify_rejects_bad_tag():
    tag = bytearray(hmac_digest(b"k", b"m"))
    tag[0] ^= 0x01
    assert not hmac_verify(b"k", b"m", bytes(tag))


def test_hmac_verify_rejects_wrong_key():
    tag = hmac_digest(b"k1", b"m")
    assert not hmac_verify(b"k2", b"m", tag)


# -- Padding -----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=100))
def test_pkcs7_roundtrip(data):
    padded = pkcs7_pad(data)
    assert len(padded) % BLOCK_SIZE == 0
    assert pkcs7_unpad(padded) == data


def test_pkcs7_always_adds_padding():
    assert len(pkcs7_pad(b"x" * BLOCK_SIZE)) == 2 * BLOCK_SIZE


def test_pkcs7_unpad_rejects_bad_length_byte():
    with pytest.raises(CipherError):
        pkcs7_unpad(b"\x00" * BLOCK_SIZE)
    with pytest.raises(CipherError):
        pkcs7_unpad(b"\x07" * 7 + b"\x09")  # 9 > block size? length 8, byte 9


def test_pkcs7_unpad_rejects_inconsistent_padding():
    with pytest.raises(CipherError):
        pkcs7_unpad(b"abcd\x01\x02\x03\x04")


def test_pkcs7_unpad_rejects_unaligned():
    with pytest.raises(CipherError):
        pkcs7_unpad(b"abc")


# -- CBC ---------------------------------------------------------------------------


def test_cbc_roundtrip():
    cipher = Blowfish(b"groupkey")
    ct = cbc_encrypt(cipher, b"attack at dawn", DeterministicSource(1))
    assert cbc_decrypt(cipher, ct) == b"attack at dawn"


def test_cbc_fresh_iv_randomizes_ciphertext():
    cipher = Blowfish(b"groupkey")
    source = DeterministicSource(2)
    a = cbc_encrypt(cipher, b"same message", source)
    b = cbc_encrypt(cipher, b"same message", source)
    assert a != b


def test_cbc_explicit_iv_is_deterministic():
    cipher = Blowfish(b"groupkey")
    iv = b"\x01" * BLOCK_SIZE
    assert cbc_encrypt(cipher, b"m", iv=iv) == cbc_encrypt(cipher, b"m", iv=iv)


def test_cbc_wrong_iv_size_raises():
    cipher = Blowfish(b"groupkey")
    with pytest.raises(CipherError):
        cbc_encrypt(cipher, b"m", iv=b"short")


def test_cbc_decrypt_rejects_truncated():
    cipher = Blowfish(b"groupkey")
    with pytest.raises(CipherError):
        cbc_decrypt(cipher, b"\x00" * BLOCK_SIZE)  # only an IV, no blocks


def test_cbc_wrong_key_fails_padding_or_garbage():
    good = Blowfish(b"goodkey1")
    bad = Blowfish(b"badkey22")
    ct = cbc_encrypt(good, b"secret payload", DeterministicSource(3))
    try:
        plaintext = cbc_decrypt(bad, ct)
    except CipherError:
        return  # padding check caught it
    assert plaintext != b"secret payload"


@settings(max_examples=25, deadline=None)
@given(message=st.binary(max_size=256), key=st.binary(min_size=8, max_size=32))
def test_cbc_roundtrip_property(message, key):
    cipher = Blowfish(key)
    ct = cbc_encrypt(cipher, message, DeterministicSource(4))
    assert cbc_decrypt(cipher, ct) == message


def test_cbc_empty_message_roundtrip():
    cipher = Blowfish(b"groupkey")
    ct = cbc_encrypt(cipher, b"", DeterministicSource(5))
    assert cbc_decrypt(cipher, ct) == b""
