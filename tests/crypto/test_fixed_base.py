"""Fixed-base exponentiation tables: agreement with ``pow``, cache
behaviour, and the ``mod_exp`` backend routing."""

from __future__ import annotations

import random

import pytest

from repro.crypto import fixed_base
from repro.crypto.bigint import mod_exp
from repro.crypto.counters import ExpCounter
from repro.crypto.dh import DHParams
from repro.crypto.fixed_base import (
    CombTable,
    FixedBaseCache,
    GENERATOR_PROFILE,
    MIN_MODULUS_BITS,
    RadixTable,
    build_table,
)

P512 = DHParams.paper_512()


def edge_exponents(params: DHParams):
    """The satellite's edge cases plus widths around the table capacity."""
    return [
        0,
        1,
        2,
        params.q - 1,
        params.q,
        params.p - 1,
        (1 << (params.bits - 1)) - 1,
        1 << (params.bits - 2),
    ]


@pytest.mark.parametrize("table_cls", [CombTable, RadixTable])
def test_tables_agree_with_pow_on_random_exponents(table_cls):
    rng = random.Random(0xF1CED)
    table = table_cls(P512.g, P512.p)
    for _ in range(40):
        e = rng.randrange(0, P512.q)
        assert table.pow(e) == pow(P512.g, e, P512.p)


@pytest.mark.parametrize("table_cls", [CombTable, RadixTable])
def test_tables_agree_with_pow_on_edge_exponents(table_cls):
    base = pow(P512.g, 0xBEEF, P512.p)
    table = table_cls(base, P512.p)
    for e in edge_exponents(P512):
        assert table.pow(e) == pow(base, e, P512.p), e


@pytest.mark.parametrize("table_cls", [CombTable, RadixTable])
def test_tables_handle_non_generator_bases(table_cls):
    rng = random.Random(7)
    for _ in range(3):
        base = rng.randrange(2, P512.p)
        table = table_cls(base, P512.p)
        e = rng.randrange(0, P512.q)
        assert table.pow(e) == pow(base, e, P512.p)


def test_build_table_profiles():
    # Generators of moderate groups get the no-squaring radix table...
    assert isinstance(build_table(P512.g, P512.p, GENERATOR_PROFILE), RadixTable)
    # ...but past RADIX_MAX_BITS construction cost forces the comb shape.
    big = DHParams.rfc3526_group14()
    assert isinstance(build_table(big.g, big.p, GENERATOR_PROFILE), CombTable)
    assert isinstance(build_table(P512.g, P512.p), CombTable)


def test_capacity_matches_modulus_width():
    table = CombTable(3, P512.p)
    assert table.capacity_bits >= P512.bits
    # An exponent wider than the table is the caller's fallback case.
    assert fixed_base.fast_pow(3, 1 << (table.capacity_bits + 1), P512.p) is None


# -- the cache ---------------------------------------------------------------


def test_registered_generator_builds_on_first_lookup():
    cache = FixedBaseCache()
    cache.register(P512.g, P512.p)
    assert cache.stats()["size"] == 0
    table = cache.lookup(P512.g, P512.p)
    assert isinstance(table, RadixTable)
    assert cache.stats()["builds"] == 1
    assert cache.lookup(P512.g, P512.p) is table
    assert cache.stats()["hits"] == 1


def test_unknown_base_promoted_after_repeat_sightings():
    cache = FixedBaseCache(promote_after=3)
    base = pow(P512.g, 1234, P512.p)
    assert cache.lookup(base, P512.p) is None
    assert cache.lookup(base, P512.p) is None
    table = cache.lookup(base, P512.p)  # third sighting: earns a table
    assert isinstance(table, CombTable)
    assert table.pow(5) == pow(base, 5, P512.p)


def test_cache_evicts_least_recently_used():
    cache = FixedBaseCache(maxsize=2)
    bases = [pow(P512.g, k, P512.p) for k in (2, 3, 4)]
    for base in bases:
        cache.precompute(base, P512.p)
    stats = cache.stats()
    assert stats["size"] == 2
    assert stats["evictions"] == 1
    assert (bases[0], P512.p) not in cache
    assert (bases[2], P512.p) in cache


def test_invalidate_and_clear():
    cache = FixedBaseCache()
    base = pow(P512.g, 77, P512.p)
    cache.precompute(base, P512.p)
    assert cache.invalidate(base, P512.p)
    assert not cache.invalidate(base, P512.p)
    cache.register(P512.g, P512.p)
    cache.lookup(P512.g, P512.p)
    cache.clear()
    assert cache.stats()["size"] == 0
    # Registration survives a clear: the generator rebuilds on demand.
    assert cache.lookup(P512.g, P512.p) is not None


# -- mod_exp routing ---------------------------------------------------------


def test_mod_exp_agrees_with_pow_through_the_fast_backend():
    rng = random.Random(0x5EED)
    for e in edge_exponents(P512) + [rng.randrange(0, P512.q) for _ in range(10)]:
        with fixed_base.fast_backend(True):
            fast = mod_exp(P512.g, e, P512.p)
        with fixed_base.fast_backend(False):
            ref = mod_exp(P512.g, e, P512.p)
        assert fast == ref == pow(P512.g, e, P512.p)


def test_mod_exp_reduces_out_of_range_bases():
    # The satellite regression: negative / >= modulus bases must agree
    # between backends (table keys are canonical reduced bases).
    for base in (-5, -P512.p - 3, P512.p + 12345, 2 * P512.p + 7):
        for enabled in (True, False):
            with fixed_base.fast_backend(enabled):
                assert mod_exp(base, 4321, P512.p) == pow(base, 4321, P512.p)


def test_mod_exp_counted_false_records_nothing():
    counter = ExpCounter()
    result = mod_exp(P512.g, 99, P512.p, counter=counter, counted=False)
    assert result == pow(P512.g, 99, P512.p)
    assert counter.total == 0
    mod_exp(P512.g, 99, P512.p, counter=counter, label="x")
    assert counter.snapshot() == {"x": 1}


def test_small_moduli_bypass_the_table_machinery():
    tiny = DHParams.tiny_test()
    assert tiny.bits < MIN_MODULUS_BITS
    assert fixed_base.fast_pow(tiny.g, 500, tiny.p) is None
    assert mod_exp(tiny.g, 500, tiny.p) == pow(tiny.g, 500, tiny.p)


def test_negative_exponent_falls_back_to_pow():
    with fixed_base.fast_backend(True):
        assert mod_exp(P512.g, -3, P512.p) == pow(P512.g, -3, P512.p)


def test_backend_switch_and_context_manager():
    assert fixed_base.fast_backend_enabled()
    with fixed_base.fast_backend(False):
        assert not fixed_base.fast_backend_enabled()
        assert fixed_base.fast_pow(P512.g, 5, P512.p) is None
    assert fixed_base.fast_backend_enabled()
