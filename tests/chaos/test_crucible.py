"""The crucible end to end: seeded runs hold every invariant, replay is
byte-identical, and the ddmin shrinker minimizes failing schedules."""

import json

import pytest

from repro.chaos.crucible import _is_repair, soak
from repro.chaos.harness import MODULES, generate_churn, generate_schedule, run_chaos
from repro.chaos.shrink import shrink_schedule
from repro.net.fault import FaultSchedule
from repro.net.link import LinkModel
from repro.sim.rng import DeterministicRng


# -- seeded runs ------------------------------------------------------------------


@pytest.mark.parametrize("module", MODULES)
def test_quick_chaos_run_holds_invariants(module):
    result = run_chaos(5, module, quick=True)
    assert result.ok, result.violations
    # The storm actually stormed: faults fired and the HMAC layer saw
    # (and rejected) corrupted traffic, yet nothing reached the app.
    assert result.stats["fault.fire"] > 0
    assert result.stats["net.corrupt"] > 0


def test_same_seed_replays_to_identical_trace():
    first = run_chaos(2, "cliques", quick=True)
    second = run_chaos(2, "cliques", quick=True)
    assert first.fingerprint == second.fingerprint
    assert first.schedule == second.schedule
    assert first.stats == second.stats


def test_different_seeds_diverge():
    first = run_chaos(2, "cliques", quick=True)
    second = run_chaos(3, "cliques", quick=True)
    assert first.fingerprint != second.fingerprint


def test_explicit_schedule_overrides_generated_one():
    quiet = FaultSchedule()  # no faults at all
    result = run_chaos(2, "cliques", quick=True, schedule=quiet, churn=[])
    assert result.ok
    assert result.stats["fault.fire"] == 0
    assert result.stats["secure.data"] > 0  # traffic still flowed


def test_soak_document_shape():
    document = soak([4], ["ckd"], quick=True, progress=False)
    assert document["summary"]["runs"] == 1
    assert document["summary"]["passed"] == 1
    assert document["summary"]["per_module"]["ckd"]["passed"] == 1
    run = document["runs"][0]
    assert run["seed"] == 4 and run["module"] == "ckd"
    json.dumps(document)  # JSON-serializable end to end


# -- schedule generation ----------------------------------------------------------


def test_generated_schedule_is_self_repairing():
    rng = DeterministicRng(99, label="chaos")
    schedule = generate_schedule(
        rng.child("schedule"), 1.0, 9.0, daemons=["d0", "d1", "d2", "d3"]
    )
    kinds = [a.kind for a in schedule.actions]
    # Opens adversarial, closes clean.
    links = [a for a in schedule.actions if a.kind == "set_link"]
    assert links[0].link.adversarial and not links[-1].link.adversarial
    # The final repair block runs at the window end.
    tail = [a for a in schedule.actions if a.at == 9.0]
    assert {a.kind for a in tail} == {"resume", "restore", "heal", "set_link"}
    # Crash faults only ever target the spare daemon.
    for action in schedule.actions:
        if action.kind == "crash":
            assert action.targets == ("d3",)
    assert kinds == [a.kind for a in sorted(schedule.actions, key=lambda a: a.at)]


def test_generated_churn_stays_inside_window():
    rng = DeterministicRng(5, label="chaos")
    plan = generate_churn(rng.child("churn"), 1.0, 9.0)
    for op in plan:
        assert 1.0 < op.at < 9.0
    joins = [op for op in plan if op.op == "join"]
    leaves = [op for op in plan if op.op == "leave"]
    if leaves:
        assert joins and leaves[0].at > joins[0].at


# -- the shrinker -----------------------------------------------------------------


def minimal_predicate(culprit_kinds):
    """Failing iff the candidate still contains every culprit kind."""

    def failing(schedule: FaultSchedule) -> bool:
        kinds = {a.kind for a in schedule.actions}
        return culprit_kinds <= kinds

    return failing


def test_shrinker_reduces_to_the_culprits():
    schedule = (
        FaultSchedule()
        .set_link(0.0, LinkModel.chaotic())
        .stall(1.0, "d1")
        .partition(2.0, [["d0"], ["d1", "d2"]])
        .crash(3.0, "d3")
        .resume(4.0, "d1")
        .recover(5.0, "d3")
        .heal(6.0)
        .set_link(6.0, LinkModel.ethernet_100base_t())
    )
    failing = minimal_predicate({"partition", "crash"})
    minimal = shrink_schedule(schedule, failing, keep=_is_repair)
    shrunk_kinds = [a.kind for a in minimal.actions if not _is_repair(a)]
    # 1-minimal: exactly the two culprit actions survive (plus repairs).
    assert sorted(shrunk_kinds) == ["crash", "partition"]
    repair_kinds = {a.kind for a in minimal.actions if _is_repair(a)}
    assert {"resume", "recover", "heal"} <= repair_kinds


def test_shrinker_single_culprit():
    schedule = (
        FaultSchedule()
        .stall(1.0, "d1")
        .sever(2.0, ["d0"], ["d1"])
        .stall(3.0, "d2")
        .restore(4.0)
        .resume(5.0, "d1", "d2")
    )
    minimal = shrink_schedule(
        schedule, minimal_predicate({"sever"}), keep=_is_repair
    )
    culprits = [a for a in minimal.actions if not _is_repair(a)]
    assert [a.kind for a in culprits] == ["sever"]


def test_shrinker_rejects_non_failing_schedule():
    schedule = FaultSchedule().stall(1.0, "d1")
    with pytest.raises(ValueError):
        shrink_schedule(schedule, lambda s: False)


def test_shrinker_respects_run_budget():
    schedule = FaultSchedule()
    for i in range(16):
        schedule.stall(float(i), f"d{i % 4}")
    calls = {"n": 0}

    def failing(candidate: FaultSchedule) -> bool:
        calls["n"] += 1
        return len(candidate.actions) >= 1

    shrink_schedule(schedule, failing, max_runs=10)
    assert calls["n"] <= 10


def test_shrinker_keeps_candidate_schedules_time_sorted():
    """Every candidate the predicate sees must be a valid schedule:
    actions in time order, repairs retained."""
    schedule = (
        FaultSchedule()
        .stall(1.0, "d1")
        .partition(2.0, [["d0"], ["d1"]])
        .heal(3.0)
        .resume(4.0, "d1")
    )
    seen = []

    def failing(candidate: FaultSchedule) -> bool:
        seen.append([a.at for a in candidate.actions])
        return any(a.kind == "partition" for a in candidate.actions)

    shrink_schedule(schedule, failing, keep=_is_repair)
    for times in seen:
        assert times == sorted(times)


# -- shrinking an injected regression, end to end ---------------------------------


def test_shrinker_on_injected_regression():
    """Plant a 'regression': a schedule that never repairs its sever.

    The convergence invariant fails; the shrinker must strip the noise
    (stalls, crash) and keep the unrepaired sever that causes it.
    """
    base = run_chaos(2, "cliques", quick=True)  # healthy baseline
    assert base.ok
    start = 2.0
    broken = (
        FaultSchedule()
        .stall(start + 0.2, "d3")
        .crash(start + 0.4, "d3")
        .sever(start + 0.6, ["d0"], ["d1", "d2"])  # never restored
        .recover(start + 1.0, "d3")
        .resume(start + 1.2, "d3")
    )

    def failing(candidate: FaultSchedule) -> bool:
        return not run_chaos(
            2, "cliques", quick=True, schedule=candidate, churn=[]
        ).ok

    assert failing(broken), "the injected regression must reproduce"
    minimal = shrink_schedule(broken, failing, keep=_is_repair, max_runs=30)
    kinds = [a.kind for a in minimal.actions if not _is_repair(a)]
    assert kinds == ["sever"]
