"""The transport crucible's contracts: seeded determinism and the
empty-schedule acceptance bar.

Determinism is schedule-level (wall-clock byte timing varies run to
run): the full fault sequence — kinds, times, targets, shape values —
derives purely from the seed.  And with *no* schedule armed, the whole
netem layer must be an invisible wire: a clean run with zero injected
faults and every invariant green.
"""

import pytest

from repro.chaos.transport_crucible import (
    MODULES,
    generate_wan_schedule,
    run_transport_chaos,
)
from repro.sim.rng import DeterministicRng
from repro.transport.netem import NetemSchedule


def wan(seed, windows=4):
    return generate_wan_schedule(
        DeterministicRng(seed, label="wan"),
        start=1.0,
        end=8.0,
        daemons=("d0", "d1", "d2"),
        members=("m0", "m1", "m2"),
        windows=windows,
    )


def test_same_seed_generates_the_identical_schedule():
    assert wan(0).describe() == wan(0).describe()
    assert wan(17).describe() == wan(17).describe()


def test_different_seeds_generate_different_schedules():
    assert wan(0).describe() != wan(1).describe()


def test_schedule_times_stay_inside_the_window():
    for seed in range(5):
        schedule = wan(seed)
        times = [action.at for action in schedule.actions]
        assert times, "a WAN schedule is never empty"
        assert min(times) >= 1.0
        assert max(times) <= 8.0
        # Self-repairing: the last actions restore clean pass-through.
        assert schedule.describe()[-1].startswith("t=8.0")


def test_crucible_modules_are_the_paper_triple():
    assert MODULES == ("cliques", "ckd", "tgdh")


def _run(seed, module, **kwargs):
    try:
        return run_transport_chaos(seed, module, quick=True, **kwargs)
    except OSError as exc:  # pragma: no cover - sandboxed platforms
        pytest.skip(f"loopback sockets unavailable: {exc}")


def test_empty_schedule_run_is_clean_with_zero_faults():
    result = _run(0, "cliques", schedule=NetemSchedule())
    assert result.ok, result.violations
    assert result.violations == []
    # The netem layer proxied every wire yet injected nothing.
    faults = (
        result.netem["faults_loss"]
        + result.netem["faults_corrupt"]
        + result.netem["faults_truncate"]
        + result.netem["conn_resets"]
        + result.netem["blackholed_bytes"]
    )
    assert faults == 0
    assert result.netem["bytes_fwd"] > 0  # traffic really crossed it
    assert result.traffic_sent > 0


def _relative_actions(schedule):
    """The fault sequence with the live-clock anchor factored out."""
    anchor = min(action.at for action in schedule.actions)
    return [
        (
            round(action.at - anchor, 6),
            action.kind,
            action.links,
            action.direction,
            action.fields,
        )
        for action in sorted(
            schedule.actions, key=lambda a: (a.at, a.kind)
        )
    ]


def test_seeded_quick_run_holds_invariants_and_replays_schedule():
    result = _run(3, "cliques")
    assert result.ok, result.violations
    # The armed schedule derives purely from the seed — absolute times
    # are anchored to the live clock at arm time, but the fault
    # sequence (kinds, offsets, targets, shape values) replays exactly.
    replay = _run(3, "cliques")
    assert _relative_actions(replay.schedule_obj) == _relative_actions(
        result.schedule_obj
    )
    assert replay.ok, replay.violations
