"""Chaos-fingerprint equivalence: packing must not change delivery order.

The acceptance property for sender-side coalescing: on a deterministic
link, a chaos-crucible run (partition, stall, crash/recover) with
packing on produces byte-identical per-daemon delivery-order
fingerprints to the same run with packing off — for every key-agreement
module.  ``repro.bench.dataplane`` gates its A/B on the same helper;
these tests pin the property in the tier-1 suite with a shorter window.
"""

from __future__ import annotations

import pytest

from repro.bench.dataplane import DETERMINISTIC_LINK, _run_ab_side
from repro.chaos.invariants import delivery_fingerprint
from repro.sim.trace import TraceEvent


@pytest.mark.parametrize("module", ["cliques", "ckd", "tgdh"])
def test_packed_crucible_fingerprint_matches_unpacked(module):
    off_fp, off_fail, _ = _run_ab_side(
        seed=0, module=module, packing=False, span=1.2
    )
    on_fp, on_fail, attribution = _run_ab_side(
        seed=0, module=module, packing=True, span=1.2
    )
    assert off_fail is None, off_fail
    assert on_fail is None, on_fail
    assert on_fp == off_fp
    # The equal fingerprints came from a run that actually packed.
    assert attribution["packed_datagrams"] > 0
    assert attribution["packed_messages"] > attribution["packed_datagrams"]


def test_deterministic_link_draws_no_randomness():
    """The A/B comparison is only sound if the link model consumes no
    RNG per datagram (loss/jitter/duplication draws would desynchronise
    the two runs the moment datagram counts differ)."""
    link = DETERMINISTIC_LINK
    assert link.jitter == 0.0
    assert link.bandwidth is None
    for rate in (link.loss_rate, link.duplicate_rate, link.corrupt_rate,
                 link.reorder_rate, link.spike_rate):
        assert rate == 0.0


def test_delivery_fingerprint_ignores_cross_daemon_interleaving():
    """The fingerprint hashes each daemon's deliver stream separately,
    so a global-trace shuffle that keeps per-daemon order is invisible —
    exactly the insensitivity the packed pipeline needs."""

    def event(me, seq):
        return TraceEvent(
            kind="daemon.deliver",
            fields={"me": me, "view": "v", "sender": "d0",
                    "seq": seq, "msg_kind": "app"},
        )

    interleaved = [event("d0", 1), event("d1", 1), event("d0", 2),
                   event("d1", 2)]
    grouped = [event("d0", 1), event("d0", 2), event("d1", 1),
               event("d1", 2)]
    reordered = [event("d0", 2), event("d0", 1), event("d1", 1),
                 event("d1", 2)]
    assert delivery_fingerprint(interleaved) == delivery_fingerprint(grouped)
    assert delivery_fingerprint(interleaved) != delivery_fingerprint(reordered)
