"""The invariant checker against hand-built traces: every checker must
flag its violation and stay silent on legitimate histories."""

from repro.chaos.invariants import (
    EndState,
    InvariantChecker,
    trace_fingerprint,
)
from repro.sim.trace import TraceEvent


def ev(kind, **fields):
    return TraceEvent(kind=kind, fields=fields)


def install(me, view):
    return ev("daemon.install", me=me, view=view)


def deliver(me, view, sender, seq):
    return ev("daemon.deliver", me=me, view=view, sender=sender, seq=seq,
              msg_kind="app")


# -- view synchrony ---------------------------------------------------------------


def test_view_synchrony_flags_different_sets_same_transit():
    trace = [
        install("d0", "v1"), install("d1", "v1"),
        deliver("d0", "v1", "d0", 1),  # d1 misses this one
        install("d0", "v2"), install("d1", "v2"),
    ]
    violations = InvariantChecker(trace).check_view_synchrony()
    assert len(violations) == 1
    assert violations[0].invariant == "view_synchrony"
    assert "d0" in violations[0].detail and "d1" in violations[0].detail


def test_view_synchrony_allows_divergence_across_partition():
    """Daemons that part ways (different successors) may deliver
    different suffixes — EVS promises same-set only to co-movers."""
    trace = [
        install("d0", "v1"), install("d1", "v1"),
        deliver("d0", "v1", "d0", 1),
        install("d0", "v2a"),  # d0 splits off
        install("d1", "v2b"),  # d1 goes the other way
    ]
    assert InvariantChecker(trace).check_view_synchrony() == []


def test_view_synchrony_exempts_crashed_daemon():
    trace = [
        install("d0", "v1"), install("d1", "v1"),
        deliver("d0", "v1", "d0", 1),
        ev("process.crash", name="d1"),
        install("d0", "v2"),
    ]
    assert InvariantChecker(trace).check_view_synchrony() == []


def test_view_synchrony_counts_flush_time_deliveries():
    """A delivery traced after the successor install (the flush of the
    old view's complement) still belongs to the old view's set."""
    trace = [
        install("d0", "v1"), install("d1", "v1"),
        deliver("d0", "v1", "d0", 1),
        install("d0", "v2"), install("d1", "v2"),
        deliver("d1", "v1", "d0", 1),  # flushed late, same set
    ]
    assert InvariantChecker(trace).check_view_synchrony() == []


def test_view_synchrony_final_views_compared_only_when_quiescent():
    trace = [
        install("d0", "v1"), install("d1", "v1"),
        deliver("d0", "v1", "d0", 1),
    ]
    # Mid-flight trace end: the delivery may simply not have happened yet.
    assert InvariantChecker(trace).check_view_synchrony(quiescent=False) == []
    # Quiescent trace end: nothing is in flight, the sets must agree.
    assert len(InvariantChecker(trace).check_view_synchrony(quiescent=True)) == 1


# -- key agreement ----------------------------------------------------------------


def confirm(me, fingerprint, members=("m0", "m1")):
    return ev("secure.confirmed", me=me, group="g", view="v1", attempt=0,
              members=list(members), fingerprint=fingerprint)


def test_key_agreement_flags_fingerprint_mismatch():
    trace = [confirm("m0", "aaaa"), confirm("m1", "bbbb")]
    violations = InvariantChecker(trace).check_key_agreement()
    assert len(violations) == 1
    assert violations[0].invariant == "key_agreement"


def test_key_agreement_flags_member_set_disagreement():
    trace = [
        confirm("m0", "aaaa", members=("m0", "m1")),
        confirm("m1", "aaaa", members=("m0", "m1", "m2")),
    ]
    violations = InvariantChecker(trace).check_key_agreement()
    assert len(violations) == 1


def test_key_agreement_ok_when_identical():
    trace = [confirm("m0", "aaaa"), confirm("m1", "aaaa")]
    assert InvariantChecker(trace).check_key_agreement() == []


def test_key_agreement_separate_attempts_not_compared():
    trace = [
        ev("secure.confirmed", me="m0", group="g", view="v1", attempt=0,
           members=["m0"], fingerprint="aaaa"),
        ev("secure.confirmed", me="m1", group="g", view="v1", attempt=1,
           members=["m0"], fingerprint="bbbb"),
    ]
    assert InvariantChecker(trace).check_key_agreement() == []


# -- secrecy ----------------------------------------------------------------------


def test_secrecy_ok_for_matching_epoch():
    trace = [
        ev("secure.send", me="m0", group="g", epoch="e1", digest="d1"),
        ev("secure.data", me="m1", group="g", sender="m0", epoch="e1",
           digest="d1"),
    ]
    assert InvariantChecker(trace).check_secrecy() == []


def test_secrecy_flags_cross_epoch_open():
    trace = [
        ev("secure.send", me="m0", group="g", epoch="e1", digest="d1"),
        ev("secure.data", me="m1", group="g", sender="m0", epoch="e2",
           digest="d1"),
    ]
    violations = InvariantChecker(trace).check_secrecy()
    assert len(violations) == 1
    assert "cross-epoch" in violations[0].detail


def test_secrecy_flags_corruption_reaching_application():
    trace = [
        ev("secure.send", me="m0", group="g", epoch="e1", digest="d1"),
        ev("secure.data", me="m1", group="g", sender="m0", epoch="e1",
           digest="FLIPPED"),
    ]
    violations = InvariantChecker(trace).check_secrecy()
    assert len(violations) == 1
    assert "corruption" in violations[0].detail


# -- convergence ------------------------------------------------------------------


def good_end_state():
    return EndState(
        daemon_views={"d0": "v9", "d1": "v9"},
        member_keyed={"m0": True, "m1": True},
        member_fingerprints={"m0": "aaaa", "m1": "aaaa"},
        probes_expected=2,
        probes_received={"m0": 2, "m1": 2},
        converged=True,
    )


def test_convergence_ok():
    assert InvariantChecker([]).check_convergence(good_end_state()) == []


def test_convergence_flags_timeout():
    state = good_end_state()
    state.converged = False
    state.detail = "no quiescence"
    violations = InvariantChecker([]).check_convergence(state)
    assert [v.invariant for v in violations] == ["convergence"]


def test_convergence_flags_split_views_unkeyed_and_short_probes():
    state = good_end_state()
    state.daemon_views["d1"] = "v8"
    state.member_keyed["m1"] = False
    state.member_fingerprints["m1"] = "bbbb"
    state.probes_received["m0"] = 1
    violations = InvariantChecker([]).check_convergence(state)
    assert len(violations) == 4


# -- the full battery and stats ---------------------------------------------------


def test_run_collects_stats_and_reject_reasons():
    trace = [
        ev("net.corrupt", source="n0", destination="n1", payload_kind="bytes"),
        ev("secure.reject", me="m0", group="g", sender="m1",
           reason="mac_fail"),
        ev("secure.reject", me="m0", group="g", sender="m1",
           reason="stale_epoch"),
        ev("fault.fire", fault="heal", at=1.0, targets=[], components=[]),
    ]
    report = InvariantChecker(trace).run(good_end_state())
    assert report.ok
    assert report.stats["net.corrupt"] == 1
    assert report.stats["secure.reject"] == 2
    assert report.stats["secure.reject.mac_fail"] == 1
    assert report.stats["secure.reject.stale_epoch"] == 1
    assert report.stats["fault.fire"] == 1
    assert "all invariants hold" == report.summary()


def test_report_summary_names_broken_invariants():
    trace = [confirm("m0", "aaaa"), confirm("m1", "bbbb")]
    report = InvariantChecker(trace).run()
    assert not report.ok
    assert "key_agreement" in report.summary()


# -- fingerprints -----------------------------------------------------------------


def test_fingerprint_deterministic_and_order_sensitive():
    a = [ev("x", n=1), ev("y", n=2)]
    assert trace_fingerprint(a) == trace_fingerprint(list(a))
    assert trace_fingerprint(a) != trace_fingerprint(list(reversed(a)))


def test_fingerprint_ignores_kernel_events():
    base = [ev("x", n=1)]
    noisy = [ev("kernel.event", time=0.1, label="tick")] + base
    assert trace_fingerprint(base) == trace_fingerprint(noisy)
