"""Property-based robustness tests (hypothesis).

Three contracts the crucible depends on, stated as properties:

* per-sender FIFO survives duplication, reordering, delay spikes and
  payload corruption — order and count are exact, payload damage is at
  most the single flipped bit the link model injects;
* a corrupted sealed message never opens: the HMAC layer rejects it and
  the error carries no plaintext;
* ``FaultSchedule.describe()`` reports actions sorted by time no matter
  the insertion order.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import derive_keys
from repro.crypto.random_source import DeterministicSource
from repro.errors import IntegrityError
from repro.net.corrupt import corrupt_payload
from repro.net.fault import FaultSchedule
from repro.net.link import LinkModel
from repro.secure.dataprotect import DataProtector, SealedMessage
from repro.sim.rng import DeterministicRng
from repro.spread.events import DataEvent
from repro.types import ServiceType

from tests.spread.conftest import Cluster

#: High-rate adversarial link for the FIFO property: everything except
#: loss (loss is repaired by NACKs but lengthens runs unboundedly).
_ADVERSARIAL = LinkModel(
    base_latency=0.0005,
    duplicate_rate=0.3,
    reorder_rate=0.3,
    reorder_window=0.02,
    corrupt_rate=0.2,
    spike_rate=0.1,
    spike_delay=0.05,
)


def _payloads(client, group="g"):
    return [
        e.payload
        for e in client.queue
        if isinstance(e, DataEvent)
        and str(e.group) == group
        and isinstance(e.payload, bytes)
    ]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       count=st.integers(min_value=1, max_value=10))
def test_fifo_per_sender_under_duplication_reorder_and_corruption(seed, count):
    cluster = Cluster(daemon_count=2, seed=seed)
    cluster.settle()
    a = cluster.client("a", "d0")
    b = cluster.client("b", "d1")
    a.join("g")
    b.join("g")
    cluster.run(1.0)
    cluster.network.set_default_link(_ADVERSARIAL)
    # Each payload is 32 copies of its index byte: a single flipped bit
    # damages one byte, so the majority byte still identifies the send.
    for index in range(count):
        a.multicast(ServiceType.FIFO, "g", bytes([index]) * 32)
    cluster.run_until(lambda: len(_payloads(b)) >= count, timeout=120)
    received = _payloads(b)
    # Duplicates are absorbed by the pipeline: exactly one delivery each.
    assert len(received) == count
    identified = [Counter(p).most_common(1)[0][0] for p in received]
    assert identified == list(range(count))  # FIFO order, no gaps
    for index, payload in enumerate(received):
        damage = sum(
            bin(byte ^ index).count("1") for byte in payload
        )
        assert damage <= 1  # at most the link's single flipped bit


@settings(max_examples=50, deadline=None)
@given(plaintext=st.binary(min_size=0, max_size=200),
       seed=st.integers(min_value=0, max_value=10 ** 6))
def test_corrupted_sealed_message_never_opens(plaintext, seed):
    keys = derive_keys(0x5EC1E7, "g", epoch=1)
    protector = DataProtector(keys, epoch_label="g|v1|0")
    sealed = protector.seal("g", "#m0#d0", plaintext, DeterministicSource(seed))
    damaged = corrupt_payload(sealed, DeterministicRng(seed, label="corrupt"))
    # Byte-carrying payloads stay structurally valid (that is the threat:
    # damage must travel all the way to the MAC, not die in parsing)...
    assert isinstance(damaged, SealedMessage)
    assert (damaged.ciphertext, damaged.tag) != (sealed.ciphertext, sealed.tag)
    # ...and the MAC rejects it without leaking the plaintext.
    with pytest.raises(IntegrityError) as excinfo:
        protector.unseal(damaged)
    if len(plaintext) >= 4:
        assert plaintext not in str(excinfo.value).encode()
    # The pristine copy still opens: corruption never mutates the sender
    # side (retransmission buffers hold clean bits).
    assert protector.unseal(sealed) == plaintext


@settings(max_examples=50, deadline=None)
@given(times=st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=20,
))
def test_fault_schedule_describe_sorted_by_time(times):
    schedule = FaultSchedule()
    builders = (
        lambda t: schedule.stall(t, "d0"),
        lambda t: schedule.crash(t, "d1"),
        lambda t: schedule.heal(t),
        lambda t: schedule.partition(t, [["d0"], ["d1"]]),
        lambda t: schedule.sever(t, ["d0"], ["d1"]),
        lambda t: schedule.set_link(t, LinkModel.chaotic()),
    )
    for index, at in enumerate(times):
        builders[index % len(builders)](at)
    described = schedule.describe()
    assert len(described) == len(times)
    stamps = [float(line.split(":", 1)[0][2:]) for line in described]
    assert stamps == sorted(stamps)
    # describe() is an observation, not a mutation: insertion order of
    # the underlying actions is untouched.
    assert [a.at for a in schedule.actions] == times
