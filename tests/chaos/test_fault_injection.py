"""Adversarial fault kinds: arm-time validation, trace detail, and the
stall / sever semantics the crucible leans on."""

import pytest

from repro.errors import FaultError, ProcessError
from repro.net.corrupt import CorruptedDatagram, corrupt_payload
from repro.net.fault import FaultAction, FaultInjector, FaultSchedule
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.sim.process import FunctionProcess
from repro.sim.rng import DeterministicRng


from repro.sim.trace import Tracer


def make_net(n=3, seed=1):
    kernel = Kernel(seed=seed, tracer=Tracer())
    network = Network(kernel)
    nodes = []
    for i in range(n):
        node = FunctionProcess(kernel, f"n{i}")
        node.start()
        network.add_node(node)
        nodes.append(node)
    return kernel, network, nodes


def make_injector(n=3, seed=1):
    kernel, network, nodes = make_net(n, seed)
    injector = FaultInjector(kernel, network, {p.name: p for p in nodes})
    return kernel, network, nodes, injector


# -- arm-time validation ---------------------------------------------------------


def test_unknown_kind_raises_fault_error():
    kernel, __, ___, injector = make_injector()
    schedule = FaultSchedule(
        actions=[FaultAction(at=1.0, kind="meltdown", targets=("n0",))]
    )
    with pytest.raises(FaultError, match="meltdown"):
        injector.arm(schedule)


def test_unregistered_target_raises_fault_error_at_arm_time():
    kernel, __, ___, injector = make_injector()
    schedule = FaultSchedule().crash(1.0, "n7")
    with pytest.raises(FaultError, match="n7"):
        injector.arm(schedule)
    # Nothing was armed: the kernel runs out of work without firing.
    kernel.run(until=5.0)
    assert injector.fired == []


def test_half_bad_schedule_arms_nothing():
    """A schedule with one bad action must not half-execute: the good
    crash at t=1 never fires because validation rejects the whole
    schedule up front."""
    kernel, __, nodes, injector = make_injector()
    schedule = FaultSchedule().crash(1.0, "n0").stall(2.0, "ghost")
    with pytest.raises(FaultError):
        injector.arm(schedule)
    kernel.run(until=5.0)
    assert nodes[0].alive


def test_structurally_incomplete_actions_rejected():
    __, ___, ____, injector = make_injector()
    for bad in (
        FaultAction(at=1.0, kind="partition"),
        FaultAction(at=1.0, kind="sever", components=(("n0",),)),
        FaultAction(at=1.0, kind="set_link"),
    ):
        with pytest.raises(FaultError):
            injector.validate(FaultSchedule(actions=[bad]))


# -- fire-time tracing -----------------------------------------------------------


def test_partition_fire_trace_includes_components():
    kernel, network, __, injector = make_injector()
    schedule = FaultSchedule().partition(1.0, [["n0"], ["n1", "n2"]])
    injector.arm(schedule)
    kernel.run(until=2.0)
    fires = kernel.tracer.of_kind("fault.fire")
    assert len(fires) == 1
    assert fires[0]["fault"] == "partition"
    assert fires[0]["components"] == [["n0"], ["n1", "n2"]]
    assert not network.reachable("n0", "n1")


def test_sever_fire_trace_includes_direction():
    kernel, network, __, injector = make_injector()
    schedule = FaultSchedule().sever(1.0, ["n0"], ["n1"])
    injector.arm(schedule)
    kernel.run(until=2.0)
    fires = kernel.tracer.of_kind("fault.fire")
    assert fires[0]["components"] == [["n0"], ["n1"]]


# -- sever: one-way semantics ----------------------------------------------------


def test_sever_is_asymmetric():
    kernel, network, nodes, injector = make_injector()
    injector.arm(FaultSchedule().sever(0.5, ["n0"], ["n1"]))
    kernel.run(until=1.0)
    assert not network.reachable("n0", "n1")
    assert network.reachable("n1", "n0")  # reverse direction flows
    network.send("n0", "n1", b"into the void")
    network.send("n1", "n0", b"heard loud and clear")
    kernel.run(until=2.0)
    assert [p for __, p in nodes[1].inbox] == []
    assert [p for __, p in nodes[0].inbox] == [b"heard loud and clear"]
    assert kernel.tracer.count("net.drop_sever") == 1


def test_restore_repairs_severs_only():
    kernel, network, __, injector = make_injector()
    injector.arm(
        FaultSchedule()
        .sever(0.5, ["n0"], ["n1"])
        .partition(0.5, [["n2"]])
        .restore(1.0)
    )
    kernel.run(until=2.0)
    assert network.reachable("n0", "n1")  # sever repaired
    assert not network.reachable("n0", "n2")  # partition untouched


# -- stall / resume ---------------------------------------------------------------


def test_stalled_process_buffers_and_replays():
    kernel, network, nodes, injector = make_injector()
    injector.arm(FaultSchedule().stall(0.5, "n1").resume(2.0, "n1"))
    kernel.run(until=1.0)
    assert nodes[1].stalled
    network.send("n0", "n1", b"delivered late")
    kernel.run(until=1.5)
    assert [p for __, p in nodes[1].inbox] == []  # buffered, not lost
    kernel.run(until=3.0)
    assert [p for __, p in nodes[1].inbox] == [b"delivered late"]


def test_stalled_sender_holds_transmissions():
    kernel, network, nodes, injector = make_injector()
    injector.arm(FaultSchedule().stall(0.5, "n0").resume(2.0, "n0"))
    kernel.run(until=1.0)
    network.send("n0", "n1", b"deferred send")
    kernel.run(until=1.5)
    assert [p for __, p in nodes[1].inbox] == []
    kernel.run(until=3.0)
    assert [p for __, p in nodes[1].inbox] == [b"deferred send"]


def test_stall_resume_are_idempotent_and_recover_guards():
    kernel, __, nodes, injector = make_injector()
    node = nodes[0]
    node.stall()
    node.stall()  # no-op
    node.resume()
    node.resume()  # no-op
    assert node.alive and not node.stalled
    with pytest.raises(ProcessError):
        node.recover()  # recover is for crashed processes only


# -- adversarial link draws -------------------------------------------------------


def test_duplicate_rate_duplicates_datagrams():
    kernel, network, nodes, __ = make_injector()
    network.set_default_link(LinkModel(duplicate_rate=1.0))
    network.send("n0", "n1", b"twice")
    kernel.run(until=1.0)
    assert [p for __, p in nodes[1].inbox] == [b"twice", b"twice"]
    assert kernel.tracer.count("net.duplicate") == 1


def test_corrupt_rate_flips_byte_payloads():
    kernel, network, nodes, __ = make_injector()
    network.set_default_link(LinkModel(corrupt_rate=1.0))
    network.send("n0", "n1", b"pristine")
    kernel.run(until=1.0)
    (received,) = [p for __, p in nodes[1].inbox]
    assert received != b"pristine"
    assert len(received) == len(b"pristine")  # one bit flipped, not truncated
    assert kernel.tracer.count("net.corrupt") == 1


def test_corrupt_structured_payload_becomes_checksum_drop():
    class Hello:  # no byte fields to flip
        pass

    damaged = corrupt_payload(Hello(), DeterministicRng(7))
    assert isinstance(damaged, CorruptedDatagram)
    assert damaged.original_kind == "Hello"


def test_spike_rate_adds_delay():
    kernel, network, nodes, __ = make_injector()
    network.set_default_link(
        LinkModel(base_latency=0.001, spike_rate=1.0, spike_delay=0.5)
    )
    network.send("n0", "n1", b"slow boat")
    kernel.run(until=0.1)
    assert [p for __, p in nodes[1].inbox] == []
    kernel.run(until=1.0)
    assert [p for __, p in nodes[1].inbox] == [b"slow boat"]
