"""CKD exponentiation counts must match Tables 2, 3 and 4."""

import pytest

from tests.ckd.conftest import CKDTestGroup


def build_group(size: int) -> CKDTestGroup:
    group = CKDTestGroup()
    group.create("m0")
    for i in range(1, size):
        group.join(f"m{i}")
    return group


# -- Table 2: Join -----------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 5, 10, 15])
def test_join_controller_counts_match_table2(n):
    """CKD controller: 1 LTK + 1 pairwise + 1 session + (n-1) encrypt = n+2."""
    group = build_group(n - 1)
    with group.controller.counter.window() as during:
        group.join("joiner")
    assert during.get("long_term_key") == 1
    assert during.get("pairwise_key") == 1
    assert during.get("session_key") == 1
    assert during.get("encrypt_session_key") == n - 1
    assert during.total == n + 2


@pytest.mark.parametrize("n", [2, 3, 5, 10, 15])
def test_join_new_member_counts_match_table2(n):
    """CKD new member: 1 LTK + 1 pairwise + 1 encrypt-pairwise
    + 1 decrypt = 4, independent of group size."""
    group = build_group(n - 1)
    group.join("joiner")
    counter = group.contexts["joiner"].counter
    assert counter.get("long_term_key") == 1
    assert counter.get("pairwise_key") == 1
    assert counter.get("encrypt_pairwise") == 1
    assert counter.get("decrypt_session_key") == 1
    assert counter.total == 4


@pytest.mark.parametrize("n", [3, 5, 10])
def test_join_total_serial_matches_table4(n):
    """Table 4: CKD join total = (n+2) + 4 = n + 6."""
    group = build_group(n - 1)
    with group.controller.counter.window() as controller_window:
        group.join("joiner")
    joiner_total = group.contexts["joiner"].counter.total
    assert controller_window.total + joiner_total == n + 6


@pytest.mark.parametrize("n", [3, 5, 10])
def test_join_existing_member_single_decrypt(n):
    group = build_group(n - 1)
    bystander = group.contexts["m1"]
    with bystander.counter.window() as during:
        group.join("joiner")
    assert during.total == 1
    assert during.get("decrypt_session_key") == 1


# -- Table 3: Leave ------------------------------------------------------------------


@pytest.mark.parametrize("n", [3, 5, 10, 15])
def test_member_leave_counts_match_table3(n):
    """CKD leave: 1 session + (n-2) encrypt = n-1."""
    group = build_group(n)
    with group.controller.counter.window() as during:
        group.leave(group.members[-1])
    assert during.get("session_key") == 1
    assert during.get("encrypt_session_key") == n - 2
    assert during.total == n - 1


@pytest.mark.parametrize("n", [3, 5, 10, 15])
def test_controller_leave_counts_match_table3(n):
    """CKD controller-leave, new controller: (n-2) LTK + (n-2) pairwise
    + 1 session + (n-2) encrypt = 3n-5, plus 1 uncounted tenure-setup
    hello exponentiation."""
    group = build_group(n)
    new_controller = group.contexts[group.members[1]]
    with new_controller.counter.window() as during:
        group.leave(group.members[0])
    assert during.get("long_term_key") == n - 2
    assert during.get("pairwise_key") == n - 2
    assert during.get("session_key") == 1
    assert during.get("encrypt_session_key") == n - 2
    assert during.get("controller_hello") == 1
    # The paper's 3n-5 excludes the once-per-tenure hello.
    assert during.total - during.get("controller_hello") == 3 * n - 5


@pytest.mark.parametrize("n", [3, 5, 10])
def test_controller_leave_member_side_cost(n):
    """Remaining members each pay 1 LTK + 1 pairwise + 1 blind + 1 decrypt
    during a takeover (parallel, not in the tables); pinned."""
    group = build_group(n)
    bystander = group.contexts[group.members[2]]
    with bystander.counter.window() as during:
        group.leave(group.members[0])
    assert during.total == 4


@pytest.mark.parametrize("n", [3, 5, 10])
def test_leave_remaining_member_single_decrypt(n):
    group = build_group(n)
    bystander = group.contexts["m1"]
    with bystander.counter.window() as during:
        group.leave(group.members[-1])
    assert during.total == 1


# -- Refresh ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 4, 8])
def test_refresh_counts(n):
    group = build_group(n)
    with group.controller.counter.window() as during:
        group.refresh()
    assert during.get("session_key") == 1
    assert during.get("encrypt_session_key") == n - 1
    assert during.total == n
