"""Property-based tests: CKD invariants under random op sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import DHParams

from tests.ckd.conftest import CKDTestGroup


@settings(max_examples=25, deadline=None)
@given(
    operations=st.lists(
        st.sampled_from(["join", "leave", "leave_controller", "refresh"]),
        min_size=1,
        max_size=12,
    ),
    seed=st.integers(0, 2 ** 16),
)
def test_invariants_hold_under_random_operations(operations, seed):
    group = CKDTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("m0")
    counter = 1
    secrets_seen = {group.contexts["m0"].secret()}
    for operation in operations:
        if operation == "join":
            group.join(f"m{counter}")
            counter += 1
        elif operation == "leave":
            if len(group.members) < 2:
                continue
            group.leave(group.members[-1])
        elif operation == "leave_controller":
            if len(group.members) < 2:
                continue
            group.leave(group.members[0])
        elif operation == "refresh":
            group.refresh()
        secret = group.assert_agreement()
        group.assert_invariants()
        # Controller is always the oldest member.
        assert group.contexts[group.members[0]].is_controller
        # Key independence.
        assert secret not in secrets_seen
        secrets_seen.add(secret)


@settings(max_examples=15, deadline=None)
@given(
    churn=st.integers(min_value=1, max_value=6), seed=st.integers(0, 2 ** 16)
)
def test_controller_churn(churn, seed):
    """Repeatedly removing the controller walks the role down the join
    order without ever breaking agreement."""
    group = CKDTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("m0")
    for i in range(1, churn + 2):
        group.join(f"m{i}")
    for __ in range(churn):
        oldest = group.members[0]
        group.leave(oldest)
        group.assert_agreement()
        assert group.contexts[group.members[0]].is_controller


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_controller_holds_pairwise_key_per_member(seed):
    """Structural invariant: after any operation the controller has
    exactly one pairwise channel per non-controller member, and members
    that left have none."""
    group = CKDTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("m0")
    for i in range(1, 4):
        group.join(f"m{i}")
    group.leave("m2")
    group.assert_agreement()
    controller = group.controller
    expected = set(group.members[1:])
    assert set(controller._pairwise) == expected
