"""In-memory driver for a CKD group (mirrors tests/cliques/conftest.py)."""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.ckd.protocol import CKDContext
from repro.cliques.directory import KeyDirectory
from repro.crypto.counters import ExpCounter
from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.random_source import DeterministicSource
from repro.sim.rng import stable_seed


class CKDTestGroup:
    """Creates CKD contexts and runs whole operations to completion."""

    def __init__(self, params: DHParams = None, seed: int = 0) -> None:
        self.params = params if params is not None else DHParams.tiny_test()
        self.directory = KeyDirectory()
        self.contexts: Dict[str, CKDContext] = {}
        self.members: List[str] = []  # oldest first
        self.group_name = "ckd-group"
        self._seed = seed

    def make_context(self, name: str) -> CKDContext:
        source = DeterministicSource(stable_seed(self._seed, name))
        keypair = DHKeyPair.generate(self.params, source)
        self.directory.register(name, keypair.public)
        ctx = CKDContext(
            name=name,
            params=self.params,
            long_term=keypair,
            directory=self.directory,
            source=source,
            counter=ExpCounter(),
        )
        self.contexts[name] = ctx
        return ctx

    @property
    def controller(self) -> CKDContext:
        return self.contexts[self.members[0]]

    def create(self, first: str) -> None:
        ctx = self.make_context(first)
        ctx.create_first(self.group_name)
        self.members = [first]

    def join(self, new_member: str) -> None:
        joiner = self.make_context(new_member)
        hello = self.controller.start_join(new_member)
        response = joiner.process_hello(hello)
        keydist = self.controller.process_response(response)
        assert keydist is not None
        for name in self.members[1:] + [new_member]:
            self.contexts[name].process_keydist(keydist)
        self.members.append(new_member)

    def leave(self, *leaving: str) -> None:
        if self.members[0] in leaving:
            self._takeover(list(leaving))
            return
        keydist = self.controller.leave(list(leaving))
        remaining = [m for m in self.members if m not in leaving]
        for name in remaining[1:]:
            self.contexts[name].process_keydist(keydist)
        for name in leaving:
            del self.contexts[name]
        self.members = remaining

    def _takeover(self, leaving: List[str]) -> None:
        remaining = [m for m in self.members if m not in leaving]
        new_controller = self.contexts[remaining[0]]
        hello = new_controller.start_takeover(leaving)
        keydist = None
        for name in remaining[1:]:
            response = self.contexts[name].process_hello(hello)
            keydist = new_controller.process_response(response)
        if keydist is not None:
            for name in remaining[1:]:
                self.contexts[name].process_keydist(keydist)
        for name in leaving:
            del self.contexts[name]
        self.members = remaining

    def refresh(self) -> None:
        keydist = self.controller.refresh()
        for name in self.members[1:]:
            self.contexts[name].process_keydist(keydist)

    def secrets(self) -> List[int]:
        return [self.contexts[name].secret() for name in self.members]

    def assert_agreement(self) -> int:
        secrets = self.secrets()
        assert len(set(secrets)) == 1, "members disagree on the group secret"
        return secrets[0]

    def assert_invariants(self) -> None:
        for name in self.members:
            ctx = self.contexts[name]
            assert ctx.members == self.members
            assert ctx.controller == self.members[0]


@pytest.fixture
def ckd_group() -> CKDTestGroup:
    return CKDTestGroup()
