"""CKD protocol: agreement, controller rules, takeover, token validation."""

import pytest

from repro.ckd.protocol import CKDContext, CKDHello
from repro.crypto.dh import DHParams
from repro.errors import CKDError, ControllerError, TokenError

from tests.ckd.conftest import CKDTestGroup


def build_group(size: int, seed: int = 0) -> CKDTestGroup:
    group = CKDTestGroup(seed=seed)
    group.create("m0")
    for i in range(1, size):
        group.join(f"m{i}")
    return group


# -- creation / join ---------------------------------------------------------------


def test_first_member_is_controller(ckd_group):
    ckd_group.create("alice")
    assert ckd_group.contexts["alice"].is_controller
    assert ckd_group.contexts["alice"].has_key


def test_join_agreement(ckd_group):
    ckd_group.create("alice")
    ckd_group.join("bob")
    ckd_group.assert_agreement()
    ckd_group.assert_invariants()


def test_controller_is_oldest_not_newest(ckd_group):
    ckd_group.create("alice")
    ckd_group.join("bob")
    ckd_group.join("carol")
    assert ckd_group.contexts["alice"].is_controller
    assert not ckd_group.contexts["carol"].is_controller


@pytest.mark.parametrize("size", [3, 5, 8])
def test_sequential_joins(size):
    group = build_group(size)
    group.assert_agreement()
    group.assert_invariants()


def test_join_changes_secret(ckd_group):
    ckd_group.create("a")
    ckd_group.join("b")
    old = ckd_group.assert_agreement()
    ckd_group.join("c")
    assert ckd_group.assert_agreement() != old


def test_three_round_structure(ckd_group):
    """Table 5: hello (round 1) -> response (round 2) -> keydist (round 3)."""
    ckd_group.create("a")
    joiner = ckd_group.make_context("b")
    hello = ckd_group.controller.start_join("b")
    assert hello.public_r > 1
    assert not hello.takeover
    response = joiner.process_hello(hello)
    assert response.blinded_public > 1
    keydist = ckd_group.controller.process_response(response)
    assert keydist is not None
    assert set(keydist.entries) == {"b"}
    joiner.process_keydist(keydist)
    assert joiner.secret() == ckd_group.controller.secret()


def test_join_existing_member_rejected(ckd_group):
    ckd_group.create("a")
    ckd_group.join("b")
    with pytest.raises(CKDError):
        ckd_group.controller.start_join("b")


def test_non_controller_cannot_start_join(ckd_group):
    ckd_group.create("a")
    ckd_group.join("b")
    with pytest.raises(ControllerError):
        ckd_group.contexts["b"].start_join("c")


def test_unexpected_response_rejected(ckd_group):
    ckd_group.create("a")
    ckd_group.join("b")
    forged = ckd_group.contexts["b"]
    hello = ckd_group.controller.start_join("c")
    ckd_group.make_context("c")
    # "b" responds even though "c" was invited.
    from repro.ckd.protocol import CKDResponse

    bogus = CKDResponse(
        group=ckd_group.group_name, sender="b", epoch=hello.epoch, blinded_public=5
    )
    with pytest.raises(TokenError):
        ckd_group.controller.process_response(bogus)


# -- leave ---------------------------------------------------------------------------


def test_member_leave_agreement(ckd_group):
    group = build_group(4)
    old = group.assert_agreement()
    group.leave("m2")
    assert group.assert_agreement() != old
    assert group.members == ["m0", "m1", "m3"]


def test_multi_leave(ckd_group):
    group = build_group(6)
    group.leave("m1", "m4")
    group.assert_agreement()
    assert group.members == ["m0", "m2", "m3", "m5"]


def test_leaver_cannot_read_new_key(ckd_group):
    group = build_group(3)
    leaver_secret = group.contexts["m1"].secret()
    group.leave("m1")
    assert group.assert_agreement() != leaver_secret


def test_controller_cannot_remove_itself(ckd_group):
    group = build_group(3)
    with pytest.raises(CKDError):
        group.controller.leave(["m0"])


def test_leave_unknown_member(ckd_group):
    group = build_group(2)
    with pytest.raises(CKDError):
        group.controller.leave(["ghost"])


def test_leave_down_to_singleton(ckd_group):
    group = build_group(2)
    group.leave("m1")
    assert group.members == ["m0"]
    assert group.controller.has_key


# -- controller takeover ---------------------------------------------------------------


def test_controller_leave_triggers_takeover(ckd_group):
    group = build_group(4)
    old = group.assert_agreement()
    group.leave("m0")
    assert group.members == ["m1", "m2", "m3"]
    assert group.contexts["m1"].is_controller
    assert group.assert_agreement() != old
    group.assert_invariants()


def test_operations_after_takeover(ckd_group):
    group = build_group(3)
    group.leave("m0")
    group.join("m5")
    group.assert_agreement()
    group.leave("m2")
    group.assert_agreement()
    assert group.members == ["m1", "m5"]


def test_takeover_by_wrong_member_rejected(ckd_group):
    group = build_group(3)
    with pytest.raises(ControllerError):
        group.contexts["m2"].start_takeover(["m0"])  # m1 is older


def test_takeover_without_controller_departure_rejected(ckd_group):
    group = build_group(3)
    with pytest.raises(CKDError):
        group.contexts["m1"].start_takeover(["m2"])


def test_takeover_to_lone_survivor(ckd_group):
    group = build_group(2)
    group.leave("m0")
    assert group.members == ["m1"]
    assert group.contexts["m1"].has_key
    assert group.contexts["m1"].is_controller


# -- refresh ------------------------------------------------------------------------------


def test_refresh_changes_secret(ckd_group):
    group = build_group(3)
    old = group.assert_agreement()
    group.refresh()
    assert group.assert_agreement() != old
    assert group.members == ["m0", "m1", "m2"]


def test_refresh_requires_controller(ckd_group):
    group = build_group(2)
    with pytest.raises(ControllerError):
        group.contexts["m1"].refresh()


# -- token validation -------------------------------------------------------------------


def test_keydist_replay_rejected(ckd_group):
    group = build_group(2)
    keydist = group.controller.refresh()
    group.contexts["m1"].process_keydist(keydist)
    with pytest.raises(TokenError):
        group.contexts["m1"].process_keydist(keydist)


def test_keydist_wrong_group_rejected(ckd_group):
    group = build_group(2)
    other = CKDTestGroup(seed=7)
    other.group_name = "other"
    other.create("x")
    other.join("y")
    foreign = other.controller.refresh()
    with pytest.raises(TokenError):
        group.contexts["m1"].process_keydist(foreign)


def test_keydist_missing_entry_rejected(ckd_group):
    group = build_group(3)
    keydist = group.controller.leave(["m1"])
    with pytest.raises(TokenError):
        group.contexts["m1"].process_keydist(keydist)


def test_hello_for_wrong_group_rejected(ckd_group):
    group = build_group(2)
    bogus = CKDHello(
        group="other", sender="m0", epoch=1, members=("m0",), public_r=5,
        takeover=True,
    )
    with pytest.raises(TokenError):
        group.contexts["m1"].process_hello(bogus)


def test_secret_before_agreement_raises(ckd_group):
    ctx = ckd_group.make_context("solo")
    with pytest.raises(CKDError):
        ctx.secret()


def test_reset_clears_state(ckd_group):
    group = build_group(2)
    ctx = group.contexts["m1"]
    ctx.reset()
    assert ctx.group is None
    assert not ctx.has_key


# -- 512-bit smoke test -----------------------------------------------------------------


def test_full_lifecycle_with_paper_params():
    group = CKDTestGroup(params=DHParams.paper_512())
    group.create("a")
    group.join("b")
    group.join("c")
    group.assert_agreement()
    group.leave("a")  # controller leaves -> takeover
    group.assert_agreement()
    group.refresh()
    secret = group.assert_agreement()
    assert secret.bit_length() > 256
