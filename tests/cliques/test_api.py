"""The CLQ_API eight-call surface (repro.cliques.api)."""

import pytest

from repro.cliques import api
from repro.cliques.tokens import (
    DownflowToken,
    MergeChainToken,
    MergeCollectToken,
    MergeResponseToken,
    UpflowToken,
)
from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.random_source import DeterministicSource
from repro.cliques.directory import KeyDirectory
from repro.errors import TokenError


def make_members(*names):
    params = DHParams.tiny_test()
    directory = KeyDirectory()
    contexts = {}
    for name in names:
        source = DeterministicSource(hash(name) & 0xFFFF)
        keypair = DHKeyPair.generate(params, source)
        directory.register(name, keypair.public)
        contexts[name] = api.clq_new_ctx(
            name, params, keypair, directory, source=source
        )
    return contexts


def test_full_join_flow_through_api():
    contexts = make_members("alice", "bob")
    api.clq_first_member(contexts["alice"], "g")
    upflow = api.clq_update_ctx(contexts["alice"], "bob")
    assert isinstance(upflow, UpflowToken)
    downflow = api.clq_join(contexts["bob"], upflow)
    assert isinstance(downflow, DownflowToken)
    assert api.clq_process_token(contexts["alice"], downflow) is None
    assert contexts["alice"].secret() == contexts["bob"].secret()


def test_process_token_dispatches_upflow():
    contexts = make_members("alice", "bob")
    api.clq_first_member(contexts["alice"], "g")
    upflow = api.clq_update_ctx(contexts["alice"], "bob")
    downflow = api.clq_process_token(contexts["bob"], upflow)
    assert isinstance(downflow, DownflowToken)


def test_leave_through_api():
    contexts = make_members("alice", "bob", "carol")
    api.clq_first_member(contexts["alice"], "g")
    downflow = api.clq_join(contexts["bob"], api.clq_update_ctx(contexts["alice"], "bob"))
    api.clq_process_token(contexts["alice"], downflow)
    downflow = api.clq_join(
        contexts["carol"], api.clq_update_ctx(contexts["bob"], "carol")
    )
    api.clq_process_token(contexts["alice"], downflow)
    api.clq_process_token(contexts["bob"], downflow)
    # carol (controller) leaves; bob performs.
    leave_downflow = api.clq_leave(contexts["bob"], ["carol"])
    api.clq_process_token(contexts["alice"], leave_downflow)
    assert contexts["alice"].secret() == contexts["bob"].secret()


def test_merge_flow_through_process_token():
    contexts = make_members("a", "b", "c")
    api.clq_first_member(contexts["a"], "g")
    chain = api.clq_merge(contexts["a"], ["b", "c"])
    assert isinstance(chain, MergeChainToken)
    token = api.clq_process_token(contexts["b"], chain)
    assert isinstance(token, MergeChainToken)
    collect = api.clq_process_token(contexts["c"], token)
    assert isinstance(collect, MergeCollectToken)
    downflow = None
    for name in ("a", "b"):
        response = api.clq_process_token(contexts[name], collect)
        assert isinstance(response, MergeResponseToken)
        downflow = api.clq_process_token(contexts["c"], response)
    assert isinstance(downflow, DownflowToken)
    for name in ("a", "b"):
        api.clq_process_token(contexts[name], downflow)
    secrets = {contexts[n].secret() for n in ("a", "b", "c")}
    assert len(secrets) == 1


def test_refresh_through_api():
    contexts = make_members("a", "b")
    api.clq_first_member(contexts["a"], "g")
    downflow = api.clq_join(contexts["b"], api.clq_update_ctx(contexts["a"], "b"))
    api.clq_process_token(contexts["a"], downflow)
    old = contexts["a"].secret()
    refresh_downflow = api.clq_refresh_key(contexts["b"])
    api.clq_process_token(contexts["a"], refresh_downflow)
    assert contexts["a"].secret() == contexts["b"].secret() != old


def test_process_token_rejects_unknown_type():
    contexts = make_members("a")
    with pytest.raises(TokenError):
        api.clq_process_token(contexts["a"], object())
