"""Property-based tests: Cliques invariants under random op sequences.

The paper states two system invariants (Section 4): all members always
agree on the controller (the newest member), and the group secret is
contributed to by every member.  These tests drive random sequences of
join/leave/merge/refresh operations and check the invariants plus key
independence after every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import DHParams

from tests.cliques.conftest import CliquesTestGroup


def operation_strategy():
    return st.lists(
        st.sampled_from(["join", "leave", "merge", "refresh", "leave_controller"]),
        min_size=1,
        max_size=12,
    )


@settings(max_examples=30, deadline=None)
@given(operations=operation_strategy(), seed=st.integers(0, 2 ** 16))
def test_invariants_hold_under_random_operations(operations, seed):
    group = CliquesTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("m0")
    counter = 1
    secrets_seen = set()
    secrets_seen.add(group.contexts["m0"].secret())
    for operation in operations:
        if operation == "join":
            group.join(f"m{counter}")
            counter += 1
        elif operation == "merge":
            names = [f"m{counter}", f"m{counter + 1}"]
            counter += 2
            group.merge(*names)
        elif operation == "leave":
            if len(group.members) < 2:
                continue
            group.leave(group.members[0])  # oldest regular member
        elif operation == "leave_controller":
            if len(group.members) < 2:
                continue
            group.leave(group.members[-1])
        elif operation == "refresh":
            group.refresh()
        # Invariant 1: agreement on the secret.
        secret = group.assert_agreement()
        # Invariant 2: everyone agrees the controller is the newest.
        group.assert_invariants()
        # Key independence: never re-issue a previous secret.
        assert secret not in secrets_seen
        secrets_seen.add(secret)


@settings(max_examples=20, deadline=None)
@given(
    join_count=st.integers(min_value=1, max_value=8),
    seed=st.integers(0, 2 ** 16),
)
def test_grow_then_shrink_returns_to_working_singleton(join_count, seed):
    group = CliquesTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("m0")
    for i in range(join_count):
        group.join(f"m{i + 1}")
    group.assert_agreement()
    while len(group.members) > 1:
        group.leave(group.members[-1])
        group.assert_agreement()
    assert group.members == ["m0"]
    # The survivor can rebuild.
    group.join("back")
    group.assert_agreement()


@settings(max_examples=20, deadline=None)
@given(sizes=st.lists(st.integers(1, 4), min_size=1, max_size=4),
       seed=st.integers(0, 2 ** 16))
def test_repeated_merges_agree(sizes, seed):
    group = CliquesTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("root")
    counter = 0
    for batch in sizes:
        names = [f"x{counter + i}" for i in range(batch)]
        counter += batch
        group.merge(*names)
        group.assert_agreement()
        group.assert_invariants()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_share_secrecy_not_in_tokens(seed):
    """No member's private share ever appears in any cached broadcast
    value (a leak would let past members reconstruct keys)."""
    group = CliquesTestGroup(params=DHParams.small_test(), seed=seed)
    group.create("m0")
    for i in range(1, 5):
        group.join(f"m{i}")
    for name in group.members:
        ctx = group.contexts[name]
        share = ctx._my_share
        for entry in ctx._entries.values():
            assert entry.value != share
        assert ctx._own_base != share
        assert ctx.secret() != share
