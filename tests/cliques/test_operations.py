"""Cliques protocol operations: agreement, invariants, key independence."""

import pytest

from repro.cliques.context import CliquesContext
from repro.crypto.dh import DHParams
from repro.errors import CliquesError, ControllerError, TokenError

from tests.cliques.conftest import CliquesTestGroup


# -- group creation -------------------------------------------------------------


def test_first_member_has_secret(group):
    group.create("alice")
    assert group.contexts["alice"].has_key
    assert group.contexts["alice"].is_controller


def test_first_member_twice_rejected(group):
    group.create("alice")
    with pytest.raises(CliquesError):
        group.contexts["alice"].create_first("other")


# -- join -------------------------------------------------------------------------


def test_two_member_join_agreement(group):
    group.create("alice")
    group.join("bob")
    group.assert_agreement()
    group.assert_invariants()


def test_joiner_becomes_controller(group):
    group.create("alice")
    group.join("bob")
    assert group.contexts["bob"].is_controller
    assert not group.contexts["alice"].is_controller


@pytest.mark.parametrize("size", [3, 5, 8])
def test_sequential_joins_agreement(group, size):
    group.create("m0")
    for i in range(1, size):
        group.join(f"m{i}")
        group.assert_agreement()
        group.assert_invariants()


def test_join_changes_secret(group):
    group.create("alice")
    group.join("bob")
    before = group.assert_agreement()
    group.join("carol")
    after = group.assert_agreement()
    assert before != after


def test_joiner_cannot_compute_previous_secret(group):
    """Backward secrecy: the old secret is not derivable from what the
    joiner saw (we check the weaker observable: keys differ and the old
    key never appears in the joiner's state)."""
    group.create("alice")
    group.join("bob")
    old_secret = group.assert_agreement()
    group.join("eve")
    assert group.contexts["eve"].secret() != old_secret
    # Nothing in eve's caches equals the old secret.
    eve = group.contexts["eve"]
    cached_values = {entry.value for entry in eve._entries.values()}
    assert old_secret not in cached_values
    assert eve._own_base != old_secret


def test_non_controller_cannot_prep_join(group):
    group.create("alice")
    group.join("bob")
    with pytest.raises(ControllerError):
        group.contexts["alice"].prep_join("carol")


def test_join_existing_member_rejected(group):
    group.create("alice")
    group.join("bob")
    with pytest.raises(CliquesError):
        group.contexts["bob"].prep_join("alice")


def test_member_of_other_group_cannot_join(group):
    group.create("alice")
    other = group.make_context("bob")
    other.create_first("another-group")
    upflow = group.contexts["alice"].prep_join("bob")
    with pytest.raises(CliquesError):
        other.process_upflow(upflow)


# -- leave -----------------------------------------------------------------------


def test_controller_leave_agreement(group):
    group.create("m0")
    for i in range(1, 4):
        group.join(f"m{i}")
    old = group.assert_agreement()
    group.leave("m3")  # the controller leaves
    new = group.assert_agreement()
    assert new != old
    group.assert_invariants()


def test_member_leave_agreement(group):
    group.create("m0")
    for i in range(1, 4):
        group.join(f"m{i}")
    old = group.assert_agreement()
    group.leave("m1")  # a regular member leaves
    new = group.assert_agreement()
    assert new != old
    assert group.members == ["m0", "m2", "m3"]


def test_multi_leave(group):
    group.create("m0")
    for i in range(1, 6):
        group.join(f"m{i}")
    group.leave("m1", "m3")
    group.assert_agreement()
    assert group.members == ["m0", "m2", "m4", "m5"]


def test_leave_down_to_singleton(group):
    group.create("a")
    group.join("b")
    group.leave("b")
    assert group.members == ["a"]
    assert group.contexts["a"].has_key


def test_leaver_excluded_from_new_key(group):
    group.create("a")
    group.join("b")
    group.join("c")
    leaver_secret = group.contexts["c"].secret()
    group.leave("c")
    assert group.assert_agreement() != leaver_secret


def test_leaving_member_cannot_perform_leave(group):
    group.create("a")
    group.join("b")
    with pytest.raises(CliquesError):
        group.contexts["b"].leave(["b"])


def test_wrong_member_cannot_perform_leave(group):
    group.create("a")
    group.join("b")
    group.join("c")
    # "a" is not the newest survivor when "b" leaves; "c" is.
    with pytest.raises(ControllerError):
        group.contexts["a"].leave(["b"])


def test_leave_unknown_member_rejected(group):
    group.create("a")
    group.join("b")
    with pytest.raises(CliquesError):
        group.contexts["b"].leave(["ghost"])


def test_consecutive_leaves(group):
    group.create("m0")
    for i in range(1, 5):
        group.join(f"m{i}")
    group.leave("m4")
    group.leave("m3")
    group.leave("m1")
    group.assert_agreement()
    assert group.members == ["m0", "m2"]


# -- refresh ---------------------------------------------------------------------


def test_refresh_changes_secret_same_membership(group):
    group.create("a")
    group.join("b")
    group.join("c")
    old = group.assert_agreement()
    group.refresh()
    new = group.assert_agreement()
    assert new != old
    assert group.members == ["a", "b", "c"]


def test_refresh_requires_controller(group):
    group.create("a")
    group.join("b")
    with pytest.raises(ControllerError):
        group.contexts["a"].refresh()


def test_repeated_refresh_all_distinct(group):
    group.create("a")
    group.join("b")
    secrets = set()
    for _ in range(5):
        group.refresh()
        secrets.add(group.assert_agreement())
    assert len(secrets) == 5


# -- merge ------------------------------------------------------------------------


def test_merge_single_member(group):
    group.create("a")
    group.join("b")
    group.merge("c")
    group.assert_agreement()
    assert group.members == ["a", "b", "c"]
    assert group.contexts["c"].is_controller


def test_merge_multiple_members(group):
    group.create("a")
    group.join("b")
    group.merge("c", "d", "e")
    group.assert_agreement()
    assert group.members == ["a", "b", "c", "d", "e"]
    assert group.contexts["e"].is_controller
    group.assert_invariants()


def test_merge_into_singleton(group):
    group.create("a")
    group.merge("b", "c")
    group.assert_agreement()


def test_merge_changes_secret(group):
    group.create("a")
    group.join("b")
    old = group.assert_agreement()
    group.merge("c", "d")
    assert group.assert_agreement() != old


def test_operations_after_merge(group):
    group.create("a")
    group.join("b")
    group.merge("c", "d")
    group.join("e")
    group.assert_agreement()
    group.leave("e")
    group.assert_agreement()
    group.leave("d")  # the merge controller leaves
    group.assert_agreement()
    assert group.members == ["a", "b", "c"]


def test_merge_empty_list_rejected(group):
    group.create("a")
    with pytest.raises(CliquesError):
        group.contexts["a"].prep_merge([])


def test_merge_duplicate_names_rejected(group):
    group.create("a")
    with pytest.raises(CliquesError):
        group.contexts["a"].prep_merge(["b", "b"])


def test_merge_existing_member_rejected(group):
    group.create("a")
    group.join("b")
    with pytest.raises(CliquesError):
        group.contexts["b"].prep_merge(["a"])


def test_merge_by_non_controller_rejected(group):
    group.create("a")
    group.join("b")
    with pytest.raises(ControllerError):
        group.contexts["a"].prep_merge(["c"])


# -- 512-bit parameters smoke test --------------------------------------------------


def test_full_lifecycle_with_paper_params():
    group = CliquesTestGroup(params=DHParams.paper_512())
    group.create("a")
    group.join("b")
    group.join("c")
    group.assert_agreement()
    group.leave("c")
    group.assert_agreement()
    group.merge("d", "e")
    group.assert_agreement()
    group.refresh()
    secret = group.assert_agreement()
    assert secret.bit_length() > 256  # a real subgroup element


# -- epoch / token validation ---------------------------------------------------------


def test_stale_downflow_rejected(group):
    group.create("a")
    group.join("b")
    controller = group.contexts["b"]
    downflow1 = controller.refresh()
    group.contexts["a"].process_downflow(downflow1)
    downflow2 = controller.refresh()
    group.contexts["a"].process_downflow(downflow2)
    with pytest.raises(TokenError):
        group.contexts["a"].process_downflow(downflow1)  # replay


def test_downflow_for_wrong_group_rejected(group):
    group.create("a")
    group.join("b")
    other = CliquesTestGroup(seed=9)
    other.group_name = "other-group"
    other.create("x")
    other.join("y")
    foreign = other.contexts["y"].refresh()
    with pytest.raises(TokenError):
        group.contexts["a"].process_downflow(foreign)


def test_downflow_without_own_entry_rejected(group):
    group.create("a")
    group.join("b")
    group.join("c")
    downflow = group.contexts["c"].leave(["a"])
    with pytest.raises(TokenError):
        group.contexts["a"].process_downflow(downflow)


def test_secret_before_agreement_raises():
    group = CliquesTestGroup()
    ctx = group.make_context("lonely")
    with pytest.raises(CliquesError):
        ctx.secret()


def test_reset_clears_state(group):
    group.create("a")
    group.join("b")
    ctx = group.contexts["b"]
    ctx.reset()
    assert ctx.group is None
    assert not ctx.has_key
    assert ctx.members == []
