"""Exponentiation counts must match the paper's Tables 2, 3 and 4.

These tests measure the *actual* counters of the implementation for each
role during JOIN and LEAVE and compare them with the table rows.  ``n``
follows the paper's convention: it includes the joining member during a
join and the leaving member during a leave (footnote 8).
"""

import pytest

from tests.cliques.conftest import CliquesTestGroup


def build_group(size: int) -> CliquesTestGroup:
    group = CliquesTestGroup()
    group.create("m0")
    for i in range(1, size):
        group.join(f"m{i}")
    return group


# -- Table 2: Join ---------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 5, 10, 15])
def test_join_controller_counts_match_table2(n):
    """Cliques controller: (n-1) update + 1 long-term + 1 session = n+1."""
    group = build_group(n - 1)
    controller = group.contexts[group.members[-1]]
    with controller.counter.window() as during:
        group.join("joiner")
    assert during.get("update_share") == n - 1
    assert during.get("long_term_key") == 1
    assert during.get("session_key") == 1
    assert during.total == n + 1


@pytest.mark.parametrize("n", [2, 3, 5, 10, 15])
def test_join_new_member_counts_match_table2(n):
    """Cliques new member: (n-1) LTK + (n-1) encrypt + 1 session = 2n-1."""
    group = build_group(n - 1)
    group.join("joiner")
    counter = group.contexts["joiner"].counter
    assert counter.get("long_term_key") == n - 1
    assert counter.get("encrypt_session_key") == n - 1
    assert counter.get("session_key") == 1
    assert counter.total == 2 * n - 1


@pytest.mark.parametrize("n", [3, 5, 10])
def test_join_total_serial_matches_table4(n):
    """Table 4: total serial exponentiations for a Cliques join is 3n."""
    group = build_group(n - 1)
    controller = group.contexts[group.members[-1]]
    with controller.counter.window() as controller_window:
        group.join("joiner")
    joiner_total = group.contexts["joiner"].counter.total
    assert controller_window.total + joiner_total == 3 * n


@pytest.mark.parametrize("n", [3, 5, 10])
def test_join_old_member_background_cost(n):
    """Old non-controller members pay 2 uncounted (parallel)
    exponentiations: the LTK with the new controller plus their key
    computation.  Not a table row — pinned so the cost model stays
    honest."""
    group = build_group(n - 1)
    bystander = group.contexts[group.members[0]]
    assert group.members[0] != group.members[-1]
    with bystander.counter.window() as during:
        group.join("joiner")
    assert during.get("long_term_key") == 1
    assert during.get("session_key") == 1
    assert during.total == 2


# -- Table 3: Leave ---------------------------------------------------------------


@pytest.mark.parametrize("n", [3, 5, 10, 15])
def test_controller_leave_counts_match_table3(n):
    """Cliques leave (the paper's benchmarked case — the controller
    leaves): 1 remove-LTK + 1 session + (n-2) encrypt = n."""
    group = build_group(n)
    new_controller = group.contexts[group.members[-2]]
    with new_controller.counter.window() as during:
        group.leave(group.members[-1])
    assert during.get("remove_long_term_key") == 1
    assert during.get("session_key") == 1
    assert during.get("encrypt_session_key") == n - 2
    assert during.total == n


@pytest.mark.parametrize("n", [3, 5, 10])
def test_member_leave_with_sitting_controller_saves_one_exp(n):
    """When the performer is already the controller (its own partial key
    is plain), the strip is unnecessary: n-1 instead of the table's n.
    Documented divergence (an optimization), pinned here."""
    group = build_group(n)
    controller = group.contexts[group.members[-1]]
    with controller.counter.window() as during:
        group.leave(group.members[0])
    assert during.get("remove_long_term_key", ) == 0
    assert during.get("session_key") == 1
    assert during.get("encrypt_session_key") == n - 2
    assert during.total == n - 1


@pytest.mark.parametrize("n", [3, 5, 10])
def test_leave_remaining_member_single_exponentiation(n):
    group = build_group(n)
    bystander = group.contexts[group.members[0]]
    with bystander.counter.window() as during:
        group.leave(group.members[-1])
    assert during.total == 1
    assert during.get("session_key") == 1


def test_multi_leave_counts_scale_with_remaining():
    """Multi-leave of k members from n: 1 strip + 1 session +
    (n - k - 1) encrypts when the controller is among the leavers."""
    n, k = 8, 3
    group = build_group(n)
    leavers = [group.members[-1], group.members[2], group.members[4]]
    performer = group.contexts[group.members[-2]]
    with performer.counter.window() as during:
        group.leave(*leavers)
    assert during.total == 1 + 1 + (n - k - 1)


# -- Refresh ------------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 4, 8])
def test_refresh_costs_like_leave_without_departure(n):
    group = build_group(n)
    controller = group.contexts[group.members[-1]]
    with controller.counter.window() as during:
        group.refresh()
    # Sitting controller: no strip; 1 session + (n-1) encrypts.
    assert during.total == n


# -- Merge (not in the paper's tables; pinned for the cost model) ---------------------


def test_merge_cost_profile():
    old_size, new_count = 4, 3
    group = build_group(old_size)
    old_controller = group.contexts[group.members[-1]]
    bystander = group.contexts[group.members[0]]
    with old_controller.counter.window() as ctrl_win, bystander.counter.window() as by_win:
        group.merge("x0", "x1", "x2")
    # Old controller: 1 update + 1 factor-out + 1 LTK + 1 session key.
    assert ctrl_win.get("update_share") == 1
    assert ctrl_win.get("factor_out") == 1
    # Old bystander: 1 factor-out + 1 LTK + 1 session key.
    assert by_win.get("factor_out") == 1
    assert by_win.get("session_key") == 1
    # New controller: (total-1) LTK + (total-1) encrypt + 1 session.
    total = old_size + new_count
    new_controller = group.contexts["x2"]
    assert new_controller.counter.get("encrypt_session_key") == total - 1
    assert new_controller.counter.get("long_term_key") == total - 1
    assert new_controller.counter.get("session_key") == 1
