"""Shared fixtures: an in-memory driver for a group of Cliques contexts.

Drives the pure protocol without any network, the way the secure layer
will, so protocol tests stay focused on the cryptography and the counts.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.cliques.context import CliquesContext
from repro.cliques.directory import KeyDirectory
from repro.crypto.counters import ExpCounter
from repro.crypto.dh import DHKeyPair, DHParams
from repro.crypto.random_source import DeterministicSource
from repro.sim.rng import stable_seed


class CliquesTestGroup:
    """Creates contexts on demand and runs whole operations to completion."""

    def __init__(self, params: DHParams = None, seed: int = 0) -> None:
        self.params = params if params is not None else DHParams.tiny_test()
        self.directory = KeyDirectory()
        self.contexts: Dict[str, CliquesContext] = {}
        self.members: List[str] = []  # join order
        self.group_name = "test-group"
        self._seed = seed

    def make_context(self, name: str) -> CliquesContext:
        source = DeterministicSource(stable_seed(self._seed, name))
        keypair = DHKeyPair.generate(self.params, source)
        self.directory.register(name, keypair.public)
        ctx = CliquesContext(
            name=name,
            params=self.params,
            long_term=keypair,
            directory=self.directory,
            source=source,
            counter=ExpCounter(),
        )
        self.contexts[name] = ctx
        return ctx

    # -- whole operations ---------------------------------------------------

    def create(self, first: str) -> None:
        ctx = self.make_context(first)
        ctx.create_first(self.group_name)
        self.members = [first]

    def join(self, new_member: str) -> None:
        controller = self.contexts[self.members[-1]]
        joiner = self.make_context(new_member)
        upflow = controller.prep_join(new_member)
        downflow = joiner.process_upflow(upflow)
        for name in self.members:
            self.contexts[name].process_downflow(downflow)
        self.members.append(new_member)

    def leave(self, *leaving: str) -> None:
        remaining = [m for m in self.members if m not in leaving]
        performer = self.contexts[remaining[-1]]
        downflow = performer.leave(list(leaving))
        for name in remaining:
            if name != performer.name:
                self.contexts[name].process_downflow(downflow)
        for name in leaving:
            del self.contexts[name]
        self.members = remaining

    def merge(self, *new_members: str) -> None:
        controller = self.contexts[self.members[-1]]
        for name in new_members:
            self.make_context(name)
        token = controller.prep_merge(list(new_members))
        # chain through the new members
        for name in new_members[:-1]:
            token = self.contexts[name].process_merge_chain(token)
        collect = self.contexts[new_members[-1]].process_merge_chain(token)
        new_controller = self.contexts[new_members[-1]]
        everyone = self.members + list(new_members)
        downflow = None
        for name in everyone:
            if name == new_controller.name:
                continue
            response = self.contexts[name].process_merge_collect(collect)
            downflow = new_controller.process_merge_response(response)
        assert downflow is not None
        for name in everyone:
            if name != new_controller.name:
                self.contexts[name].process_downflow(downflow)
        self.members = everyone

    def refresh(self) -> None:
        controller = self.contexts[self.members[-1]]
        downflow = controller.refresh()
        for name in self.members:
            if name != controller.name:
                self.contexts[name].process_downflow(downflow)

    # -- assertions -----------------------------------------------------------

    def secrets(self) -> List[int]:
        return [self.contexts[name].secret() for name in self.members]

    def assert_agreement(self) -> int:
        secrets = self.secrets()
        assert len(set(secrets)) == 1, "members disagree on the group secret"
        return secrets[0]

    def assert_invariants(self) -> None:
        for name in self.members:
            ctx = self.contexts[name]
            assert ctx.members == self.members
            assert ctx.controller == self.members[-1]


@pytest.fixture
def group() -> CliquesTestGroup:
    return CliquesTestGroup()
