#!/usr/bin/env python3
"""Quickstart: a secure group in a few lines.

Builds the simulated deployment (three Spread daemons on a LAN), puts
three members into a secure group keyed with the distributed Cliques
protocol, exchanges encrypted messages, and shows the group key rotating
when membership changes.

Run:  python examples/quickstart.py
"""

from repro.bench.testbed import SecureTestbed
from repro.secure.events import SecureDataEvent, SecureMembershipEvent


def payloads(member, group="chat"):
    return [
        event.payload
        for event in member.queue
        if isinstance(event, SecureDataEvent) and str(event.group) == group
    ]


def fingerprint(member, group="chat"):
    return member.sessions[group]._session_keys.fingerprint()


def main() -> None:
    # A simulated deployment: 3 machines, one Spread daemon each.
    testbed = SecureTestbed()

    # Three members join the secure group "chat" (Cliques key agreement).
    alice = testbed.add_member("alice", "d0", group="chat")
    testbed.wait_secure_view(["alice"], group="chat")
    bob = testbed.add_member("bob", "d1", group="chat")
    testbed.wait_secure_view(["alice", "bob"], group="chat")
    carol = testbed.add_member("carol", "d2", group="chat")
    testbed.wait_secure_view(["alice", "bob", "carol"], group="chat")

    print("group keyed; fingerprint:", fingerprint(alice, "chat"))
    assert fingerprint(alice) == fingerprint(bob) == fingerprint(carol)

    # Encrypted group messaging: everything on the wire is Blowfish-CBC
    # + HMAC under the agreed group key.
    alice.send("chat", b"hello, secure world")
    testbed.run_until(lambda: b"hello, secure world" in payloads(carol))
    print("carol received:", payloads(carol)[-1].decode())

    # Membership change -> automatic re-key (key independence).
    old_fingerprint = fingerprint(alice)
    carol.leave("chat")
    testbed.wait_secure_view(["alice", "bob"], group="chat")
    print("after carol left, fingerprint:", fingerprint(alice, "chat"))
    assert fingerprint(alice) != old_fingerprint

    bob.send("chat", b"carol cannot read this")
    testbed.run_until(lambda: b"carol cannot read this" in payloads(alice))
    assert b"carol cannot read this" not in payloads(carol)
    print("post-leave secrecy holds: carol saw nothing new")

    # Member authentication: alice verifies it is really bob — holder of
    # bob's long-term key AND the current group key — on the other end.
    from repro.secure.member_auth import MemberAuthenticatedEvent

    alice.authenticate("chat", str(bob.pid))
    testbed.run_until(
        lambda: any(isinstance(e, MemberAuthenticatedEvent) for e in alice.queue)
    )
    verdict = [e for e in alice.queue if isinstance(e, MemberAuthenticatedEvent)][-1]
    assert verdict.authenticated
    print(f"member authentication: {verdict.peer} verified")

    print("quickstart OK")


if __name__ == "__main__":
    main()
