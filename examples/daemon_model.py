#!/usr/bin/env python3
"""The daemon model: one key for the whole daemon network.

The paper (§5) contrasts the *client model* — per-group keys, as in the
other examples — with the *daemon model*, where the daemons themselves
agree on a single key and seal all inter-daemon traffic.  The paper
lists daemon integration as future work (§8); this repository implements
it, and this demo shows both its selling point (keys change only when
the daemon membership changes, not on group churn) and the trade-off the
paper calls out (one key protects every group at once).

Run:  python examples/daemon_model.py
"""

from repro.crypto.dh import DHParams
from repro.secure.daemon_model import secure_all_daemons
from repro.bench.testbed import SecureTestbed
from repro.spread.client import SpreadClient
from repro.spread.events import DataEvent, MembershipEvent
from repro.spread.messages import DataMessage
from repro.types import ServiceType


def group_members(client, group):
    views = [
        e for e in client.queue
        if isinstance(e, MembershipEvent) and str(e.group) == group
    ]
    return {str(m) for m in views[-1].members} if views else set()


def payloads(client, group):
    return [
        e.payload for e in client.queue
        if isinstance(e, DataEvent) and str(e.group) == group
    ]


def main() -> None:
    testbed = SecureTestbed()
    # Turn on daemon-model security: every daemon-to-daemon data message
    # is sealed under a daemon-group key.
    layers = secure_all_daemons(testbed.daemons, params=DHParams.paper_512())
    testbed.run(1.0)
    fingerprints = {layer._protector.keys.fingerprint() for layer in layers.values()}
    assert len(fingerprints) == 1
    print("daemon-group keyed:", fingerprints.pop())

    # Prove nothing crosses the wire in the clear: spy on the network.
    raw_data_messages = []
    original_send = testbed.network.send

    def spy(source, destination, payload, size=None):
        if isinstance(payload, DataMessage):
            raw_data_messages.append(payload)
        return original_send(source, destination, payload, size)

    testbed.network.send = spy

    # Plain (insecure-API) clients — the daemon layer protects them
    # transparently, which is exactly the daemon model's pitch.
    alice = SpreadClient(testbed.kernel, "alice", testbed.daemons["d0"])
    alice.connect()
    bob = SpreadClient(testbed.kernel, "bob", testbed.daemons["d1"])
    bob.connect()
    alice.join("ops")
    bob.join("ops")
    testbed.run_until(
        lambda: group_members(bob, "ops") == {"#alice#d0", "#bob#d1"}
    )
    alice.multicast(ServiceType.AGREED, "ops", "sealed transparently")
    testbed.run_until(lambda: "sealed transparently" in payloads(bob, "ops"))
    print("message delivered; raw DataMessages on the wire:",
          len(raw_data_messages))
    assert raw_data_messages == []

    # Group churn does NOT re-key the daemons (the model's advantage)...
    keyed_before = sum(l.keys_established for l in layers.values())
    for i in range(3):
        alice.join(f"extra{i}")
        testbed.run(0.5)
        alice.leave(f"extra{i}")
        testbed.run(0.5)
    assert sum(l.keys_established for l in layers.values()) == keyed_before
    print("six group membership changes: zero daemon re-keys")

    # ...but a daemon membership change does.
    testbed.daemons["d2"].crash()
    testbed.run_until(
        lambda: all(
            layer.ready and len(layer.members) == 2
            for name, layer in layers.items()
            if name != "d2"
        ),
        timeout=60,
    )
    print("daemon d2 crashed: surviving daemons re-keyed to",
          layers["d0"]._protector.keys.fingerprint())

    print("daemon model OK")


if __name__ == "__main__":
    main()
