#!/usr/bin/env python3
"""A collaborative shared whiteboard over secure Spread.

The paper's introduction motivates exactly this class of application:
conferencing, white-boards, shared instrument control.  Each participant
multicasts drawing operations into a secure group; the AGREED (total)
ordering of the group communication system makes every replica apply the
operations in the same order, and the secure layer keeps the strokes
confidential with the group key.

The demo runs participants joining mid-session (triggering re-keys),
drawing concurrently, and verifies every replica converges to an
identical board — including the late joiner, who sees only operations
from after its join (backward secrecy: it could not have decrypted
earlier traffic).

Run:  python examples/secure_whiteboard.py
"""

import json

from repro.bench.testbed import SecureTestbed
from repro.secure.events import SecureDataEvent

GROUP = "whiteboard"


class Whiteboard:
    """One participant's replica: an ordered log of drawing operations."""

    def __init__(self, member) -> None:
        self.member = member
        self.operations = []
        member.on_event(self._on_event)

    def _on_event(self, event) -> None:
        if isinstance(event, SecureDataEvent) and str(event.group) == GROUP:
            self.operations.append(json.loads(event.payload.decode()))

    def draw(self, shape: str, x: int, y: int) -> None:
        operation = {
            "who": self.member.me.split("#")[1],
            "shape": shape,
            "x": x,
            "y": y,
        }
        self.member.send(GROUP, json.dumps(operation).encode())

    def render(self) -> str:
        return " ".join(
            f"{op['who']}:{op['shape']}@({op['x']},{op['y']})"
            for op in self.operations
        )


def main() -> None:
    testbed = SecureTestbed()

    alice = testbed.add_member("alice", "d0", group=GROUP)
    testbed.wait_secure_view(["alice"], group=GROUP)
    bob = testbed.add_member("bob", "d1", group=GROUP)
    testbed.wait_secure_view(["alice", "bob"], group=GROUP)

    board_alice = Whiteboard(alice)
    board_bob = Whiteboard(bob)

    # Concurrent drawing from two sites: total order decides the outcome.
    board_alice.draw("circle", 10, 10)
    board_bob.draw("square", 20, 5)
    board_alice.draw("line", 0, 0)
    testbed.run_until(
        lambda: len(board_alice.operations) == 3 and len(board_bob.operations) == 3
    )
    assert board_alice.operations == board_bob.operations
    print("two-party board:", board_alice.render())

    # A third participant joins mid-session -> automatic re-key; it sees
    # only operations drawn after its join.
    carol = testbed.add_member("carol", "d2", group=GROUP)
    testbed.wait_secure_view(["alice", "bob", "carol"], group=GROUP)
    board_carol = Whiteboard(carol)

    board_carol.draw("triangle", 7, 7)
    board_bob.draw("dot", 1, 2)
    testbed.run_until(
        lambda: len(board_alice.operations) == 5
        and len(board_bob.operations) == 5
        and len(board_carol.operations) == 2
    )
    assert board_alice.operations == board_bob.operations
    assert board_carol.operations == board_alice.operations[3:]
    print("three-party board:", board_alice.render())
    print("carol's view (post-join only):", board_carol.render())

    print("whiteboard replicas consistent; secure whiteboard OK")


if __name__ == "__main__":
    main()
