#!/usr/bin/env python3
"""Partition and merge: secure operation through network failures.

A command-and-control style scenario (another of the paper's motivating
applications): a four-member secure group is split by a network
partition.  Each side automatically re-keys and keeps operating
securely on its own; when the network heals, the components merge and
agree on a fresh common key — all driven by the Table-1 mapping of
membership events to key operations (partition -> LEAVE,
merge -> MERGE / LEAVE-then-MERGE).

Run:  python examples/partition_recovery.py
"""

from repro.bench.testbed import SecureTestbed
from repro.secure.events import SecureDataEvent

GROUP = "ops"


def payloads(member):
    return [
        e.payload for e in member.queue
        if isinstance(e, SecureDataEvent) and str(e.group) == GROUP
    ]


def fingerprint(member):
    return member.sessions[GROUP]._session_keys.fingerprint()


def main() -> None:
    testbed = SecureTestbed(daemon_count=4)

    names = ["hq", "relay", "field1", "field2"]
    daemons = ["d0", "d1", "d2", "d3"]
    members = {}
    joined = []
    for name, daemon in zip(names, daemons):
        members[name] = testbed.add_member(name, daemon, group=GROUP)
        joined.append(name)
        testbed.wait_secure_view(joined, group=GROUP)
    print("initial group keyed:", fingerprint(members["hq"]))

    members["hq"].send(GROUP, b"status: all stations report")
    testbed.run_until(
        lambda: all(b"status: all stations report" in payloads(members[n]) for n in names)
    )

    # The network partitions: {hq, relay} | {field1, field2}.
    print("\n-- partition hits --")
    testbed.network.partition([["d0", "d1"], ["d2", "d3"]])
    hq_side = {str(members["hq"].pid), str(members["relay"].pid)}
    field_side = {str(members["field1"].pid), str(members["field2"].pid)}
    testbed.run_until(lambda: testbed.secure_view_of("hq", GROUP) == hq_side)
    testbed.run_until(lambda: testbed.secure_view_of("field1", GROUP) == field_side)
    print("hq side re-keyed:   ", fingerprint(members["hq"]))
    print("field side re-keyed:", fingerprint(members["field1"]))
    assert fingerprint(members["hq"]) != fingerprint(members["field1"])

    # Both sides keep operating securely and independently.
    members["hq"].send(GROUP, b"hq-side: hold position")
    members["field1"].send(GROUP, b"field-side: proceeding dark")
    testbed.run_until(lambda: b"hq-side: hold position" in payloads(members["relay"]))
    testbed.run_until(
        lambda: b"field-side: proceeding dark" in payloads(members["field2"])
    )
    # ... and cross-partition traffic does not leak anywhere.
    assert b"field-side: proceeding dark" not in payloads(members["hq"])
    assert b"hq-side: hold position" not in payloads(members["field1"])
    print("both components operated independently; no cross-partition leak")

    # The network heals: the components merge and re-key together.
    print("\n-- network heals --")
    testbed.network.heal()
    everyone = hq_side | field_side
    testbed.run_until(
        lambda: all(
            testbed.secure_view_of(n, GROUP) == everyone for n in names
        ),
        timeout=120,
    )
    merged = {fingerprint(members[n]) for n in names}
    assert len(merged) == 1
    print("merged group keyed:", merged.pop())

    members["field2"].send(GROUP, b"rejoined: full sync")
    testbed.run_until(
        lambda: all(b"rejoined: full sync" in payloads(members[n]) for n in names)
    )
    print("post-merge message reached all four members")
    print("partition recovery OK")


if __name__ == "__main__":
    main()
