#!/usr/bin/env python3
"""A securely replicated key-value store.

The paper's opening motivation: "taking traditional, centralized
services ... and distributing them across multiple systems and
networks".  This example is that pattern in miniature — a key-value
store replicated with the classic state-machine approach on top of
secure Spread:

* every update is an encrypted AGREED multicast, so all replicas apply
  the same operations in the same order (consistency comes from the
  total order; confidentiality and integrity from the group key);
* replicas can leave and new ones can join mid-stream (the joiner gets a
  state transfer from an existing replica — sent under the *new* view's
  key, which the departed members never held);
* after a partition, each side keeps serving its component and the key
  rotation ensures the sides cannot read each other's updates.

Run:  python examples/replicated_kv.py
"""

import json

from repro.bench.testbed import SecureTestbed
from repro.secure.events import SecureDataEvent, SecureMembershipEvent

GROUP = "kv-store"


class Replica:
    """One replicated store instance over a SecureClient."""

    def __init__(self, member) -> None:
        self.member = member
        self.data = {}
        self.applied = 0
        member.on_event(self._on_event)

    def put(self, key: str, value) -> None:
        operation = {"op": "put", "key": key, "value": value}
        self.member.send(GROUP, json.dumps(operation).encode())

    def delete(self, key: str) -> None:
        operation = {"op": "del", "key": key}
        self.member.send(GROUP, json.dumps(operation).encode())

    def push_state(self) -> None:
        """State transfer for a fresh replica (sent under the new key)."""
        operation = {"op": "state", "data": self.data}
        self.member.send(GROUP, json.dumps(operation).encode())

    def _on_event(self, event) -> None:
        if not isinstance(event, SecureDataEvent) or str(event.group) != GROUP:
            return
        operation = json.loads(event.payload.decode())
        if operation["op"] == "put":
            self.data[operation["key"]] = operation["value"]
        elif operation["op"] == "del":
            self.data.pop(operation["key"], None)
        elif operation["op"] == "state" and not self.data:
            self.data = dict(operation["data"])
        self.applied += 1


def main() -> None:
    testbed = SecureTestbed()
    names = []
    replicas = {}
    for index, name in enumerate(["r0", "r1"]):
        member = testbed.add_member(name, testbed.placement(index), group=GROUP)
        names.append(name)
        testbed.wait_secure_view(names, group=GROUP)
        replicas[name] = Replica(member)

    # Concurrent updates from both replicas converge identically.
    replicas["r0"].put("region", "west")
    replicas["r1"].put("fleet", 7)
    replicas["r0"].put("status", "green")
    testbed.run_until(
        lambda: all(r.applied >= 3 for r in replicas.values()), timeout=60
    )
    assert replicas["r0"].data == replicas["r1"].data
    print("2 replicas converged:", replicas["r0"].data)

    # A new replica joins: re-key, then state transfer under the new key.
    member = testbed.add_member("r2", "d2", group=GROUP)
    names.append("r2")
    testbed.wait_secure_view(names, group=GROUP)
    replicas["r2"] = Replica(member)
    replicas["r0"].push_state()
    testbed.run_until(lambda: replicas["r2"].data == replicas["r0"].data,
                      timeout=60)
    print("r2 bootstrapped via state transfer:", replicas["r2"].data)

    # Updates keep converging across all three.
    replicas["r2"].put("fleet", 8)
    replicas["r1"].delete("status")
    testbed.run_until(
        lambda: all(
            r.data.get("fleet") == 8 and "status" not in r.data
            for r in replicas.values()
        ),
        timeout=60,
    )
    assert replicas["r0"].data == replicas["r1"].data == replicas["r2"].data
    print("3 replicas converged:", replicas["r0"].data)

    # A replica departs; the key rotates; the survivors keep serving.
    testbed.members["r2"].leave(GROUP)
    names.remove("r2")
    testbed.wait_secure_view(names, group=GROUP)
    replicas["r0"].put("region", "east")
    testbed.run_until(
        lambda: replicas["r1"].data.get("region") == "east", timeout=60
    )
    # The departed replica saw none of it.
    assert replicas["r2"].data.get("region") == "west"
    print("post-leave update hidden from departed replica")

    print("replicated kv OK")


if __name__ == "__main__":
    main()
