#!/usr/bin/env python3
"""Secure communication between a group and a non-member.

The paper's second security goal (§2): "authentic and private
communication between a secure group (i.e., its members) and other
entities (non-members)".  This demo runs the gateway service built on
the public API: an outsider — who is *not* a group member and never
learns the group key — opens an authenticated channel to the group
through whichever member currently holds the controller role, submits a
request, and receives the group's answer.

Run:  python examples/outsider_gateway.py
"""

from repro.bench.testbed import SecureTestbed
from repro.crypto.dh import DHKeyPair
from repro.crypto.random_source import DeterministicSource
from repro.secure.nonmember import GroupGateway, OutsiderChannel
from repro.spread.client import SpreadClient

GROUP = "control-room"


def main() -> None:
    testbed = SecureTestbed()

    # The secure group: three members, each with a gateway service.
    members, gateways = [], []
    names = []
    for index, name in enumerate(["ops1", "ops2", "ops3"]):
        member = testbed.add_member(name, testbed.placement(index), group=GROUP)
        names.append(name)
        testbed.wait_secure_view(names, group=GROUP)
        members.append(member)
        gateways.append(GroupGateway(member, GROUP))
    print("secure group up:",
          members[0].sessions[GROUP]._session_keys.fingerprint())

    # The outsider: a plain Spread connection + a published identity key.
    raw = SpreadClient(testbed.kernel, "visitor", testbed.daemons["d1"])
    raw.connect()
    source = DeterministicSource(99)
    outsider = OutsiderChannel(
        raw, GROUP, testbed.params,
        DHKeyPair.generate(testbed.params, source),
        testbed.directory, random_source=source,
    )
    outsider.publish_key()

    outsider.open()  # an open-group multicast: non-members may send
    testbed.run_until(lambda: outsider.connected, timeout=30)
    print("gateway channel established with", outsider._gateway)

    # Outsider -> group: the message reaches every member, attributed.
    outsider.send(b"request: status report please")
    testbed.run_until(
        lambda: all(
            any(e.payload == b"request: status report please" for e in gw.events)
            for gw in gateways
        ),
        timeout=30,
    )
    event = gateways[0].events[-1]
    print(f"group received (from {event.outsider}):", event.payload.decode())

    # The outsider never saw the group key.
    group_fingerprint = members[0].sessions[GROUP]._session_keys.fingerprint()
    assert outsider._protector.keys.fingerprint() != group_fingerprint

    # Group -> outsider: the acting gateway relays the reply.
    acting = next(g for g in gateways if g._channels)
    acting.reply(outsider.me, b"status: all systems nominal")
    testbed.run_until(
        lambda: b"status: all systems nominal" in outsider.received, timeout=30
    )
    print("outsider received:", outsider.received[-1].decode())
    print("outsider gateway OK")


if __name__ == "__main__":
    main()
