#!/usr/bin/env python3
"""Cliques vs CKD: the paper's experimental comparison, in miniature.

Reproduces the heart of Section 6 at the command line: for a range of
group sizes, run a join and a leave under both key management modules,
report the serial exponentiation counts against the paper's formulas
(Table 4) and the modeled CPU time on the paper's two platforms
(Figure 4).

Run:  python examples/protocol_comparison.py
"""

from repro.bench.expcount import table4
from repro.bench.platform_model import PENTIUM_II_450, SUN_ULTRA2
from repro.bench.reporting import Table
from repro.bench.testbed import ProtocolGroup

SIZES = [3, 5, 10, 15]


def serial_join(protocol: str, n: int) -> int:
    group = ProtocolGroup(protocol)
    group.grow_to(n - 1)
    controller = group.key_controller
    with group.counter_of(controller).window() as window:
        joiner = group.join()
    return window.total + group.counter_of(joiner).total


def serial_controller_leave(protocol: str, n: int) -> int:
    group = ProtocolGroup(protocol)
    group.grow_to(n)
    leaver = group.key_controller
    performer = group.members[-2] if protocol == "cliques" else group.members[1]
    with group.counter_of(performer).window() as window:
        group.leave(leaver)
    return window.total - window.get("controller_hello")


def main() -> None:
    counts = Table(
        "Serial exponentiations: measured vs paper (Table 4)",
        ["n", "protocol", "join (meas/paper)", "ctrl-leave (meas/paper)"],
    )
    modeled = Table(
        "Modeled CPU time for a join (seconds, Figure 4)",
        ["n", "protocol", SUN_ULTRA2.name, PENTIUM_II_450.name],
    )
    for n in SIZES:
        paper = table4(n)
        for protocol, label in (("cliques", "Cliques"), ("ckd", "CKD")):
            join_count = serial_join(protocol, n)
            leave_count = serial_controller_leave(protocol, n)
            counts.add(
                n,
                label,
                f"{join_count}/{paper[label]['Join']}",
                f"{leave_count}/{paper[label]['Controller leaves']}",
            )
            modeled.add(
                n,
                label,
                SUN_ULTRA2.time_for(join_count),
                PENTIUM_II_450.time_for(join_count),
            )
    counts.show()
    modeled.show()

    print(
        "Reading: Cliques joins cost ~3n exponentiations but distribute trust\n"
        "(every member contributes to the key and can be individually\n"
        "authenticated); CKD joins cost ~n+6 but depend on one controller,\n"
        "whose departure costs 3n-5.  The paper's conclusion — distributed\n"
        "key agreement is affordable — falls out of the numbers above."
    )
    print("protocol comparison OK")


if __name__ == "__main__":
    main()
