#!/usr/bin/env python3
"""Cliques vs CKD vs TGDH: the paper's experimental comparison, in
miniature.

Reproduces the heart of Section 6 at the command line: for a range of
group sizes, run a join and a leave under all three key management
modules, report the serial exponentiation counts against the paper's
formulas (Table 4) and the modeled CPU time on the paper's two
platforms (Figure 4).  TGDH post-dates the paper's tables, so its rows
carry no Table 4 reference — its point is the O(log n) column shape
against the O(n) rows above it.

Run:  python examples/protocol_comparison.py
"""

from repro.bench.expcount import table4
from repro.bench.platform_model import PENTIUM_II_450, SUN_ULTRA2
from repro.bench.reporting import Table
from repro.bench.testbed import ProtocolGroup

SIZES = [3, 5, 10, 15]

PROTOCOLS = (("cliques", "Cliques"), ("ckd", "CKD"), ("tgdh", "TGDH"))


def join_sponsor(group: ProtocolGroup) -> str:
    """The member that pays the serial join cost: the Cliques/CKD
    controller, or the TGDH insertion-leaf sponsor."""
    if group.protocol == "tgdh":
        anyone = group.contexts[group.members[0]]
        return anyone.sponsor_for([], ["znew"])
    return group.key_controller


def leave_sponsor(group: ProtocolGroup, leaver: str) -> str:
    if group.protocol == "tgdh":
        remaining = [m for m in group.members if m != leaver]
        return group.contexts[remaining[0]].sponsor_for([leaver], [])
    if group.protocol == "cliques":
        return group.members[-2]
    return group.members[1]


def serial_join(protocol: str, n: int) -> int:
    group = ProtocolGroup(protocol)
    group.grow_to(n - 1)
    sponsor = join_sponsor(group)
    with group.counter_of(sponsor).window() as window:
        joiner = group.join()
    return window.total + group.counter_of(joiner).total


def serial_controller_leave(protocol: str, n: int) -> int:
    group = ProtocolGroup(protocol)
    group.grow_to(n)
    leaver = group.key_controller
    performer = leave_sponsor(group, leaver)
    with group.counter_of(performer).window() as window:
        group.leave(leaver)
    return window.total - window.get("controller_hello")


def main() -> None:
    counts = Table(
        "Serial exponentiations: measured vs paper (Table 4)",
        ["n", "protocol", "join (meas/paper)", "ctrl-leave (meas/paper)"],
    )
    modeled = Table(
        "Modeled CPU time for a join (seconds, Figure 4)",
        ["n", "protocol", SUN_ULTRA2.name, PENTIUM_II_450.name],
    )
    for n in SIZES:
        paper = table4(n)
        for protocol, label in PROTOCOLS:
            join_count = serial_join(protocol, n)
            leave_count = serial_controller_leave(protocol, n)
            if label in paper:
                join_ref = paper[label]["Join"]
                leave_ref = paper[label]["Controller leaves"]
            else:
                join_ref = leave_ref = "O(log n)"
            counts.add(
                n,
                label,
                f"{join_count}/{join_ref}",
                f"{leave_count}/{leave_ref}",
            )
            modeled.add(
                n,
                label,
                SUN_ULTRA2.time_for(join_count),
                PENTIUM_II_450.time_for(join_count),
            )
    counts.show()
    modeled.show()

    print(
        "Reading: Cliques joins cost ~3n exponentiations but distribute trust\n"
        "(every member contributes to the key and can be individually\n"
        "authenticated); CKD joins cost ~n+6 but depend on one controller,\n"
        "whose departure costs 3n-5; TGDH pays O(log n) on every event by\n"
        "localizing rekeying to one root-to-leaf path of the key tree.  The\n"
        "paper's conclusion — distributed key agreement is affordable —\n"
        "falls out of the numbers above."
    )
    print("protocol comparison OK")


if __name__ == "__main__":
    main()
